"""Calibration report: compare synthetic-trace event frequencies to Table 4.

Run:  python tools/calibrate.py [length]
"""

import sys

from repro import make_trace, simulate, pipelined_bus, non_pipelined_bus, compute_statistics
from repro.core.result import merge_results
from repro.protocols.events import EventType as E
from repro.trace.filters import exclude_lock_spins
from repro.trace.stream import Trace

PAPER = {
    "stats": {"instr": 49.72, "read": 39.82, "write": 10.46, "spin/rd": 33.0},
    "dir1nb": {"rm": 5.18, "wm": 0.17, "bcpr": 0.3210},
    "wti": {"rm": 0.62, "wm": 0.12, "bcpr": 0.1466},
    "dir0b": {
        "rm_cln": 0.23, "rm_drty": 0.40, "wm_cln": 0.02, "wm_drty": 0.09,
        "wh_cln": 0.41, "bcpr": 0.0491, "single_inv": 0.85,
    },
    "dragon": {
        "rm": 0.30, "wm": 0.02, "wh_distrib": 1.74, "bcpr": 0.0336,
    },
    "first_ref": 0.40,
}


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    pb, nb = pipelined_bus(), non_pipelined_bus()
    names = ["pops", "thor", "pero"]
    traces = [make_trace(name, length=length) for name in names]

    print("--- trace stats (targets: instr 49.7 / rd 39.8 / wr 10.5; spins 1/3 of reads in pops+thor) ---")
    for trace in traces:
        s = compute_statistics(trace.records, trace.name)
        print(
            f"{trace.name:5s} instr={100*s.instr_fraction:5.2f} rd={100*s.read_fraction:5.2f} "
            f"wr={100*s.write_fraction:5.2f} sys={100*s.system_fraction:5.2f} "
            f"spin/rd={100*s.spin_read_fraction_of_reads:5.2f} r/w={s.read_write_ratio:4.1f}"
        )

    per_scheme = {}
    for scheme in ["dir1nb", "wti", "dir0b", "dragon"]:
        runs = [simulate(trace, scheme) for trace in traces]
        per_scheme[scheme] = (merge_results(runs), runs)

    print("\n--- event frequencies, 3-trace pooled (% of refs); paper values in [] ---")
    merged, _ = per_scheme["dir1nb"]
    f = merged.frequencies()
    print(f"dir1nb  rm={100*f.read_miss_fraction:5.2f} [5.18]  wm={100*f.write_miss_fraction:5.2f} [0.17]  "
          f"bcpr={merged.bus_cycles_per_reference(pb):.4f}/{merged.bus_cycles_per_reference(nb):.4f} [0.321/...]")
    merged, _ = per_scheme["wti"]
    f = merged.frequencies()
    print(f"wti     rm={100*f.read_miss_fraction:5.2f} [0.62]  wm={100*f.write_miss_fraction:5.2f} [0.12]  "
          f"bcpr={merged.bus_cycles_per_reference(pb):.4f}/{merged.bus_cycles_per_reference(nb):.4f} [0.147/...]")
    merged, _ = per_scheme["dir0b"]
    f = merged.frequencies()
    print(f"dir0b   rm={100*f.percent(E.RM_BLK_CLN)/100:5.2f}+{f.percent(E.RM_BLK_DRTY):4.2f} [0.23+0.40]  "
          f"wm={f.percent(E.WM_BLK_CLN):4.2f}+{f.percent(E.WM_BLK_DRTY):4.2f} [0.02+0.09]  "
          f"wh_cln={f.percent(E.WH_BLK_CLN):4.2f} [0.41]  "
          f"bcpr={merged.bus_cycles_per_reference(pb):.4f} [0.0491]  "
          f"single_inv={merged.single_invalidation_fraction():.2f} [>0.85]")
    merged, _ = per_scheme["dragon"]
    f = merged.frequencies()
    print(f"dragon  rm={100*f.read_miss_fraction:5.2f} [0.30]  wm={100*f.write_miss_fraction:5.2f} [0.02]  "
          f"wh_dist={f.percent(E.WH_DISTRIB):4.2f} [1.74]  "
          f"bcpr={merged.bus_cycles_per_reference(pb):.4f} [0.0336]")
    print(f"first_ref={f.percent(E.RM_FIRST_REF)+f.percent(E.WM_FIRST_REF):4.2f} [0.40]")

    print("\n--- per-trace bcpr pipelined (fig 3 shape: pero << pops ~ thor) ---")
    for scheme in ["dir1nb", "wti", "dir0b", "dragon"]:
        _, runs = per_scheme[scheme]
        row = "  ".join(f"{r.trace_name}={r.bus_cycles_per_reference(pb):.4f}" for r in runs)
        print(f"{scheme:7s} {row}")

    print("\n--- section 5.2: exclude lock spins (dir1nb should drop ~0.32->0.12; dir0b ~same) ---")
    for scheme in ["dir1nb", "dir0b"]:
        runs = [
            simulate(Trace(t.name, list(exclude_lock_spins(t.records))), scheme)
            for t in traces
        ]
        merged = merge_results(runs)
        print(f"{scheme:7s} bcpr_nospin={merged.bus_cycles_per_reference(pb):.4f}")


if __name__ == "__main__":
    main()
