"""Seed the golden regression corpus under tests/corpus/.

The corpus normally grows organically: a fuzz campaign finds a failure,
the shrinker minimizes it, and ``repro verify --update-corpus`` banks
the reproducer.  This script plants the initial entries — one compact
adversarial trace per fuzzer pattern plus the mutation-testing driver
prefix, and a second campaign of capacity-stressing traces tagged with
a finite cache geometry — so corpus replay exercises every sharing
pathology (and eviction/recall under finite caches) from day one.
Every registered protocol must pass every entry clean.

Deterministic: re-running produces byte-identical files (and the
content-addressed dedup makes it a no-op on an already-seeded corpus).

Usage::

    PYTHONPATH=src python tools/seed_corpus.py [corpus-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.trace.stream import Trace  # noqa: E402
from repro.verify import PATTERNS, Corpus, TraceFuzzer  # noqa: E402
from repro.verify.mutation import mutation_trace  # noqa: E402

SEED = 0
#: Small budgets keep committed reproducers reviewable.
MIN_REFS, MAX_REFS = 12, 24

#: Finite-capacity entries replay under this geometry (2 sets x 2
#: ways), tight enough that the seeded traces evict steadily and the
#: oracle's write-back audit engages.
FINITE_GEOMETRY = "4x2"
FINITE_SEED = 1
#: Campaign indices of the capacity-stressing patterns: migratory,
#: wide-sharing, interleaved-blocks, chaos.
FINITE_INDICES = (0, 3, 4, 5)


def seed(corpus_dir: Path) -> int:
    corpus = Corpus(corpus_dir)
    saved = 0
    fuzzer = TraceFuzzer(seed=SEED, min_refs=MIN_REFS, max_refs=MAX_REFS)
    for trace in fuzzer.traces(len(PATTERNS)):
        pattern = trace.name.rsplit("-", 1)[-1]
        if corpus.save(trace, {"kind": "seed", "pattern": pattern, "seed": SEED}):
            saved += 1

    driver = mutation_trace(SEED)
    prefix = Trace(
        name=f"{driver.name}-prefix",
        records=driver.records[:20],
        description="first 20 refs of the mutation-testing driver",
    )
    if corpus.save(prefix, {"kind": "seed", "pattern": "mutation-driver", "seed": SEED}):
        saved += 1

    finite_fuzzer = TraceFuzzer(seed=FINITE_SEED, min_refs=MIN_REFS, max_refs=MAX_REFS)
    for index in FINITE_INDICES:
        trace = finite_fuzzer.trace(index)
        meta = {
            "kind": "seed",
            "pattern": PATTERNS[index % len(PATTERNS)],
            "seed": FINITE_SEED,
            "geometry": FINITE_GEOMETRY,
        }
        if corpus.save(trace, meta):
            saved += 1
    return saved


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent.parent / "tests" / "corpus"
    )
    count = seed(target)
    total = len(Corpus(target))
    print(f"seeded {count} new entries ({total} total) in {target}")
