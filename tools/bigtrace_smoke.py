#!/usr/bin/env python
"""Bounded-memory acceptance check for the chunked trace store.

Generates a ``.ctrc`` trace many times larger than the process RSS
ceiling, then proves the bounded-memory claim three independent ways —
each phase running in its own subprocess with ``RLIMIT_DATA`` set, so
an unbounded allocation fails loudly instead of quietly paging:

1. **serial** — the chunk-streamed kernel path (``Simulator.run`` over
   ``iter_chunks``);
2. **pooled** — the resilient sweep fanning the same cell across a
   process pool (chunk *handles* cross the pickle boundary);
3. **interrupt + resume** — a deterministic mid-cell kill between
   chunk boundaries, then a resume from the mid-chunk snapshot.

All three result digests must be bit-identical, and (at a scale the
ceiling can hold) also bit-identical to the in-memory columnar path.
Run directly or via ``make bigtrace``; CI runs it with the defaults.

Exit status: 0 on success, 1 with a FAILED report otherwise.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

DEFAULT_RECORDS = 27_000_000  # x 26 B/record = ~670 MiB raw (>10x ceiling)
DEFAULT_CEILING_MB = 64
DEFAULT_MIN_RATIO = 10.0
DEFAULT_SCHEME = "dir0b"
DEFAULT_WORKLOAD = "pops"
CHUNK_RECORDS = 262_144
# Not a divisor of CHUNK_RECORDS (2**18), so *every* snapshot position
# falls mid-chunk and the resume phase always exercises the
# (chunk index, intra-chunk offset) manifest path.
CHECKPOINT_EVERY = 100_000


def peak_rss_mb() -> float:
    """Peak RSS of this process and its reaped children, in MB."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(own, kids) / 1024.0


def apply_ceiling(ceiling_mb: int) -> None:
    """Cap anonymous memory (heap + private mmaps) for this process.

    ``RLIMIT_DATA`` — not ``RLIMIT_AS`` — so the read-only file-backed
    map of the trace itself does not count against the ceiling; the
    claim under test is about *heap* growth.
    """
    limit = ceiling_mb * 1024 * 1024
    resource.setrlimit(resource.RLIMIT_DATA, (limit, limit))


def result_digest(result) -> str:
    from repro.runner.checkpoint import result_to_json

    payload = json.dumps(result_to_json(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def emit(payload: dict) -> None:
    """Phase protocol: the last stdout line is the phase's JSON report."""
    payload["rss_mb"] = round(peak_rss_mb(), 1)
    print(json.dumps(payload))


# ----------------------------------------------------------------------
# Phases (each runs as a subprocess with the rlimit applied)
# ----------------------------------------------------------------------


def phase_gen(args) -> int:
    from repro.store import write_stream
    from repro.workloads.registry import stream_trace

    start = time.perf_counter()
    meta = write_stream(
        stream_trace(args.workload, length=args.records),
        args.path,
        codec=args.codec,
        chunk_records=CHUNK_RECORDS,
    )
    emit({
        "phase": "gen",
        "records": meta["records"],
        "chunks": len(meta["chunks"]),
        "fingerprint": meta["fingerprint"],
        "seconds": round(time.perf_counter() - start, 1),
    })
    return 0


def phase_serial(args) -> int:
    from repro.core.simulator import Simulator
    from repro.store import ChunkedTrace

    start = time.perf_counter()
    with ChunkedTrace(args.path) as trace:
        result = Simulator().run(trace, args.scheme)
    emit({
        "phase": "serial",
        "digest": result_digest(result),
        "seconds": round(time.perf_counter() - start, 1),
    })
    return 0


def phase_pooled(args) -> int:
    from repro.runner.resilient import run_resilient_sweep
    from repro.store import ChunkedTrace

    start = time.perf_counter()
    with ChunkedTrace(args.path) as trace:
        outcome = run_resilient_sweep([trace], [args.scheme], jobs=args.jobs)
        if not outcome.ok:
            print(f"pooled sweep failed: {outcome.all_failures()}", file=sys.stderr)
            return 1
        result = outcome.result(args.scheme, trace.name)
    emit({
        "phase": "pooled",
        "digest": result_digest(result),
        "seconds": round(time.perf_counter() - start, 1),
    })
    return 0


def _kill_trigger(records: int) -> int:
    """Saboteur trigger: counts *data* references (~48% of records in
    the synthetic workloads), so records // 5 kills the run roughly
    two-fifths of the way through — far from both ends, never on a
    chunk boundary (the snapshot granularity is CHECKPOINT_EVERY,
    which no chunk boundary divides)."""
    return max(1000, records // 5) + 37


def _saboteur_factory(scheme: str, trigger_after: int):
    from repro.protocols.registry import make_protocol
    from repro.runner.faults import SaboteurProtocol

    def factory(num_caches: int):
        return SaboteurProtocol(
            make_protocol(scheme, num_caches),
            trigger_after=trigger_after,
            mode="kill",
        )

    factory.scheme_key = scheme
    return factory


def phase_interrupt(args) -> int:
    """Kill the cell deterministically mid-chunk; leave the snapshot."""
    from repro.runner.checkpoint import CheckpointManager
    from repro.runner.faults import KillPoint
    from repro.runner.resilient import run_resilient_sweep
    from repro.store import ChunkedTrace

    factory = _saboteur_factory(args.scheme, _kill_trigger(args.records))
    with ChunkedTrace(args.path) as trace:
        KillPoint.arm()
        try:
            run_resilient_sweep(
                [trace], [factory],
                checkpoint_dir=args.checkpoint,
                checkpoint_every=CHECKPOINT_EVERY,
            )
        except KeyboardInterrupt:
            pass
        else:
            print("saboteur never fired — no mid-cell kill", file=sys.stderr)
            return 1
        finally:
            KillPoint.disarm()

        state = CheckpointManager(args.checkpoint).load_cell_state()
        if state is None:
            print("no mid-cell snapshot survived the kill", file=sys.stderr)
            return 1
        chunk_position = state.get("chunk_position")
        if not chunk_position or chunk_position[1] == 0:
            print(
                f"snapshot {chunk_position} is chunk-aligned; the resume "
                "phase would not exercise the mid-chunk path",
                file=sys.stderr,
            )
            return 1
        if not 0 < state["records_done"] < len(trace):
            print(f"implausible snapshot position {state['records_done']}",
                  file=sys.stderr)
            return 1
    emit({
        "phase": "interrupt",
        "records_done": state["records_done"],
        "chunk_position": list(chunk_position),
    })
    return 0


def phase_resume(args) -> int:
    from repro.runner.resilient import run_resilient_sweep
    from repro.store import ChunkedTrace

    factory = _saboteur_factory(args.scheme, _kill_trigger(args.records))
    start = time.perf_counter()
    with ChunkedTrace(args.path) as trace:
        outcome = run_resilient_sweep(
            [trace], [factory],
            checkpoint_dir=args.checkpoint,
            checkpoint_every=CHECKPOINT_EVERY,
            resume=True,
        )
        if not outcome.ok:
            print(f"resumed sweep failed: {outcome.all_failures()}", file=sys.stderr)
            return 1
        result = outcome.result(args.scheme, trace.name)
    emit({
        "phase": "resume",
        "digest": result_digest(result),
        "seconds": round(time.perf_counter() - start, 1),
    })
    return 0


PHASES = {
    "gen": phase_gen,
    "serial": phase_serial,
    "pooled": phase_pooled,
    "interrupt": phase_interrupt,
    "resume": phase_resume,
}


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------


def run_phase(name: str, args, extra: list[str] | None = None) -> dict:
    """Run one phase as a subprocess and parse its JSON report line."""
    command = [
        sys.executable, os.path.abspath(__file__),
        "--phase", name,
        "--path", str(args.path),
        "--records", str(args.records),
        "--ceiling-mb", str(args.ceiling_mb),
        "--scheme", args.scheme,
        "--workload", args.workload,
        "--codec", args.codec,
        "--jobs", str(args.jobs),
    ]
    if extra:
        command.extend(extra)
    completed = subprocess.run(command, capture_output=True, text=True)
    if completed.returncode != 0:
        raise RuntimeError(
            f"phase {name} exited {completed.returncode}:\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    last = completed.stdout.strip().splitlines()[-1]
    report = json.loads(last)
    print(
        f"  {name:<9s} rss {report['rss_mb']:>6.1f} MB"
        + (f"  {report['seconds']:>7.1f}s" if "seconds" in report else "")
        + (f"  digest {report['digest'][:12]}" if "digest" in report else "")
    )
    return report


def verify_inmemory(args) -> None:
    """Small-scale proof that chunked digests equal in-memory columnar.

    The big file cannot be held in memory under the ceiling, so the
    cross-representation check runs at a scale that can — same code
    paths, just fewer records.
    """
    from repro.core.simulator import Simulator
    from repro.store import ChunkedTrace, pack_trace
    from repro.trace.columnar import ColumnarTrace
    from repro.workloads.registry import make_trace

    trace = make_trace(args.workload, length=args.verify_records)
    columnar = ColumnarTrace.from_trace(trace)
    simulator = Simulator()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "verify.ctrc"
        pack_trace(columnar, path, codec=args.codec, chunk_records=30_011)
        with ChunkedTrace(path) as chunked:
            chunked_digest = result_digest(simulator.run(chunked, args.scheme))
    columnar_digest = result_digest(simulator.run(columnar, args.scheme))
    if chunked_digest != columnar_digest:
        raise RuntimeError(
            f"chunked digest {chunked_digest} != in-memory columnar "
            f"digest {columnar_digest} at {args.verify_records} records"
        )
    print(f"  in-memory parity OK at {args.verify_records:,} records "
          f"(digest {columnar_digest[:12]})")


def orchestrate(args) -> int:
    problems: list[str] = []
    keep = args.path is not None
    workdir = None
    if args.path is None:
        workdir = tempfile.TemporaryDirectory(prefix="bigtrace-")
        args.path = Path(workdir.name) / "big.ctrc"
    args.path = Path(args.path)

    print(
        f"bigtrace smoke: {args.records:,} records of '{args.workload}' "
        f"({args.codec}), ceiling {args.ceiling_mb} MB, scheme {args.scheme}"
    )
    try:
        reports: dict[str, dict] = {}
        with tempfile.TemporaryDirectory(prefix="bigtrace-ckpt-") as ckpt:
            for name in ("gen", "serial", "pooled", "interrupt", "resume"):
                extra = (
                    ["--checkpoint", ckpt]
                    if name in ("interrupt", "resume")
                    else None
                )
                reports[name] = run_phase(name, args, extra)

        # In-process and *after* the phases: Linux ru_maxrss survives
        # fork+exec, so running this memory-hungry check first would
        # contaminate every phase's reported peak with the
        # orchestrator's.
        verify_inmemory(args)

        file_mb = args.path.stat().st_size / (1024 * 1024)
        ratio = file_mb / args.ceiling_mb
        print(f"  store    {file_mb:,.0f} MB on disk = {ratio:.1f}x the ceiling")
        if ratio < args.min_ratio:
            problems.append(
                f"store is only {ratio:.1f}x the RSS ceiling "
                f"(need >= {args.min_ratio}x); raise --records"
            )
        for name, report in reports.items():
            if report["rss_mb"] > args.ceiling_mb:
                problems.append(
                    f"phase {name} peaked at {report['rss_mb']} MB RSS, "
                    f"over the {args.ceiling_mb} MB ceiling"
                )
        digests = {
            name: reports[name]["digest"]
            for name in ("serial", "pooled", "resume")
        }
        if len(set(digests.values())) != 1:
            problems.append(f"result digests diverged: {digests}")
        position = reports["interrupt"]["chunk_position"]
        print(
            f"  resume from chunk {position[0]} offset {position[1]:,} "
            f"(record {reports['interrupt']['records_done']:,})"
        )
    finally:
        if workdir is not None and not keep:
            workdir.cleanup()

    if problems:
        print("bigtrace smoke FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("bigtrace smoke OK: bounded memory, bit-identical digests")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=DEFAULT_RECORDS)
    parser.add_argument("--ceiling-mb", type=int, default=DEFAULT_CEILING_MB)
    parser.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
                        help="required file-size : RSS-ceiling ratio")
    parser.add_argument("--scheme", default=DEFAULT_SCHEME)
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD)
    parser.add_argument("--codec", choices=("raw", "zlib"), default="raw",
                        help="raw maximizes file size per record and "
                        "exercises the zero-copy mmap path")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--verify-records", type=int, default=400_000,
                        help="scale of the in-memory columnar parity check")
    parser.add_argument("--path", default=None,
                        help="keep the store at this path (default: tmpdir)")
    parser.add_argument("--phase", choices=sorted(PHASES), default=None,
                        help=argparse.SUPPRESS)  # internal: subprocess entry
    parser.add_argument("--checkpoint", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.phase is not None:
        apply_ceiling(args.ceiling_mb)
        return PHASES[args.phase](args)
    return orchestrate(args)


if __name__ == "__main__":
    sys.exit(main())
