"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable wheels (no ``wheel`` package required).
"""

from setuptools import setup

setup()
