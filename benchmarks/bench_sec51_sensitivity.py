"""S5.1: fixed-overhead sensitivity, Berkeley estimate, system bound."""

from conftest import emit


def test_section51_overhead_sensitivity(exp, benchmark):
    artifact = benchmark(exp.section51)
    emit(artifact)
    dir0b = artifact.data["dir0b"]
    dragon = artifact.data["dragon"]
    benchmark.extra_info["dir0b_base"] = round(dir0b.base, 4)
    benchmark.extra_info["dir0b_slope"] = round(dir0b.slope, 4)
    benchmark.extra_info["dragon_base"] = round(dragon.base, 4)
    benchmark.extra_info["dragon_slope"] = round(dragon.slope, 4)
    excess_q0 = dir0b.relative_excess(dragon, 0.0)
    excess_q1 = dir0b.relative_excess(dragon, 1.0)
    benchmark.extra_info["excess_pct_q0"] = round(100 * excess_q0, 1)
    benchmark.extra_info["excess_pct_q1"] = round(100 * excess_q1, 1)
    # Paper: Dragon's transactions/ref (0.0206) are ~2x Dir0B's
    # (0.0114), so Dir0B's excess shrinks from 46% at q=0 to 12% at q=1.
    assert dragon.slope > dir0b.slope
    assert excess_q1 < excess_q0


def test_section51_berkeley_estimate(exp, benchmark):
    artifact = benchmark(exp.section51)
    berkeley = artifact.data["berkeley"]
    dir0b = artifact.data["dir0b"].base
    benchmark.extra_info["berkeley_cycles_per_ref"] = round(berkeley, 4)
    # Berkeley = Dir0B with free directory probes: at or slightly
    # below Dir0B (the paper places it between Dir0B and Dragon).
    assert berkeley <= dir0b


def test_section5_system_bound(exp, benchmark):
    artifact = benchmark(exp.section5_system)
    emit(artifact)
    bounds = artifact.data
    best = max(bound.max_processors for bound in bounds.values())
    benchmark.extra_info["best_scheme_max_processors"] = round(best, 1)
    # Paper: the best scheme supports only ~15 effective processors on
    # a 100 ns shared bus at 10 MIPS.
    assert 8 < best < 40
    assert bounds["dir1nb"].max_processors < bounds["dragon"].max_processors
