"""T1/T2: bus timing (Table 1) and derived per-event costs (Table 2)."""

from conftest import emit


def test_table1_bus_timing(exp, benchmark):
    artifact = benchmark(exp.table1)
    emit(artifact)
    assert artifact.data["Invalidate"] == 1


def test_table2_bus_cycle_costs(exp, benchmark):
    artifact = benchmark(exp.table2)
    emit(artifact)
    pipelined = artifact.data["pipelined"]
    non_pipelined = artifact.data["non-pipelined"]
    benchmark.extra_info["pipelined_mem_access"] = pipelined["memory access"]
    benchmark.extra_info["non_pipelined_mem_access"] = non_pipelined["memory access"]
    # Paper Table 2: 5 vs 7 cycles for a memory access.
    assert pipelined["memory access"] == 5
    assert non_pipelined["memory access"] == 7
