"""S5.2: impact of spin locks on cache consistency performance."""

from conftest import emit


def test_section52_spin_lock_impact(exp, benchmark):
    artifact = benchmark.pedantic(exp.section52, rounds=1, iterations=1)
    emit(artifact)
    impacts = {impact.scheme: impact for impact in artifact.data}
    dir1nb = impacts["dir1nb"]
    dir0b = impacts["dir0b"]
    benchmark.extra_info["dir1nb_with_spins"] = round(dir1nb.with_spins, 4)
    benchmark.extra_info["dir1nb_without_spins"] = round(dir1nb.without_spins, 4)
    benchmark.extra_info["dir0b_with_spins"] = round(dir0b.with_spins, 4)
    benchmark.extra_info["dir0b_without_spins"] = round(dir0b.without_spins, 4)
    # Paper: Dir1NB improves from 0.32 to 0.12 (spin locks bounce blocks
    # between the spinners' caches); Dir0B gives the same performance.
    assert dir1nb.relative_drop > 0.4
    assert abs(dir0b.relative_drop) < 0.15
    assert dir1nb.without_spins > dir0b.without_spins
