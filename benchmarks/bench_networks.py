"""Extension bench: the paper's scaling thesis on real topologies.

Prices every scheme's measured coherence traffic on point-to-point
networks — the quantitative form of Section 2's argument for
directories.
"""

from repro.analysis.networks import network_scaling_study
from repro.cost.network import NetworkModel, Topology, network_cycles_per_reference

import pytest


def test_network_scaling_thesis(exp, benchmark):
    def study():
        return network_scaling_study(
            schemes=("dragon", "dir0b", "dirnnb", "coarse-vector"),
            topologies=(Topology.BUS, Topology.MESH_2D),
            node_counts=(4, 16),
            length=20_000,
        )

    points = benchmark.pedantic(study, rounds=1, iterations=1)

    def get(scheme, topology, nodes):
        return next(
            p for p in points
            if p.scheme == scheme and p.topology is topology and p.num_nodes == nodes
        )

    # Snoopy schemes cannot leave the bus.
    assert not get("dragon", Topology.MESH_2D, 16).hosted
    assert get("dragon", Topology.BUS, 16).hosted
    # No-broadcast directories beat broadcast directories on the mesh,
    # and the gap widens with machine size.
    gap_4 = (
        get("dir0b", Topology.MESH_2D, 4).cycles_per_reference
        / get("dirnnb", Topology.MESH_2D, 4).cycles_per_reference
    )
    gap_16 = (
        get("dir0b", Topology.MESH_2D, 16).cycles_per_reference
        / get("dirnnb", Topology.MESH_2D, 16).cycles_per_reference
    )
    benchmark.extra_info["mesh_broadcast_penalty_4"] = round(gap_4, 3)
    benchmark.extra_info["mesh_broadcast_penalty_16"] = round(gap_16, 3)
    assert gap_4 > 1.0
    assert gap_16 > gap_4


def test_network_pricing_of_paper_schemes(exp, benchmark):
    """Price the cached 4-process sweep on a 4-node mesh."""
    mesh = NetworkModel(Topology.MESH_2D, 4)

    def price():
        return {
            scheme: network_cycles_per_reference(exp.combined(scheme), mesh)
            for scheme in ("dir1nb", "dir0b", "dirnnb")
        }

    costs = benchmark(price)
    for scheme, value in costs.items():
        benchmark.extra_info[scheme] = round(value, 4)
    assert costs["dir1nb"] > costs["dir0b"]
    with pytest.raises(ValueError):
        network_cycles_per_reference(exp.combined("dragon"), mesh)
