"""F5: average bus cycles per bus transaction."""

from conftest import emit


def test_figure5_cycles_per_transaction(exp, benchmark):
    artifact = benchmark(exp.figure5)
    emit(artifact)
    costs = artifact.data
    for scheme, value in costs.items():
        benchmark.extra_info[f"{scheme}"] = round(value, 3)
    # Paper Figure 5: Dir1NB ~6.0, Dir0B ~4.3, Dragon ~1.6, WTI ~1.3.
    assert costs["dir1nb"] > costs["dir0b"] > costs["dragon"]
    assert costs["dir1nb"] > 4.5
    assert costs["wti"] < 2.5
    assert costs["dragon"] < 3.0
