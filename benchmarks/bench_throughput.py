"""Engineering benchmarks: simulator and generator throughput.

Not paper artifacts -- these measure the reproduction itself so
regressions in the hot paths (protocol state machines, trace
generation) are visible.
"""

import pytest

from repro.core.simulator import Simulator
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import workload_config

THROUGHPUT_LENGTH = 20_000


@pytest.fixture(scope="module")
def small_trace():
    return SyntheticWorkload(workload_config("pops", length=THROUGHPUT_LENGTH)).build()


def test_workload_generation_throughput(benchmark):
    config = workload_config("pops", length=THROUGHPUT_LENGTH)
    trace = benchmark(lambda: SyntheticWorkload(config).build())
    assert len(trace) == THROUGHPUT_LENGTH


@pytest.mark.parametrize(
    "scheme", ["dir1nb", "wti", "dir0b", "dragon", "dirnnb", "coarse-vector"]
)
def test_simulation_throughput(benchmark, small_trace, scheme):
    simulator = Simulator()
    result = benchmark(simulator.run, small_trace, scheme)
    assert result.total_refs == THROUGHPUT_LENGTH
    benchmark.extra_info["refs_per_run"] = THROUGHPUT_LENGTH


def test_simulation_with_invariant_checking_overhead(benchmark, small_trace):
    simulator = Simulator(check_invariants=100)
    result = benchmark(simulator.run, small_trace, "dir0b")
    assert result.total_refs == THROUGHPUT_LENGTH
