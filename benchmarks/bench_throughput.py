"""Engineering benchmarks: simulator and generator throughput.

Not paper artifacts -- these measure the reproduction itself so
regressions in the hot paths (protocol state machines, trace
generation) are visible.

Beyond the pytest-benchmark timings, the columnar-fast-path and
parallel-sweep tests time themselves with ``time.perf_counter`` and
write ``BENCH_throughput.json`` at the repo root (refs/sec per scheme,
speedups vs the record path and vs the recorded seed baseline), so the
headline numbers are produced even under ``--benchmark-disable`` -- the
mode the CI smoke job runs in.
"""

import json
import platform
import time
from pathlib import Path

import pytest

from repro.core.simulator import Simulator
from repro.runner.resilient import ResilientExperiment
from repro.trace.columnar import ColumnarTrace
from repro.workloads.base import SyntheticWorkload
from repro.workloads.registry import workload_config

THROUGHPUT_LENGTH = 20_000
FAST_PATH_LENGTH = 60_000
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

#: Record-path throughput of the seed revision (pre-fast-path, commit
#: cc36f3a) on the reference container, 60k-record pops trace.  The
#: columnar acceptance bar is >= 2x these; absolute numbers are only
#: comparable on similar hardware, so the JSON records both this
#: baseline and the record path measured in the same run.
SEED_RECORD_REFS_PER_SEC = {"dir0b": 443_121, "dragon": 347_795}


@pytest.fixture(scope="module")
def small_trace():
    return SyntheticWorkload(workload_config("pops", length=THROUGHPUT_LENGTH)).build()


@pytest.fixture(scope="module")
def fast_path_trace():
    return SyntheticWorkload(workload_config("pops", length=FAST_PATH_LENGTH)).build()


@pytest.fixture(scope="module")
def bench_report():
    """Collects headline numbers; written to BENCH_throughput.json at teardown."""
    report = {
        "benchmark": "bench_throughput",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "trace": {"workload": "pops", "length": FAST_PATH_LENGTH},
        "seed_record_refs_per_sec": dict(SEED_RECORD_REFS_PER_SEC),
        "schemes": {},
        "parallel_sweep": {},
    }
    yield report
    BENCH_JSON.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")


def _best_seconds(fn, repeats=3):
    """Wall-clock of the fastest of *repeats* calls."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_workload_generation_throughput(benchmark):
    config = workload_config("pops", length=THROUGHPUT_LENGTH)
    trace = benchmark(lambda: SyntheticWorkload(config).build())
    assert len(trace) == THROUGHPUT_LENGTH


@pytest.mark.parametrize(
    "scheme", ["dir1nb", "wti", "dir0b", "dragon", "dirnnb", "coarse-vector"]
)
def test_simulation_throughput(benchmark, small_trace, scheme):
    simulator = Simulator()
    result = benchmark(simulator.run, small_trace, scheme)
    assert result.total_refs == THROUGHPUT_LENGTH
    benchmark.extra_info["refs_per_run"] = THROUGHPUT_LENGTH


def test_simulation_with_invariant_checking_overhead(benchmark, small_trace):
    simulator = Simulator(check_invariants=100)
    result = benchmark(simulator.run, small_trace, "dir0b")
    assert result.total_refs == THROUGHPUT_LENGTH


@pytest.mark.parametrize("scheme", ["dir1nb", "wti", "dir0b", "dragon"])
def test_columnar_simulation_throughput(benchmark, small_trace, scheme):
    simulator = Simulator()
    columnar = ColumnarTrace.from_trace(small_trace)
    result = benchmark(simulator.run, columnar, scheme)
    assert result.total_refs == THROUGHPUT_LENGTH
    benchmark.extra_info["refs_per_run"] = THROUGHPUT_LENGTH


# ----------------------------------------------------------------------
# Columnar fast path vs record path (self-timed; feeds the JSON report)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheme", ["dir1nb", "wti", "dir0b", "dragon"])
def test_columnar_fast_path_speedup(bench_report, fast_path_trace, scheme):
    simulator = Simulator()
    columnar = ColumnarTrace.from_trace(fast_path_trace)
    columnar.data_view(simulator.sharer_key)  # steady state, not first-touch

    record_result = simulator.run(fast_path_trace, scheme)
    columnar_result = simulator.run(columnar, scheme)
    assert columnar_result == record_result  # never benchmark a wrong answer

    record_seconds = _best_seconds(lambda: simulator.run(fast_path_trace, scheme))
    columnar_seconds = _best_seconds(lambda: simulator.run(columnar, scheme))
    refs = len(fast_path_trace)
    entry = {
        "record_refs_per_sec": round(refs / record_seconds),
        "columnar_refs_per_sec": round(refs / columnar_seconds),
        "speedup_columnar_vs_record": round(record_seconds / columnar_seconds, 2),
    }
    seed = SEED_RECORD_REFS_PER_SEC.get(scheme)
    if seed is not None:
        entry["speedup_vs_seed_record"] = round(
            (refs / columnar_seconds) / seed, 2
        )
    bench_report["schemes"][scheme] = entry

    # The fast path must actually be fast; the margin is deliberately
    # loose so a noisy CI box never flakes (measured: 2.3x-2.6x).
    assert record_seconds / columnar_seconds >= 1.2


# ----------------------------------------------------------------------
# Parallel sweep (self-timed; feeds the JSON report)
# ----------------------------------------------------------------------

def test_parallel_sweep_throughput(bench_report, small_trace):
    thor = SyntheticWorkload(workload_config("thor", length=THROUGHPUT_LENGTH)).build()
    traces = [ColumnarTrace.from_trace(small_trace), ColumnarTrace.from_trace(thor)]
    schemes = ["dir1nb", "wti", "dir0b", "dragon"]

    timings = {}
    outcomes = {}
    for jobs in (1, 2, 4):
        experiment = ResilientExperiment(traces=traces, schemes=schemes, jobs=jobs)
        start = time.perf_counter()
        outcomes[jobs] = experiment.run()
        timings[str(jobs)] = round(time.perf_counter() - start, 4)
        assert not outcomes[jobs].all_failures()
    assert outcomes[2].results == outcomes[1].results == outcomes[4].results

    cells = len(schemes) * len(traces)
    refs = cells * THROUGHPUT_LENGTH
    bench_report["parallel_sweep"] = {
        "cells": cells,
        "refs_total": refs,
        "seconds_by_jobs": timings,
        "refs_per_sec_by_jobs": {
            jobs: round(refs / seconds) for jobs, seconds in timings.items()
        },
    }
