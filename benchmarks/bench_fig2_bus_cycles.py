"""F2: average bus cycles per reference, pipelined..non-pipelined range."""

from conftest import emit


def test_figure2_bus_cycle_ranges(exp, benchmark):
    artifact = benchmark(exp.figure2)
    emit(artifact)
    ranges = artifact.data
    for scheme, (low, high) in ranges.items():
        benchmark.extra_info[f"{scheme}_pipelined"] = round(low, 4)
        benchmark.extra_info[f"{scheme}_non_pipelined"] = round(high, 4)
    # Paper Figure 2 ordering (pipelined): Dir1NB 0.321 > WTI 0.147 >
    # Dir0B 0.049 > Dragon 0.034 -- and every non-pipelined bar higher.
    lows = {scheme: low for scheme, (low, _high) in ranges.items()}
    assert lows["Dir1NB"] > lows["WTI"] > lows["Dir0B"] > lows["Dragon"]
    for low, high in ranges.values():
        assert high > low
    # Dir0B approaches Dragon: within a factor of ~2 (paper: 1.46x).
    assert lows["Dir0B"] < 2.2 * lows["Dragon"]
    # Dir1NB is roughly an order of magnitude above Dir0B (paper: 6.5x).
    assert 3.0 < lows["Dir1NB"] / lows["Dir0B"] < 12.0
