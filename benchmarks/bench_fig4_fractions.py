"""F4: bus-cycle breakdown as a fraction of each scheme's total."""

from repro.cost.accounting import CostCategory

from conftest import emit


def test_figure4_breakdown_fractions(exp, benchmark):
    artifact = benchmark(exp.figure4)
    emit(artifact)
    fractions = artifact.data
    wti = fractions["wti"]
    dragon = fractions["dragon"]
    dir1nb = fractions["dir1nb"]
    benchmark.extra_info["wti_write_through_frac"] = round(
        wti[CostCategory.WRITE_THROUGH_OR_UPDATE], 3
    )
    benchmark.extra_info["dragon_update_frac"] = round(
        dragon[CostCategory.WRITE_THROUGH_OR_UPDATE], 3
    )
    # Paper Figure 4 shape: WTI dominated by write-throughs; Dragon
    # splits between loading caches and write updates; Dir1NB dominated
    # by memory accesses with small invalidation/write-back slices.
    assert wti[CostCategory.WRITE_THROUGH_OR_UPDATE] > 0.5
    assert 0.2 < dragon[CostCategory.WRITE_THROUGH_OR_UPDATE] < 0.8
    assert dir1nb[CostCategory.MEM_ACCESS] > 0.5
    assert dir1nb[CostCategory.INVALIDATION] < 0.3
