"""S6: scalable directory alternatives.

Covers the sequential-invalidation comparison (S6a), the Dir1B
broadcast-cost model (S6b), the limited-pointer sweep with coarse-vector
and storage accounting (S6c).
"""

from repro.analysis.scalability import wasted_invalidation_rate

from conftest import emit


def test_section6_sequential_vs_broadcast(exp, benchmark):
    artifact = benchmark.pedantic(exp.section6_sequential, rounds=1, iterations=1)
    emit(artifact)
    dir0b = artifact.data["dir0b"]
    dirnnb = artifact.data["dirnnb"]
    benchmark.extra_info["dir0b"] = round(dir0b, 4)
    benchmark.extra_info["dirnnb"] = round(dirnnb, 4)
    # Paper: 0.0491 -> 0.0499, a degradation under ~5% because most
    # invalidation situations involve at most one copy.
    assert dirnnb >= dir0b * 0.97
    assert dirnnb <= dir0b * 1.10


def test_section6_dir1b_broadcast_model(exp, benchmark):
    artifact = benchmark.pedantic(exp.section6_dir1b, rounds=1, iterations=1)
    emit(artifact)
    model = artifact.data
    benchmark.extra_info["base"] = round(model.base, 4)
    benchmark.extra_info["broadcasts_per_ref"] = round(model.rate, 5)
    # Paper model: 0.0485 + 0.0006b -- a linear law with a small rate.
    assert model.rate < 0.02
    assert model.cycles(1.0) < model.cycles(16.0)


def test_section6_pointer_sweep(exp, benchmark):
    artifact = benchmark.pedantic(
        exp.section6_sweep, args=((1, 2),), rounds=1, iterations=1
    )
    emit(artifact)
    points = {point.label: point for point in artifact.data}
    benchmark.extra_info["dir1nb_miss_pct"] = round(
        100 * points["Dir1NB"].data_miss_fraction, 3
    )
    benchmark.extra_info["dir2nb_miss_pct"] = round(
        100 * points["Dir2NB"].data_miss_fraction, 3
    )
    # Paper: DiriNB trades a slightly increased miss rate for avoiding
    # broadcasts; more pointers shrink that penalty.
    assert points["Dir2NB"].data_miss_fraction <= points["Dir1NB"].data_miss_fraction
    assert points["Dir2B"].broadcasts_per_reference <= points["Dir1B"].broadcasts_per_reference
    for label, point in points.items():
        if point.broadcast:
            assert point.pointer_evictions_per_reference == 0, label


def test_section6_coarse_vector(exp, benchmark):
    result = benchmark.pedantic(
        exp.combined, args=("coarse-vector",), rounds=1, iterations=1
    )
    cycles = result.bus_cycles_per_reference(exp.pipelined)
    dirnnb = exp.combined("dirnnb").bus_cycles_per_reference(exp.pipelined)
    benchmark.extra_info["coarse_vector_cycles"] = round(cycles, 4)
    benchmark.extra_info["wasted_invals_per_ref"] = round(
        wasted_invalidation_rate(result), 5
    )
    # The 2log(n)-bit code costs only slightly more than the full map
    # (wasted invalidations are rare with 4 caches).
    assert dirnnb * 0.97 <= cycles <= dirnnb * 1.15


def test_section6_storage_table(exp, benchmark):
    artifact = benchmark(exp.section6_storage)
    emit(artifact)
    table = artifact.data
    benchmark.extra_info["full_map_1024"] = table[1024]["full-map"]
    benchmark.extra_info["coarse_vector_1024"] = table[1024]["coarse-vector"]
    # The Section 6 storage laws: constant, logarithmic, linear.
    assert table[1024]["two-bit"] == 2
    assert table[1024]["coarse-vector"] == 21
    assert table[1024]["full-map"] == 1025
