"""F1: invalidation-size histogram on writes to previously-clean blocks."""

from conftest import emit


def test_figure1_invalidation_histogram(exp, benchmark):
    artifact = benchmark(exp.figure1)
    emit(artifact)
    histogram = artifact.data
    benchmark.extra_info["single_or_none_pct"] = round(
        100 * histogram.single_or_none_fraction, 2
    )
    benchmark.extra_info["mean_invalidations"] = round(
        histogram.mean_invalidations, 3
    )
    benchmark.extra_info["population"] = histogram.population
    # Paper Figure 1: over 85% of such writes invalidate at most one
    # cache (we accept >=75% on the synthetic analogues).
    assert histogram.population > 200
    assert histogram.single_or_none_fraction > 0.75
    # The histogram is monotonically non-increasing beyond one sharer.
    assert histogram.buckets.get(2, 0) >= histogram.buckets.get(3, 0)
