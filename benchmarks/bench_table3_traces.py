"""T3: trace characteristics of the three workload analogues."""

from conftest import emit


def test_table3_trace_characteristics(exp, benchmark):
    artifact = benchmark(exp.table3)
    emit(artifact)
    stats = {s.name: s for s in artifact.data}
    benchmark.extra_info["pops_instr_frac"] = round(stats["pops"].instr_fraction, 4)
    benchmark.extra_info["pops_spin_frac_of_reads"] = round(
        stats["pops"].spin_read_fraction_of_reads, 4
    )
    benchmark.extra_info["pero_read_write_ratio"] = round(
        stats["pero"].read_write_ratio, 2
    )
    # Paper Section 4.4: ~50% instructions, one-third of POPS/THOR
    # reads are lock spins, PERO has a high r/w ratio without spins.
    assert 0.44 < stats["pops"].instr_fraction < 0.56
    assert stats["pops"].spin_read_fraction_of_reads > 0.25
    assert stats["thor"].spin_read_fraction_of_reads > 0.25
    assert stats["pero"].spin_read_fraction_of_reads < 0.02
    assert stats["pero"].read_write_ratio > 2.5
