"""Shared fixtures for the benchmark harness.

Each bench regenerates one artifact of the paper (see DESIGN.md's
per-experiment index), records headline numbers in ``extra_info``
(visible in ``--benchmark-verbose`` / JSON output), and writes the full
ASCII rendering to ``benchmarks/_artifacts/<id>.txt`` so the rows the
paper reports can be inspected after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.report.experiments import PaperExperiments

BENCH_LENGTH = 60_000
ARTIFACT_DIR = Path(__file__).parent / "_artifacts"


@pytest.fixture(scope="session")
def exp() -> PaperExperiments:
    """A pre-warmed experiment driver shared by every bench.

    The four-scheme simulation sweep runs once here; individual benches
    then measure the per-artifact analysis cost on top of it.
    """
    experiments = PaperExperiments(length=BENCH_LENGTH)
    experiments.experiment  # warm the sweep
    return experiments


def emit(artifact) -> None:
    """Persist an artifact's rendering for post-run inspection."""
    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / f"{artifact.artifact_id}.txt"
    path.write_text(artifact.text + "\n", encoding="utf-8")
