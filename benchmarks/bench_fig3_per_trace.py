"""F3: per-trace bus cycles per reference."""

from conftest import emit


def test_figure3_per_trace_ranges(exp, benchmark):
    artifact = benchmark(exp.figure3)
    emit(artifact)
    data = artifact.data
    for trace_name, ranges in data.items():
        for scheme, (low, _high) in ranges.items():
            benchmark.extra_info[f"{trace_name}_{scheme}"] = round(low, 4)
    # Paper Figure 3: POPS and THOR are similar; PERO is much smaller
    # for the sharing-dominated schemes because its shared-reference
    # fraction is much lower.
    for scheme in ("Dir1NB", "Dir0B", "Dragon"):
        pero = data["pero"][scheme][0]
        pops = data["pops"][scheme][0]
        thor = data["thor"][scheme][0]
        assert pero < 0.75 * pops
        assert pero < 0.75 * thor
        assert 0.4 < pops / thor < 2.5  # "similar"
