"""T5: per-operation bus-cycle breakdown (pipelined bus)."""

from repro.cost.accounting import CostCategory

from conftest import emit


def test_table5_breakdown(exp, benchmark):
    artifact = benchmark(exp.table5)
    emit(artifact)
    table = artifact.data
    totals = {scheme: sum(row.values()) for scheme, row in table.items()}
    for scheme, total in totals.items():
        benchmark.extra_info[f"{scheme}_cycles_per_ref"] = round(total, 4)
    # Paper Table 5 cumulative row: 0.3210 / 0.1466 / 0.0491 / 0.0336.
    assert totals["dir1nb"] > totals["wti"] > totals["dir0b"] > totals["dragon"]
    # The Dir0B directory row is a small share of the total (paper:
    # 0.0041 of 0.0491) -- the "directory is not a bottleneck" result.
    assert table["dir0b"][CostCategory.DIR_ACCESS] < 0.25 * totals["dir0b"]
    # Dir1NB's directory access is always overlapped.
    assert table["dir1nb"][CostCategory.DIR_ACCESS] == 0.0
