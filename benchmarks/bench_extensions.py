"""Extension benches: scaling study, bandwidth claim, Yen & Fu scheme.

These go beyond the paper's published artifacts but implement analyses
it explicitly calls for (larger machines, the directory-bandwidth
claim) or surveys (Yen & Fu).
"""

from repro.analysis.bandwidth import bandwidth_comparison
from repro.analysis.scaling import by_scheme, run_scaling_study
from repro.cost.accounting import CostCategory


def test_scaling_study_8_and_16_processes(exp, benchmark):
    """Footnote 5's study: how do the conclusions scale past 4 CPUs?"""

    def study():
        return run_scaling_study(
            exp.pipelined,
            schemes=("dir1nb", "dir0b", "dirnnb", "dragon"),
            process_counts=(4, 8, 16),
            length=30_000,
        )

    points = benchmark.pedantic(study, rounds=1, iterations=1)
    grouped = by_scheme(points)
    for scheme, series in grouped.items():
        for point in series:
            benchmark.extra_info[f"{scheme}_{point.num_processes}p"] = round(
                point.bus_cycles_per_reference, 4
            )
    # The paper's ordering must survive machine growth ...
    for index in range(3):
        assert (
            grouped["dir1nb"][index].bus_cycles_per_reference
            > grouped["dir0b"][index].bus_cycles_per_reference
            > grouped["dragon"][index].bus_cycles_per_reference
        )
    # ... and sequential invalidation stays close to broadcast even at 16.
    for index in range(3):
        assert (
            grouped["dirnnb"][index].bus_cycles_per_reference
            < 1.2 * grouped["dir0b"][index].bus_cycles_per_reference
        )
    # The small-invalidation property persists (what makes limited
    # pointers viable at scale).
    for point in grouped["dir0b"]:
        assert point.single_or_none_invalidation_fraction > 0.5


def test_directory_bandwidth_claim(exp, benchmark):
    """Section 5: directory bandwidth ~ memory bandwidth."""

    def compare():
        return {
            scheme: bandwidth_comparison(exp.combined(scheme))
            for scheme in ("dir1nb", "dir0b", "dirnnb")
        }

    comparisons = benchmark(compare)
    for scheme, comparison in comparisons.items():
        benchmark.extra_info[f"{scheme}_ratio"] = round(comparison.ratio, 3)
        assert 0.3 < comparison.ratio < 2.5, scheme


def test_yenfu_saves_directory_accesses(exp, benchmark):
    """Yen & Fu vs Censier–Feautrier: fewer directory cycles, same misses."""

    def run():
        return exp.combined("yenfu"), exp.combined("dirnnb")

    yenfu, cf = benchmark.pedantic(run, rounds=1, iterations=1)
    yenfu_dir = yenfu.breakdown_per_reference(exp.pipelined).get(
        CostCategory.DIR_ACCESS
    )
    cf_dir = cf.breakdown_per_reference(exp.pipelined).get(CostCategory.DIR_ACCESS)
    benchmark.extra_info["yenfu_dir_cycles"] = round(yenfu_dir, 4)
    benchmark.extra_info["cf_dir_cycles"] = round(cf_dir, 4)
    assert yenfu_dir < cf_dir
    assert yenfu.frequencies().data_miss_fraction == cf.frequencies().data_miss_fraction


def test_finite_cache_decomposition(exp, benchmark):
    """§4's first-order claim: finite cost = coherence + capacity."""
    from repro.analysis.finite import capacity_sweep

    trace = exp.traces[0]

    def sweep():
        return capacity_sweep(
            trace,
            "dir0b",
            exp.pipelined,
            geometries=[(32, 2), (128, 2), (512, 4)],
        )

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    shares = []
    for geometry, decomposition in results:
        benchmark.extra_info[f"capacity_share_{geometry.canonical()}"] = round(
            decomposition.capacity_share, 3
        )
        shares.append(decomposition.capacity_share)
    # Capacity share shrinks monotonically toward the infinite-cache
    # (pure coherence) regime the paper reports.
    assert shares[0] > shares[1] > shares[2]


def test_storage_overhead_extension(exp, benchmark):
    """Directory bits as a fraction of described memory across sizes."""
    from repro.analysis.scalability import storage_overhead_fraction

    def table():
        return {
            (org, n): storage_overhead_fraction(org, n)
            for org in ("two-bit", "limited-b", "coarse-vector", "full-map")
            for n in (16, 256, 1024)
        }

    overheads = benchmark(table)
    benchmark.extra_info["full_map_1024_pct"] = round(
        100 * overheads[("full-map", 1024)], 1
    )
    benchmark.extra_info["coarse_vector_1024_pct"] = round(
        100 * overheads[("coarse-vector", 1024)], 1
    )
    # The §6 punchline: at 1024 caches a full map costs 8x the memory
    # it describes; the coded directory stays under 17%.
    assert overheads[("full-map", 1024)] > 8
    assert overheads[("coarse-vector", 1024)] < 0.17


def test_seed_robustness_of_ordering(exp, benchmark):
    """The headline ordering holds across independently seeded draws."""
    from repro.analysis.robustness import seed_sensitivity

    def study():
        return seed_sensitivity(
            schemes=("dir1nb", "wti", "dir0b", "dragon"),
            bus=exp.pipelined,
            seeds=(1, 2, 3),
            length=20_000,
        )

    distributions = benchmark.pedantic(study, rounds=1, iterations=1)
    for scheme, distribution in distributions.items():
        benchmark.extra_info[f"{scheme}_mean"] = round(distribution.mean, 4)
        benchmark.extra_info[f"{scheme}_cv"] = round(
            distribution.coefficient_of_variation, 4
        )
    assert distributions["dir1nb"].dominates(distributions["wti"])
    assert distributions["wti"].dominates(distributions["dir0b"])
    assert distributions["dir0b"].dominates(distributions["dragon"])


def test_conclusions_artifact(exp, benchmark):
    """Section 7 re-derived: every conclusion holds on this build."""
    artifact = benchmark.pedantic(exp.conclusions, rounds=1, iterations=1)
    data = artifact.data
    benchmark.extra_info.update(
        {key: round(value, 4) for key, value in data.items()}
    )
    assert 1.0 < data["competitiveness"] < 2.2
    assert data["single_or_none"] > 0.75
    assert -0.02 < data["sequential_delta"] < 0.10
    assert data["max_processors"] < 40
