"""Ablations over the design choices DESIGN.md calls out.

The paper fixes a 16-byte block, a four-word bus transfer, and a FIFO
view of directory pointers; these benches vary each to show how
sensitive the headline results are.
"""

from repro.core.result import merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import pipelined_bus
from repro.cost.timing import BusTiming
from repro.memory.address import BlockMapper
from repro.memory.directory import PointerEvictionPolicy



def pooled(exp, scheme, simulator=None):
    simulator = simulator or Simulator()
    return merge_results([simulator.run(t, scheme) for t in exp.traces])


def test_ablation_block_size(exp, benchmark):
    """Larger blocks raise transfer costs and false-sharing misses."""

    def sweep():
        costs = {}
        for block_bytes in (16, 32, 64):
            simulator = Simulator(block_mapper=BlockMapper(block_bytes))
            bus = pipelined_bus(BusTiming(words_per_block=block_bytes // 4))
            costs[block_bytes] = pooled(exp, "dir0b", simulator).bus_cycles_per_reference(bus)
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, value in costs.items():
        benchmark.extra_info[f"block_{size}B"] = round(value, 4)
    # Bigger blocks move more words per transaction: with the paper's
    # workloads the per-reference cost grows with block size.
    assert costs[64] > costs[16]


def test_ablation_bus_words_per_block(exp, benchmark):
    """Table 1's 4-word transfer is the dominant cost constant."""
    result = exp.combined("dir0b")

    def sweep():
        return {
            words: result.bus_cycles_per_reference(
                pipelined_bus(BusTiming(words_per_block=words))
            )
            for words in (1, 2, 4, 8)
        }

    costs = benchmark(sweep)
    assert costs[1] < costs[2] < costs[4] < costs[8]
    benchmark.extra_info["cycles_1w"] = round(costs[1], 4)
    benchmark.extra_info["cycles_8w"] = round(costs[8], 4)


def test_ablation_pointer_eviction_policy(exp, benchmark):
    """DiriNB victim choice matters: LIFO evicts the sharer most likely
    to re-reference (the newest) and thrashes; FIFO is the sane default."""

    def sweep():
        costs = {}
        for policy in PointerEvictionPolicy:
            simulator = Simulator()
            results = [
                simulator.run(
                    trace, "dirinb", num_pointers=2, eviction_policy=policy
                )
                for trace in exp.traces
            ]
            costs[policy.value] = merge_results(results).bus_cycles_per_reference(
                exp.pipelined
            )
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for policy, value in costs.items():
        benchmark.extra_info[policy] = round(value, 4)
    assert costs["fifo"] <= costs["lifo"]
    assert max(costs.values()) < 3.0 * min(costs.values())


def test_ablation_sharing_view(exp, benchmark):
    """Process vs processor sharing: similar numbers (paper §4.4)."""

    def sweep():
        by_pid = pooled(exp, "dir0b", Simulator(sharer_key="pid"))
        by_cpu = pooled(exp, "dir0b", Simulator(sharer_key="cpu"))
        return (
            by_pid.bus_cycles_per_reference(exp.pipelined),
            by_cpu.bus_cycles_per_reference(exp.pipelined),
        )

    pid_cost, cpu_cost = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["by_pid"] = round(pid_cost, 4)
    benchmark.extra_info["by_cpu"] = round(cpu_cost, 4)
    # Migration is rare, so the two views nearly coincide -- but the
    # processor view can only add (migration-induced) sharing.
    assert cpu_cost >= pid_cost * 0.98
    assert cpu_cost < pid_cost * 1.5
