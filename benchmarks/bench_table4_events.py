"""T4: event frequencies for Dir1NB / WTI / Dir0B / Dragon."""

from repro.protocols.events import EventType

from conftest import emit


def test_table4_event_frequencies(exp, benchmark):
    artifact = benchmark(exp.table4)
    emit(artifact)
    frequencies = artifact.data
    dir1nb = frequencies["dir1nb"]
    dir0b = frequencies["dir0b"]
    dragon = frequencies["dragon"]
    benchmark.extra_info["dir1nb_rm_pct"] = round(100 * dir1nb.read_miss_fraction, 3)
    benchmark.extra_info["dir0b_rm_pct"] = round(100 * dir0b.read_miss_fraction, 3)
    benchmark.extra_info["dir0b_wh_blk_cln_pct"] = round(
        dir0b.percent(EventType.WH_BLK_CLN), 3
    )
    benchmark.extra_info["dragon_wh_distrib_pct"] = round(
        dragon.percent(EventType.WH_DISTRIB), 3
    )
    # Paper Table 4 shape: Dir1NB's rm (5.18%) dwarfs Dir0B's (0.62%);
    # about one-sixth of Dragon writes hit shared blocks.
    assert dir1nb.read_miss_fraction > 4 * dir0b.read_miss_fraction
    assert 0.05 < (
        dragon.percent(EventType.WH_DISTRIB) / (100 * dragon.write_fraction)
    ) < 0.45
