"""Cycle accounting by cost category (Table 5 plumbing)."""

import pytest

from repro.cost.accounting import (
    CostCategory,
    CycleBreakdown,
    aggregate_ops,
    category_of,
    charge_ops,
)
from repro.cost.bus import PAPER_PIPELINED
from repro.protocols.events import (
    OpKind,
    dir_check,
    invalidate,
    mem_access,
    write_back,
    write_word,
)


def test_every_op_kind_has_a_category():
    for kind in OpKind:
        assert isinstance(category_of(kind), CostCategory)


def test_category_mapping_matches_table5_rows():
    assert category_of(OpKind.MEM_ACCESS) is CostCategory.MEM_ACCESS
    assert category_of(OpKind.WRITE_WORD) is CostCategory.WRITE_THROUGH_OR_UPDATE
    assert category_of(OpKind.DIR_CHECK) is CostCategory.DIR_ACCESS
    assert category_of(OpKind.BROADCAST_INVALIDATE) is CostCategory.INVALIDATION


def test_charge_ops_from_iterable():
    breakdown = charge_ops(
        [mem_access(), write_back(), invalidate(2), dir_check(), write_word()],
        PAPER_PIPELINED,
    )
    assert breakdown.get(CostCategory.MEM_ACCESS) == 5
    assert breakdown.get(CostCategory.WRITE_BACK) == 4
    assert breakdown.get(CostCategory.INVALIDATION) == 2
    assert breakdown.get(CostCategory.DIR_ACCESS) == 1
    assert breakdown.get(CostCategory.WRITE_THROUGH_OR_UPDATE) == 1
    assert breakdown.total == 13


def test_charge_ops_from_mapping():
    breakdown = charge_ops({OpKind.MEM_ACCESS: 3, OpKind.INVALIDATE: 5}, PAPER_PIPELINED)
    assert breakdown.get(CostCategory.MEM_ACCESS) == 15
    assert breakdown.get(CostCategory.INVALIDATION) == 5


def test_per_reference_scaling():
    breakdown = charge_ops([mem_access()], PAPER_PIPELINED).per_reference(100)
    assert breakdown.get(CostCategory.MEM_ACCESS) == pytest.approx(0.05)
    with pytest.raises(ValueError):
        breakdown.per_reference(0)


def test_fractions_sum_to_one():
    breakdown = charge_ops(
        [mem_access(), write_back(), invalidate(1)], PAPER_PIPELINED
    )
    fractions = breakdown.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_fractions_of_empty_breakdown():
    assert CycleBreakdown().fractions() == {}
    assert CycleBreakdown().total == 0


def test_merged_with():
    a = charge_ops([mem_access()], PAPER_PIPELINED)
    b = charge_ops([mem_access(), write_back()], PAPER_PIPELINED)
    merged = a.merged_with(b)
    assert merged.get(CostCategory.MEM_ACCESS) == 10
    assert merged.get(CostCategory.WRITE_BACK) == 4
    # Inputs are unchanged.
    assert a.get(CostCategory.MEM_ACCESS) == 5


def test_aggregate_ops_sums_counts():
    counter = aggregate_ops([invalidate(2), invalidate(3), mem_access()])
    assert counter[OpKind.INVALIDATE] == 5
    assert counter[OpKind.MEM_ACCESS] == 1
