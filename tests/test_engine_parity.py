"""Differential parity: every execution stack is the same engine.

The engine refactor's acceptance bar: the serial record path, the
columnar fast path, a multi-process pooled sweep, and a
service-scheduled job must produce *byte-identical* result payloads —
and checkpoint manifests written before the refactor must resume
cleanly after it.
"""

import json

import pytest

from repro.core.simulator import Simulator
from repro.engine import Engine, EngineMetrics, ExecutionPlan
from repro.errors import CheckpointError
from repro.runner.checkpoint import (
    MANIFEST_MAGIC,
    MANIFEST_VERSION,
    CheckpointManager,
    result_to_json,
)
from repro.runner.resilient import ResilientExperiment
from repro.service.scheduler import Scheduler
from repro.service.spec import parse_job_spec
from repro.trace.columnar import ColumnarTrace
from repro.workloads.registry import make_trace

SCHEMES = ["dir1nb", "wti", "dir0b", "dragon"]
WORKLOAD = {"workload": "pops", "length": 1500, "seed": 3}


@pytest.fixture(scope="module")
def trace():
    return make_trace(WORKLOAD["workload"], length=WORKLOAD["length"],
                      seed=WORKLOAD["seed"])


def canonical(results) -> str:
    """Results as deterministic JSON text, for byte-level comparison."""
    payload = {
        scheme: {
            name: (result if isinstance(result, dict) else result_to_json(result))
            for name, result in per_trace.items()
        }
        for scheme, per_trace in results.items()
    }
    return json.dumps(payload, sort_keys=True)


def test_all_execution_stacks_are_byte_identical(trace):
    """Record path == columnar fast path == pooled sweep == service job."""
    record = Engine().run(ExecutionPlan(traces=[trace], schemes=SCHEMES))
    assert record.ok

    columnar = Engine().run(
        ExecutionPlan(traces=[ColumnarTrace.from_trace(trace)], schemes=SCHEMES)
    )
    pooled = Engine(jobs=2).run(ExecutionPlan(traces=[trace], schemes=SCHEMES))

    scheduler = Scheduler(workers=1, sim_jobs=1)
    scheduler.start()
    try:
        job, _ = scheduler.submit(
            parse_job_spec({"schemes": SCHEMES, "traces": [WORKLOAD]})
        )
        deadline_ok = _wait(lambda: job.finished)
    finally:
        scheduler.shutdown(mode="drain", timeout=30.0)
    assert deadline_ok and job.cell_errors == 0

    baseline = canonical(record.results)
    assert canonical(columnar.results) == baseline
    assert canonical(pooled.results) == baseline
    assert canonical(job.results) == baseline


def _wait(predicate, timeout=60.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# ----------------------------------------------------------------------
# Checkpoint-manifest compatibility across the refactor boundary
# ----------------------------------------------------------------------

def _pre_refactor_manifest(trace, completed_schemes):
    """A manifest exactly as the pre-engine runner serialized it."""
    simulator = Simulator()
    completed = {}
    for scheme in completed_schemes:
        result = simulator.run(trace, scheme, trace_name=trace.name)
        result.scheme = scheme
        completed[scheme] = {trace.name: result_to_json(result)}
    return {
        "magic": MANIFEST_MAGIC,
        "version": MANIFEST_VERSION,
        "fingerprint": {
            "schemes": list(SCHEMES),
            "traces": [trace.name],
            "sharer_key": "pid",
        },
        "completed": completed,
        "failures": [],
    }


def test_pre_refactor_manifest_resumes_post_refactor(tmp_path, trace):
    """A hand-written old-format manifest restores and completes cleanly."""
    checkpoint_dir = tmp_path / "ckpt"
    checkpoint_dir.mkdir()
    manifest = _pre_refactor_manifest(trace, completed_schemes=SCHEMES[:2])
    (checkpoint_dir / "manifest.json").write_text(
        json.dumps(manifest, indent=1, sort_keys=True), "utf-8"
    )

    metrics = EngineMetrics()
    outcome = Engine(
        checkpoint=CheckpointManager(checkpoint_dir), resume=True, observer=metrics
    ).run(ExecutionPlan(traces=[trace], schemes=SCHEMES))

    assert outcome.ok
    # Only the two unfinished cells simulated; the restored pair did not.
    assert metrics.get("cells_started") == 2
    fresh = Engine().run(ExecutionPlan(traces=[trace], schemes=SCHEMES))
    assert canonical(outcome.results) == canonical(fresh.results)

    # The resumed run's manifest is complete and still old-shape.
    final = json.loads((checkpoint_dir / "manifest.json").read_text("utf-8"))
    assert set(final) == {"magic", "version", "fingerprint", "completed", "failures"}
    assert final["fingerprint"] == manifest["fingerprint"]
    assert sorted(final["completed"]) == sorted(SCHEMES)


def test_manifest_from_runner_resumes_through_engine(tmp_path, trace):
    """A checkpoint cut by ResilientExperiment restores via Engine directly."""
    checkpoint_dir = tmp_path / "ckpt"
    first = ResilientExperiment(
        traces=[trace], schemes=SCHEMES, checkpoint=CheckpointManager(checkpoint_dir)
    ).run()
    assert first.ok

    metrics = EngineMetrics()
    resumed = Engine(
        checkpoint=CheckpointManager(checkpoint_dir), resume=True, observer=metrics
    ).run(ExecutionPlan(traces=[trace], schemes=SCHEMES))
    assert metrics.get("cells_started") == 0  # everything restored
    assert canonical(resumed.results) == canonical(first.results)


def test_resume_rejects_foreign_fingerprint(tmp_path, trace):
    checkpoint_dir = tmp_path / "ckpt"
    ResilientExperiment(
        traces=[trace], schemes=SCHEMES, checkpoint=CheckpointManager(checkpoint_dir)
    ).run()
    with pytest.raises(CheckpointError):
        Engine(checkpoint=CheckpointManager(checkpoint_dir), resume=True).run(
            ExecutionPlan(traces=[trace], schemes=["dir0b"])
        )


def test_runner_facade_and_engine_share_results(trace):
    """ResilientExperiment is a pure delegate: same results, same order."""
    facade = ResilientExperiment(traces=[trace], schemes=SCHEMES).run()
    direct = Engine().run(ExecutionPlan(traces=[trace], schemes=SCHEMES))
    assert canonical(facade.results) == canonical(direct.results)
    assert list(facade.results) == list(direct.results)  # sweep order
