"""Property tests: ``.ctrc`` round trips and fingerprint identity.

Two invariants carry the whole store design:

* **round trip** — any trace packed through any codec at any chunk
  size reads back record-for-record identical;
* **fingerprint identity** — the streaming content fingerprint equals
  the in-memory one for every representation of the same records
  (record list, columnar, chunked store, and the advisory copy in the
  store index), so cache/dedup keys never depend on how a trace is
  stored.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.store import ChunkedTrace, pack_trace, write_stream
from repro.store.writer import StreamingTraceWriter
from repro.trace.columnar import ColumnarTrace
from repro.trace.fingerprint import TraceHasher, fingerprint_trace
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace


@st.composite
def record_strategy(draw):
    """One arbitrary valid record (spin implies lock — a record invariant)."""
    lock = draw(st.booleans())
    return TraceRecord(
        cpu=draw(st.integers(0, 15)),
        pid=draw(st.integers(0, 15)),
        ref_type=draw(st.sampled_from(list(RefType))),
        address=draw(st.integers(0, (1 << 48) - 1)),
        system=draw(st.booleans()),
        lock=lock,
        spin=lock and draw(st.booleans()),
    )


def records_strategy(max_size=400):
    return st.lists(record_strategy(), max_size=max_size)


@settings(max_examples=30, deadline=None)
@given(
    records=records_strategy(),
    codec=st.sampled_from(["raw", "zlib"]),
    chunk_records=st.integers(1, 64),
)
def test_roundtrip_any_codec_any_chunking(tmp_path_factory, records, codec,
                                          chunk_records):
    path = tmp_path_factory.mktemp("rt") / "t.ctrc"
    trace = Trace(name="prop", records=records)
    meta = pack_trace(trace, path, codec=codec, chunk_records=chunk_records)
    assert meta["records"] == len(records)
    with ChunkedTrace(path) as readback:
        assert list(readback) == records
        assert len(readback) == len(records)
        # Chunk sizes: all full except possibly the last.
        sizes = [len(chunk) for chunk in readback.iter_chunks()]
        assert sum(sizes) == len(records)
        assert all(size == chunk_records for size in sizes[:-1])
        # Fingerprint identity across all four representations.
        expected = fingerprint_trace(trace)
        assert meta["fingerprint"] == expected
        assert readback.fingerprint() == expected
        if records:
            assert fingerprint_trace(ColumnarTrace.from_trace(trace)) == expected


@settings(max_examples=15, deadline=None)
@given(records=records_strategy(max_size=200), cut=st.integers(0, 200))
def test_slicing_matches_columnar(tmp_path_factory, records, cut):
    path = tmp_path_factory.mktemp("sl") / "t.ctrc"
    trace = Trace(name="slice", records=records)
    pack_trace(trace, path, codec="raw", chunk_records=17)
    columnar = ColumnarTrace.from_trace(trace)
    with ChunkedTrace(path) as readback:
        stop = min(cut, len(records))
        assert list(readback[:stop]) == list(columnar[:stop])
        assert list(readback[stop:]) == list(columnar[stop:])
        if records:
            index = stop % len(records)
            assert readback[index] == columnar[index]
            assert readback[-1] == records[-1]


def test_incremental_hasher_differential():
    """update_records and update_columns agree batch by batch."""
    records = [
        TraceRecord(cpu=i % 3, pid=i % 5, ref_type=list(RefType)[i % 3],
                    address=i * 977, system=bool(i % 2), lock=bool(i % 7 == 0),
                    spin=False)
        for i in range(1000)
    ]
    by_records = TraceHasher()
    by_records.update_records(records)
    columnar = ColumnarTrace.from_trace(Trace(name="h", records=records))
    by_columns = TraceHasher()
    by_columns.update_columns(
        columnar.cpu, columnar.pid, columnar.type_code,
        columnar.address, columnar.flags,
    )
    # Same content split across several update calls.
    split = TraceHasher()
    split.update_records(records[:311])
    split.update_records(records[311:])
    assert by_records.hexdigest() == by_columns.hexdigest() == split.hexdigest()


def test_empty_trace_roundtrip(tmp_path):
    path = tmp_path / "empty.ctrc"
    meta = write_stream(iter(()), path, "empty")
    assert meta["records"] == 0
    assert meta["chunks"] == []
    with ChunkedTrace(path) as trace:
        assert len(trace) == 0
        assert list(trace) == []
        assert trace.fingerprint() == meta["fingerprint"]


def test_writer_abort_leaves_no_file(tmp_path):
    path = tmp_path / "aborted.ctrc"
    with pytest.raises(RuntimeError, match="boom"):
        with StreamingTraceWriter(path, "x") as writer:
            writer.append(TraceRecord(cpu=0, pid=0, ref_type=RefType.READ,
                                      address=4))
            raise RuntimeError("boom")
    assert not path.exists()
    assert not path.with_name(path.name + ".tmp").exists()


def test_pickle_handle_reopens(tmp_path):
    from repro.workloads.registry import make_trace

    path = tmp_path / "h.ctrc"
    pack_trace(make_trace("pops", length=3000), path, chunk_records=700)
    with ChunkedTrace(path) as original:
        fingerprint = original.fingerprint()
        blob = pickle.dumps(original)
        # The handle is tiny: no chunk data crosses the boundary.
        assert len(blob) < 1000
    clone = pickle.loads(blob)
    assert clone.fingerprint() == fingerprint
    assert len(clone) == 3000
    assert clone.name == "pops"
    clone.close()


def test_append_columns_equals_append(tmp_path):
    from repro.workloads.registry import make_trace

    trace = make_trace("thor", length=2500, seed=5)
    by_record = tmp_path / "by_record.ctrc"
    by_column = tmp_path / "by_column.ctrc"
    meta_r = write_stream(iter(trace.records), by_record, "thor",
                          chunk_records=600)
    meta_c = pack_trace(ColumnarTrace.from_trace(trace), by_column,
                        name="thor", chunk_records=600)
    assert meta_r["fingerprint"] == meta_c["fingerprint"]
    assert meta_r["records"] == meta_c["records"]
    assert [c["crc32"] for c in meta_r["chunks"]] == [
        c["crc32"] for c in meta_c["chunks"]
    ]
