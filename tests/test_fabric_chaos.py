"""Crash recovery with real worker processes (the ISSUE acceptance run).

``run_chaos`` spawns N genuine ``repro work`` subprocesses on a shared
fabric database, arms one of them to SIGKILL *itself* mid-cell at a
seeded reference count, and asserts from the queue's own accounting
that the sweep still finished bit-identical to a serial engine run,
with exactly one lease reassignment and zero duplicate simulations.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import ConfigurationError
from repro.fabric.chaos import DEFAULT_SPEC, ENV_KILL, hook_from_env, run_chaos
from repro.runner.faults import FaultInjector, ProcessKiller

pytestmark = [
    pytest.mark.service,
    pytest.mark.skipif(
        not hasattr(signal, "SIGKILL") or os.name == "nt",
        reason="POSIX signal semantics required",
    ),
]

#: Smaller than DEFAULT_SPEC to keep the suite fast; still enough cells
#: that three workers all lease work before the queue drains.
SPEC = {
    "schemes": ["dir0b", "dir1nb", "wti", "dragon"],
    "traces": [{"workload": "pops", "length": 2500, "seed": 5}],
}


class TestKillPlan:
    def test_seeded_plan_is_deterministic(self):
        assert FaultInjector(3).kill_plan(3) == FaultInjector(3).kill_plan(3)
        plans = {FaultInjector(seed).kill_plan(3) for seed in range(8)}
        assert len(plans) > 1  # different seeds explore different kills

    def test_hook_from_env_parses_and_arms(self):
        assert hook_from_env({}) is None
        hook = hook_from_env({ENV_KILL: "1:25"})

        class FakeWorker:
            leases = 2  # currently running its lease index 1

        protocol = object()
        wrapped = hook(FakeWorker(), None, protocol)
        assert isinstance(wrapped, ProcessKiller)
        assert wrapped.kill_after == 25
        FakeWorker.leases = 1  # lease index 0: not the armed one
        assert hook(FakeWorker(), None, protocol) is protocol

    def test_hook_from_env_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            hook_from_env({ENV_KILL: "not-a-plan"})


class TestChaosScenario:
    def test_sigkill_mid_cell_recovers_bit_identical(self, tmp_path):
        report = run_chaos(
            db=tmp_path / "fabric.db",
            spec_payload=SPEC,
            workers=3,
            seed=0,
            lease_s=2.0,
            timeout_s=240.0,
        )
        assert report["ok"], report["checks"]
        # The victim really died by SIGKILL, mid-sweep.
        assert report["exit_codes"][report["kill"]["worker"]] == -signal.SIGKILL
        # Bit-for-bit parity with the serial engine run.
        assert report["fabric_digest_sha"] == report["serial_digest_sha"]
        stats = report["stats"]
        assert stats["reassignments"] == 1
        assert stats["duplicate_completions"] == 0
        assert stats["dead_letters"] == 0
        assert stats["cells"]["done"] == 4  # every cell, exactly once

    def test_control_run_without_kill_has_no_reassignments(self, tmp_path):
        report = run_chaos(
            db=tmp_path / "fabric.db",
            spec_payload=SPEC,
            workers=2,
            seed=1,
            kill=False,
            lease_s=30.0,
            timeout_s=240.0,
        )
        assert report["ok"], report["checks"]
        assert report["exit_codes"] == [0, 0]
        assert report["stats"]["reassignments"] == 0

    def test_default_spec_is_a_valid_job(self):
        from repro.service.spec import parse_job_spec

        spec = parse_job_spec(dict(DEFAULT_SPEC))
        assert spec.cell_count() >= 6  # enough cells for a 3-worker fleet

    def test_refuses_a_db_that_already_holds_the_job(self, tmp_path):
        run_chaos(
            db=tmp_path / "fabric.db",
            spec_payload=SPEC,
            workers=2,
            seed=2,
            kill=False,
            lease_s=30.0,
            timeout_s=240.0,
        )
        with pytest.raises(ConfigurationError):
            run_chaos(db=tmp_path / "fabric.db", spec_payload=SPEC, seed=2)
