"""Goodman's write-once protocol."""

from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED
from repro.protocols.snoopy.writeonce import WriteOnceProtocol, WriteOnceState
from repro.protocols.events import EventType, OpKind

from conftest import drive


def kinds_of(result):
    return [op.kind for op in result.ops]


def test_first_write_goes_through_to_memory():
    protocol = WriteOnceProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1)])
    final = results[1]
    assert final.event is EventType.WH_BLK_CLN
    assert kinds_of(final) == [OpKind.WRITE_WORD]
    assert protocol.holders(1) == {0: WriteOnceState.RESERVED}


def test_second_write_is_local():
    protocol = WriteOnceProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1), (0, "w", 1)])
    final = results[2]
    assert final.event is EventType.WH_BLK_DRTY
    assert final.ops == ()
    assert protocol.holders(1) == {0: WriteOnceState.DIRTY}


def test_write_once_invalidates_other_copies():
    protocol = WriteOnceProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1), (0, "w", 1)])
    final = results[3]
    assert final.clean_write_sharers == 2
    assert set(protocol.holders(1)) == {0}


def test_reserved_is_always_exclusive():
    protocol = WriteOnceProtocol(4)
    drive(
        protocol,
        [(0, "r", 1), (0, "w", 1), (1, "r", 1)],
    )
    holders = protocol.holders(1)
    # The snooped read demoted the RESERVED line to VALID.
    assert holders[0] is WriteOnceState.VALID
    assert holders[1] is WriteOnceState.VALID
    for block in protocol.tracked_blocks():
        exclusive = [
            cache
            for cache, state in protocol.holders(block).items()
            if state.is_exclusive
        ]
        assert len(exclusive) <= 1


def test_reserved_read_miss_served_by_memory():
    """RESERVED means memory is current: no write-back needed."""
    protocol = WriteOnceProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1), (1, "r", 1)])
    final = results[2]
    assert final.event is EventType.RM_BLK_CLN
    assert kinds_of(final) == [OpKind.MEM_ACCESS]


def test_dirty_read_miss_forces_supply_and_writeback():
    protocol = WriteOnceProtocol(4)
    results = drive(
        protocol, [(0, "r", 1), (0, "w", 1), (0, "w", 1), (1, "r", 1)]
    )
    final = results[3]
    assert final.event is EventType.RM_BLK_DRTY
    assert kinds_of(final) == [OpKind.WRITE_BACK]
    assert protocol.holders(1)[0] is WriteOnceState.VALID


def test_write_miss_installs_dirty():
    protocol = WriteOnceProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "w", 1)])
    final = results[1]
    assert final.event is EventType.WM_BLK_CLN
    assert protocol.holders(1) == {1: WriteOnceState.DIRTY}


def test_cost_sits_between_wti_and_copy_back(pops_small):
    """Write-once was invented to beat write-through while staying
    simple: far cheaper than WTI, comparable to Dir0B."""
    bus = PAPER_PIPELINED
    wti = simulate(pops_small, "wti").bus_cycles_per_reference(bus)
    once = simulate(pops_small, "write-once").bus_cycles_per_reference(bus)
    dir0b = simulate(pops_small, "dir0b").bus_cycles_per_reference(bus)
    assert once < 0.6 * wti
    assert 0.5 * dir0b < once < 1.5 * dir0b


def test_repeated_private_writes_cost_one_bus_word(pops_small):
    protocol = WriteOnceProtocol(2)
    results = drive(
        protocol, [(0, "r", 1)] + [(0, "w", 1)] * 10
    )
    bus_writes = sum(
        1 for result in results if OpKind.WRITE_WORD in kinds_of(result)
    )
    assert bus_writes == 1  # only the write-once itself
