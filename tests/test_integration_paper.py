"""Integration: the paper's qualitative results hold end-to-end.

These tests run the full pipeline (synthetic traces -> protocol
simulation -> cost models) at a reduced trace length and assert the
*shape* of every headline result.  EXPERIMENTS.md records quantitative
paper-vs-measured values at full length.
"""

import pytest

from repro.core.experiment import Experiment
from repro.core.result import merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import PAPER_NON_PIPELINED, PAPER_PIPELINED
from repro.protocols.events import EventType

LENGTH_SCHEMES = ("dir1nb", "wti", "dir0b", "dragon")


@pytest.fixture(scope="module")
def outcome(standard_small):
    return Experiment(traces=standard_small, schemes=list(LENGTH_SCHEMES)).run()


@pytest.fixture(scope="module")
def pooled(outcome):
    return {scheme: outcome.combined(scheme) for scheme in LENGTH_SCHEMES}


def test_overall_performance_ordering(pooled):
    """Figure 2: Dir1NB > WTI > Dir0B > Dragon on both buses."""
    for bus in (PAPER_PIPELINED, PAPER_NON_PIPELINED):
        costs = {s: r.bus_cycles_per_reference(bus) for s, r in pooled.items()}
        assert costs["dir1nb"] > costs["wti"] > costs["dir0b"] > costs["dragon"]


def test_dir0b_is_competitive_with_dragon(pooled):
    """Section 5: Dir0B approaches Dragon (within ~2x, paper ~1.5x)."""
    dir0b = pooled["dir0b"].bus_cycles_per_reference(PAPER_PIPELINED)
    dragon = pooled["dragon"].bus_cycles_per_reference(PAPER_PIPELINED)
    assert dir0b < 2.2 * dragon


def test_dir1nb_read_miss_rate_dominates(pooled):
    """Table 4: Dir1NB rm is an order of magnitude above Dir0B's."""
    dir1nb = pooled["dir1nb"].frequencies().read_miss_fraction
    dir0b = pooled["dir0b"].frequencies().read_miss_fraction
    assert dir1nb > 4 * dir0b


def test_dragon_misses_are_the_native_rate(pooled):
    """Dragon never invalidates, so every scheme misses at least as often."""
    dragon = pooled["dragon"].frequencies().data_miss_fraction
    for scheme in ("dir1nb", "wti", "dir0b"):
        assert pooled[scheme].frequencies().data_miss_fraction >= dragon


def test_coherence_miss_component(pooled):
    """Section 5: a meaningful share of Dir0B misses are coherence-induced."""
    dir0b = pooled["dir0b"].frequencies()
    dragon = pooled["dragon"].frequencies()
    coherence = dir0b.coherence_miss_fraction(dragon)
    assert coherence > 0
    total = dir0b.data_miss_fraction + dir0b.first_ref_fraction
    assert 0.05 < coherence / total < 0.9


def test_event_frequencies_independent_of_cost_model(pooled):
    """Event counts are fixed by the state-change model, not the bus."""
    result = pooled["dir0b"]
    pipe = result.bus_cycles_per_reference(PAPER_PIPELINED)
    nonpipe = result.bus_cycles_per_reference(PAPER_NON_PIPELINED)
    assert nonpipe > pipe  # costs differ...
    # ...but the frequencies object is the same measurement.
    assert result.frequencies().counts == pooled["dir0b"].frequencies().counts


def test_pero_has_least_sharing_traffic(outcome):
    """Figure 3: PERO's directory/update costs are far below POPS/THOR."""
    per_trace = outcome.per_trace_bus_cycles(PAPER_PIPELINED)
    for scheme in ("dir1nb", "dir0b", "dragon"):
        assert per_trace[scheme]["pero"] < 0.75 * per_trace[scheme]["pops"]
        assert per_trace[scheme]["pero"] < 0.75 * per_trace[scheme]["thor"]


def test_wti_cost_tracks_total_writes(outcome, standard_small):
    """WTI's cost is dominated by the write-through of every write."""
    from repro.trace.stats import compute_statistics

    per_trace = outcome.per_trace_bus_cycles(PAPER_PIPELINED)
    for trace in standard_small:
        write_fraction = compute_statistics(trace.records, trace.name).write_fraction
        assert per_trace["wti"][trace.name] >= write_fraction  # 1 cycle per write


def test_sequential_invalidation_close_to_broadcast(standard_small):
    """Section 6: DirnNB within a few percent of Dir0B (paper: +1.6%)."""
    simulator = Simulator()
    dir0b = merge_results(
        [simulator.run(t, "dir0b") for t in standard_small]
    ).bus_cycles_per_reference(PAPER_PIPELINED)
    dirnnb = merge_results(
        [simulator.run(t, "dirnnb") for t in standard_small]
    ).bus_cycles_per_reference(PAPER_PIPELINED)
    assert dirnnb == pytest.approx(dir0b, rel=0.10)


def test_berkeley_sits_at_or_below_dir0b(standard_small):
    simulator = Simulator()
    dir0b = merge_results(
        [simulator.run(t, "dir0b") for t in standard_small]
    ).bus_cycles_per_reference(PAPER_PIPELINED)
    berkeley = merge_results(
        [simulator.run(t, "berkeley") for t in standard_small]
    ).bus_cycles_per_reference(PAPER_PIPELINED)
    assert dir0b * 0.6 < berkeley <= dir0b


def test_dir1nb_transactions_are_heaviest(pooled):
    """Figure 5: Dir1NB moves whole blocks; Dragon sends single words."""
    costs = {
        scheme: result.cycles_per_transaction(PAPER_PIPELINED)
        for scheme, result in pooled.items()
    }
    assert costs["dir1nb"] > costs["dir0b"] > costs["dragon"]
    assert costs["dir1nb"] > 4.0
    assert costs["dragon"] < 3.0


def test_first_ref_rates_identical_across_schemes(pooled):
    """First references are a property of the trace, not the protocol."""
    rates = {
        scheme: (
            result.frequencies().count(EventType.RM_FIRST_REF),
            result.frequencies().count(EventType.WM_FIRST_REF),
        )
        for scheme, result in pooled.items()
    }
    assert len(set(rates.values())) == 1
