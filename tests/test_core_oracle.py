"""The value-coherence oracle: every read sees the latest write."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.oracle import CoherentOracle, StaleReadError
from repro.core.simulator import simulate
from repro.memory.line import LineState
from repro.protocols.registry import available_protocols, make_protocol

from conftest import tiny_trace


def run(oracle, refs):
    seen = set()
    for cache, op, block in refs:
        first = block not in seen
        seen.add(block)
        if op == "r":
            oracle.on_read(cache, block, first)
        else:
            oracle.on_write(cache, block, first)


def test_correct_protocols_pass_a_sharing_pattern():
    refs = [
        (0, "r", 1), (1, "r", 1), (0, "w", 1), (1, "r", 1), (1, "w", 1),
        (2, "r", 1), (2, "w", 1), (0, "r", 1), (3, "w", 2), (0, "r", 2),
    ]
    for scheme in available_protocols():
        run(CoherentOracle(make_protocol(scheme, 4)), refs)


def test_oracle_catches_a_missing_invalidation():
    """Sabotage Dir0B so a write leaves a stale copy behind: the stale
    holder's next read hit must trip the oracle."""
    protocol = make_protocol("dir0b", 4)
    oracle = CoherentOracle(protocol)
    run(oracle, [(0, "r", 1), (1, "r", 1)])
    # Cache 1 writes; pretend the protocol "forgot" to invalidate cache
    # 0 by resurrecting its copy afterwards.
    oracle.on_write(1, 1, False)
    protocol._caches[0].put(1, LineState.CLEAN)
    oracle._seen[(0, 1)] = 0  # cache 0 still believes in version 0
    with pytest.raises(StaleReadError):
        oracle.on_read(0, 1, False)


def test_oracle_catches_missing_update_in_update_protocol():
    protocol = make_protocol("dragon", 4)
    oracle = CoherentOracle(protocol)
    run(oracle, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
    # Simulate a lost update: roll cache 1's observed version back.
    oracle._seen[(1, 1)] = 0
    with pytest.raises(StaleReadError):
        oracle.on_read(1, 1, False)


def test_oracle_rejects_phantom_hits():
    """A protocol claiming a hit without a cached copy is broken."""

    class LyingProtocol(make_protocol("dir0b", 2).__class__):
        def on_read(self, cache, block, first_ref):
            from repro.protocols.events import RESULT_RD_HIT

            return RESULT_RD_HIT

    oracle = CoherentOracle(LyingProtocol(2))
    with pytest.raises(Exception, match="hit"):
        oracle.on_read(0, 1, True)


def test_oracle_passes_through_results_and_metadata():
    protocol = make_protocol("wti", 4)
    oracle = CoherentOracle(protocol)
    result = oracle.on_write(0, 1, True)
    assert result.event.is_first_ref
    assert oracle.name == "wti"
    assert oracle.num_caches == 4
    assert oracle.writes_through
    assert not oracle.update_based
    assert oracle.holders(1) == protocol.holders(1)


def test_oracle_works_inside_the_simulator(trace_tiny):
    oracle = CoherentOracle(make_protocol("dirnnb", 2))
    result = simulate(trace_tiny, oracle)
    assert result.total_refs == len(trace_tiny)
    assert result.scheme == "dirnnb"


@settings(max_examples=60, deadline=None)
@given(
    refs=st.lists(
        st.tuples(
            st.integers(0, 3),
            st.sampled_from(["r", "w"]),
            st.integers(0, 5),
        ),
        min_size=1,
        max_size=60,
    ),
    scheme=st.sampled_from(available_protocols()),
)
def test_every_protocol_is_value_coherent(refs, scheme):
    """The semantic coherence property, fuzzed across all protocols."""
    run(CoherentOracle(make_protocol(scheme, 4)), refs)
