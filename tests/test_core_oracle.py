"""The value-coherence oracle: every read sees the latest write."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.oracle import CoherentOracle, StaleReadError
from repro.core.simulator import simulate
from repro.memory.line import LineState
from repro.protocols.registry import available_protocols, make_protocol

from conftest import tiny_trace


def run(oracle, refs):
    seen = set()
    for cache, op, block in refs:
        first = block not in seen
        seen.add(block)
        if op == "r":
            oracle.on_read(cache, block, first)
        else:
            oracle.on_write(cache, block, first)


def test_correct_protocols_pass_a_sharing_pattern():
    refs = [
        (0, "r", 1), (1, "r", 1), (0, "w", 1), (1, "r", 1), (1, "w", 1),
        (2, "r", 1), (2, "w", 1), (0, "r", 1), (3, "w", 2), (0, "r", 2),
    ]
    for scheme in available_protocols():
        run(CoherentOracle(make_protocol(scheme, 4)), refs)


def test_oracle_catches_a_missing_invalidation():
    """Sabotage Dir0B so a write leaves a stale copy behind: the stale
    holder's next read hit must trip the oracle."""
    protocol = make_protocol("dir0b", 4)
    oracle = CoherentOracle(protocol)
    run(oracle, [(0, "r", 1), (1, "r", 1)])
    # Cache 1 writes; pretend the protocol "forgot" to invalidate cache
    # 0 by resurrecting its copy afterwards.
    oracle.on_write(1, 1, False)
    protocol._caches[0].put(1, LineState.CLEAN)
    oracle._seen[(0, 1)] = 0  # cache 0 still believes in version 0
    with pytest.raises(StaleReadError):
        oracle.on_read(0, 1, False)


def test_oracle_catches_missing_update_in_update_protocol():
    protocol = make_protocol("dragon", 4)
    oracle = CoherentOracle(protocol)
    run(oracle, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
    # Simulate a lost update: roll cache 1's observed version back.
    oracle._seen[(1, 1)] = 0
    with pytest.raises(StaleReadError):
        oracle.on_read(1, 1, False)


def test_oracle_rejects_phantom_hits():
    """A protocol claiming a hit without a cached copy is broken."""

    class LyingProtocol(make_protocol("dir0b", 2).__class__):
        def on_read(self, cache, block, first_ref):
            from repro.protocols.events import RESULT_RD_HIT

            return RESULT_RD_HIT

    oracle = CoherentOracle(LyingProtocol(2))
    with pytest.raises(Exception, match="hit"):
        oracle.on_read(0, 1, True)


def test_oracle_passes_through_results_and_metadata():
    protocol = make_protocol("wti", 4)
    oracle = CoherentOracle(protocol)
    result = oracle.on_write(0, 1, True)
    assert result.event.is_first_ref
    assert oracle.name == "wti"
    assert oracle.num_caches == 4
    assert oracle.writes_through
    assert not oracle.update_based
    assert oracle.holders(1) == protocol.holders(1)


def test_oracle_works_inside_the_simulator(trace_tiny):
    oracle = CoherentOracle(make_protocol("dirnnb", 2))
    result = simulate(trace_tiny, oracle)
    assert result.total_refs == len(trace_tiny)
    assert result.scheme == "dirnnb"


@settings(max_examples=60, deadline=None)
@given(
    refs=st.lists(
        st.tuples(
            st.integers(0, 3),
            st.sampled_from(["r", "w"]),
            st.integers(0, 5),
        ),
        min_size=1,
        max_size=60,
    ),
    scheme=st.sampled_from(available_protocols()),
)
def test_every_protocol_is_value_coherent(refs, scheme):
    """The semantic coherence property, fuzzed across all protocols."""
    run(CoherentOracle(make_protocol(scheme, 4)), refs)


# ----------------------------------------------------------------------
# Edge cases: first references under interleaving, upgrades, block
# independence (ISSUE satellite: oracle edge-case coverage).
# ----------------------------------------------------------------------


def test_first_references_interleaved_across_blocks():
    """Blocks entering the stream mid-flight start at version 0 each,
    regardless of how much write traffic other blocks saw first."""
    oracle = CoherentOracle(make_protocol("dir1nb", 4))
    oracle.on_write(0, 1, True)
    oracle.on_write(0, 1, False)
    assert oracle.expected_version(1) == 2
    # Block 2's first reference arrives only now; its version history
    # must be untouched by block 1's writes.
    assert oracle.expected_version(2) == 0
    oracle.on_read(1, 2, True)
    assert oracle.observed_version(1, 2) == 0
    # A write-first first reference also starts its own history at 1.
    oracle.on_write(2, 3, True)
    assert oracle.expected_version(3) == 1
    assert oracle.observed_version(2, 3) == 1


def test_write_after_read_upgrade_bumps_only_the_writer():
    """A read-shared block upgraded by one writer: the writer observes
    the new version; in an invalidation protocol no stale copy may
    survive to be read-hit later."""
    oracle = CoherentOracle(make_protocol("dirnnb", 4))
    run(oracle, [(0, "r", 5), (1, "r", 5), (2, "r", 5)])
    assert oracle.observed_version(0, 5) == 0
    oracle.on_write(1, 5, False)  # upgrade from shared
    assert oracle.expected_version(5) == 1
    assert oracle.observed_version(1, 5) == 1
    # The other sharers were invalidated: their bookkeeping is dropped,
    # and their next reads are miss-fills at the current version.
    assert oracle.observed_version(0, 5) is None
    assert oracle.observed_version(2, 5) is None
    oracle.on_read(0, 5, False)
    assert oracle.observed_version(0, 5) == 1


def test_upgrade_in_update_protocol_refreshes_all_sharers():
    oracle = CoherentOracle(make_protocol("dragon", 4))
    run(oracle, [(0, "r", 5), (1, "r", 5), (2, "r", 5)])
    oracle.on_write(1, 5, False)
    # Dragon distributes the write: every surviving copy is current.
    for cache in oracle.holders(5):
        assert oracle.observed_version(cache, 5) == 1


def test_multi_block_version_histories_are_independent():
    """Interleaved writes to different blocks never cross-contaminate
    version bookkeeping: (cache, block) state is exactly per-block."""
    oracle = CoherentOracle(make_protocol("dir0b", 4))
    refs = [
        (0, "w", 1), (1, "w", 2), (0, "w", 1), (2, "w", 3),
        (1, "w", 2), (0, "w", 1),
    ]
    run(oracle, refs)
    assert oracle.expected_version(1) == 3
    assert oracle.expected_version(2) == 2
    assert oracle.expected_version(3) == 1
    # Each last writer holds the copy it wrote.
    assert oracle.observed_version(0, 1) == 3
    assert oracle.observed_version(1, 2) == 2
    assert oracle.observed_version(2, 3) == 1
    # And no cache has bookkeeping for blocks it never touched.
    assert oracle.observed_version(2, 1) is None
    assert oracle.observed_version(0, 3) is None


def test_stale_read_names_the_protocol_and_versions():
    protocol = make_protocol("dir0b", 4)
    oracle = CoherentOracle(protocol)
    run(oracle, [(0, "r", 1), (1, "r", 1), (1, "w", 1)])
    from repro.memory.line import LineState as LS

    protocol._caches[0].put(1, LS.CLEAN)
    oracle._seen[(0, 1)] = 0
    with pytest.raises(StaleReadError, match=r"dir0b.*version 0.*version 1"):
        oracle.on_read(0, 1, False)
