"""ResultCache corruption handling: quarantine, never raise (ISSUE satellite)."""

import json

import pytest

from repro.core.simulator import Simulator
from repro.runner.cache import CACHE_VERSION, ResultCache, cache_key, trace_fingerprint
from repro.runner.checkpoint import result_to_json
from repro.runner.resilient import ResilientExperiment
from repro.workloads.registry import make_trace


@pytest.fixture
def trace():
    return make_trace("pops", length=1200, seed=4)


@pytest.fixture
def simulator():
    return Simulator()


def run_cell(simulator, trace, scheme="dir0b"):
    result = simulator.run(trace, scheme, trace_name=trace.name)
    result.scheme = scheme
    return result


@pytest.mark.parametrize(
    "garbage",
    [
        b"this is not json at all {{{",
        b"",                                    # truncated to nothing
        b'{"version": 1, "result": ',           # truncated mid-object
        b'{"version": 999, "result": {}}',      # future version
        b'{"no_result_key": true}',             # wrong shape
        b'{"version": 1, "result": {"scheme": "x"}}',  # result missing fields
    ],
)
def test_corrupt_entry_is_quarantined_not_raised(tmp_path, simulator, trace, garbage):
    cache = ResultCache(tmp_path / "cache")
    key = cache_key("dir0b", simulator, trace_fingerprint(trace))
    path = cache._path_for(key)
    path.write_bytes(garbage)

    assert cache.get(key) is None  # a miss, never an exception
    assert cache.misses == 1 and cache.hits == 0
    assert cache.quarantined == 1
    assert not path.exists()
    quarantined = tmp_path / "cache" / ResultCache.QUARANTINE_DIR / path.name
    assert quarantined.exists()
    assert quarantined.read_bytes() == garbage  # preserved for inspection

    # The slot is immediately rewritable and serves hits again.
    result = run_cell(simulator, trace)
    cache.put(key, result)
    restored = cache.get(key)
    assert restored is not None
    assert result_to_json(restored) == result_to_json(result)


def test_quarantined_entries_not_counted_as_cache_entries(tmp_path, simulator, trace):
    cache = ResultCache(tmp_path / "cache")
    key = cache_key("dir0b", simulator, trace_fingerprint(trace))
    cache.put(key, run_cell(simulator, trace))
    assert len(cache) == 1
    cache._path_for(key).write_bytes(b"garbage")
    assert cache.get(key) is None
    assert len(cache) == 0  # quarantine/ files are out of the namespace


def test_sweep_resimulates_through_garbage_cache_entry(tmp_path, trace):
    """End to end: a sweep hitting a corrupt entry re-simulates silently."""
    cache_dir = tmp_path / "cache"
    first = ResilientExperiment(
        traces=[trace], schemes=["dir0b"], result_cache=ResultCache(cache_dir)
    )
    outcome_first = first.run()
    entries = list(cache_dir.glob("*.json"))
    assert len(entries) == 1
    entries[0].write_text("garbage, not a cached result", "utf-8")

    second_cache = ResultCache(cache_dir)
    second = ResilientExperiment(
        traces=[trace], schemes=["dir0b"], result_cache=second_cache
    )
    outcome_second = second.run()
    assert outcome_second.ok
    assert second_cache.quarantined == 1
    assert result_to_json(outcome_second.results["dir0b"][trace.name]) == (
        result_to_json(outcome_first.results["dir0b"][trace.name])
    )
    # The recomputed result was written back over the freed slot.
    rewritten = json.loads(entries[0].read_text("utf-8"))
    assert rewritten["version"] == CACHE_VERSION
