"""TraceFuzzer: deterministic adversarial trace generation."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.io import format_record
from repro.trace.record import RefType
from repro.verify import PATTERNS, TraceFuzzer


def render(trace) -> list[str]:
    return [format_record(record) for record in trace.records]


def test_same_seed_and_index_yield_byte_identical_traces():
    for index in range(12):
        first = TraceFuzzer(seed=7).trace(index)
        second = TraceFuzzer(seed=7).trace(index)
        assert first.name == second.name
        assert render(first) == render(second)


def test_different_seeds_yield_different_campaigns():
    first = [render(t) for t in TraceFuzzer(seed=1).traces(len(PATTERNS))]
    second = [render(t) for t in TraceFuzzer(seed=2).traces(len(PATTERNS))]
    assert first != second


def test_patterns_round_robin_and_name_encodes_provenance():
    fuzzer = TraceFuzzer(seed=3)
    traces = list(fuzzer.traces(2 * len(PATTERNS)))
    for index, trace in enumerate(traces):
        pattern = PATTERNS[index % len(PATTERNS)]
        assert trace.name == f"fuzz-3-{index:04d}-{pattern}"
        assert pattern in trace.description


def test_every_trace_respects_the_ref_budget_and_sharing_floor():
    fuzzer = TraceFuzzer(seed=5, min_refs=40, max_refs=160)
    for trace in fuzzer.traces(len(PATTERNS)):
        assert 40 <= len(trace.records) <= 160
        assert len(trace.pids) >= 2
        # Data references only: instruction fetches never reach
        # protocols, so they would waste the conformance budget.
        assert all(
            record.ref_type in (RefType.READ, RefType.WRITE)
            for record in trace.records
        )
        # Cross-cache interaction is the whole point: at least one
        # block must be touched by more than one process.
        touched: dict[int, set[int]] = {}
        for record in trace.records:
            touched.setdefault(record.address // 16, set()).add(record.pid)
        assert any(len(pids) >= 2 for pids in touched.values())


def test_traces_generator_matches_indexed_access():
    fuzzer = TraceFuzzer(seed=11)
    streamed = list(fuzzer.traces(4, start=2))
    assert [t.name for t in streamed] == [
        fuzzer.trace(index).name for index in range(2, 6)
    ]


def test_spinlock_traces_mark_lock_and_spin_references():
    fuzzer = TraceFuzzer(seed=0)
    index = PATTERNS.index("spinlock")
    trace = fuzzer.trace(index)
    assert any(record.lock for record in trace.records)
    assert any(record.spin for record in trace.records)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_processes": 1},
        {"min_processes": 4, "max_processes": 3},
        {"min_refs": 2},
        {"min_refs": 50, "max_refs": 40},
    ],
)
def test_invalid_configuration_is_rejected(kwargs):
    with pytest.raises(ConfigurationError):
        TraceFuzzer(**kwargs)
