"""Section 5.1 overhead sensitivity and Figure 5 transaction costs."""

import pytest

from repro.analysis.sensitivity import OverheadModel, crossover_q, overhead_model
from repro.analysis.transactions import transaction_costs, transactions_per_reference
from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED

from conftest import tiny_trace


def test_overhead_model_matches_direct_computation():
    result = simulate(tiny_trace(), "dir0b")
    model = overhead_model(result, PAPER_PIPELINED)
    assert model.cycles(0) == pytest.approx(
        result.bus_cycles_per_reference(PAPER_PIPELINED)
    )
    assert model.cycles(2.0) == pytest.approx(
        result.cycles_with_overhead(PAPER_PIPELINED, 2.0)
    )


def test_cycles_rejects_negative_q():
    model = OverheadModel("s", base=1.0, slope=0.5)
    with pytest.raises(ValueError):
        model.cycles(-0.1)


def test_relative_excess():
    a = OverheadModel("a", base=1.2, slope=0.1)
    b = OverheadModel("b", base=1.0, slope=0.2)
    assert a.relative_excess(b, 0.0) == pytest.approx(0.2)
    # a's advantage grows with q because its slope is smaller.
    assert a.relative_excess(b, 2.0) == pytest.approx(0.0)


def test_crossover_q():
    a = OverheadModel("a", base=1.2, slope=0.1)
    b = OverheadModel("b", base=1.0, slope=0.2)
    assert crossover_q(a, b) == pytest.approx(2.0)
    assert crossover_q(b, a) == pytest.approx(2.0)


def test_crossover_none_for_parallel_or_negative():
    a = OverheadModel("a", base=1.0, slope=0.1)
    b = OverheadModel("b", base=2.0, slope=0.1)
    assert crossover_q(a, b) is None
    c = OverheadModel("c", base=2.0, slope=0.2)
    # c is worse in base AND slope: crossover at negative q.
    assert crossover_q(c, a) is None


def test_transaction_costs_and_rates():
    results = {
        scheme: simulate(tiny_trace(), scheme) for scheme in ("dir0b", "dragon")
    }
    costs = transaction_costs(results, PAPER_PIPELINED)
    rates = transactions_per_reference(results)
    for scheme, result in results.items():
        assert costs[scheme] == pytest.approx(
            result.cycles_per_transaction(PAPER_PIPELINED)
        )
        assert rates[scheme] == pytest.approx(result.transactions_per_reference())


def test_gap_narrows_with_overhead(standard_small):
    """The paper's §5.1 point: Dir0B's excess over Dragon shrinks as q grows."""
    from repro.core.result import merge_results
    from repro.core.simulator import Simulator

    simulator = Simulator()
    dir0b = overhead_model(
        merge_results([simulator.run(t, "dir0b") for t in standard_small]),
        PAPER_PIPELINED,
    )
    dragon = overhead_model(
        merge_results([simulator.run(t, "dragon") for t in standard_small]),
        PAPER_PIPELINED,
    )
    assert dragon.slope > dir0b.slope
    excess_0 = dir0b.relative_excess(dragon, 0.0)
    excess_1 = dir0b.relative_excess(dragon, 1.0)
    assert excess_1 < excess_0
