"""Fleet workers in-process: digest parity, cache dedup, jittered retry.

The chaos harness (``test_fabric_chaos.py``) covers real worker
*processes* and SIGKILL; here the same :class:`FabricWorker` loop runs
as threads, where the interesting properties are cheap to assert:
results bit-identical to a serial engine run, the shared result cache
eliminating every repeat simulation, and the full-jitter backoff being
deterministic under a fixed seed.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.policies import RetryPolicy, run_with_retry
from repro.errors import ConfigurationError, TransientError
from repro.fabric.chaos import canonical_digest, serial_results
from repro.fabric.queue import DurableCellQueue
from repro.fabric.worker import FabricWorker
from repro.runner.cache import ResultCache
from repro.service.spec import parse_job_spec

SPEC = {
    "schemes": ["dir0b", "wti", "dragon"],
    "traces": [
        {"workload": "pops", "length": 800, "seed": 2},
        {"workload": "thor", "length": 800, "seed": 2},
    ],
}


def run_fleet(path, cache, n_workers=2, spec_payload=SPEC, job_id="job-1"):
    spec = parse_job_spec(dict(spec_payload))
    queue = DurableCellQueue(path)
    queue.submit(spec, job_id)
    workers = [
        FabricWorker(
            DurableCellQueue(path),
            worker_id=f"w{number}",
            result_cache=cache,
            lease_s=30.0,
            poll_s=0.02,
        )
        for number in range(n_workers)
    ]
    threads = [threading.Thread(target=worker.run) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    return spec, queue, workers


class TestFleetParity:
    def test_fleet_matches_serial_engine_bit_for_bit(self, tmp_path):
        spec, queue, workers = run_fleet(
            tmp_path / "fabric.db", ResultCache(tmp_path / "cache")
        )
        assert queue.job_state("job-1") == "done"
        assembled = queue.assemble("job-1")
        assert assembled["failures"] == []
        assert canonical_digest(assembled["results"]) == canonical_digest(
            serial_results(spec)
        )
        # Both workers got work and nothing was simulated twice.
        stats = queue.stats()
        assert stats["duplicate_completions"] == 0
        assert sum(w.settled["simulated"] for w in workers) == spec.cell_count()

    def test_second_job_runs_entirely_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec, queue, _ = run_fleet(tmp_path / "fabric.db", cache)
        first = queue.assemble("job-1")

        # Same sweep, different job id, fresh db: the fleet-wide dedup
        # layer (the content-addressed cache) serves every cell.
        _, queue2, workers2 = run_fleet(
            tmp_path / "fabric2.db", cache, n_workers=1, job_id="job-2"
        )
        assert queue2.job_state("job-2") == "done"
        assert workers2[0].settled == {
            "simulated": 0, "cache": spec.cell_count(), "error": 0,
        }
        assert queue2.stats()["dedup_hits"] == spec.cell_count()
        assert canonical_digest(queue2.assemble("job-2")["results"]) == (
            canonical_digest(first["results"])
        )

    def test_unbuildable_trace_settles_contained_failure(self, tmp_path):
        spec, queue, _ = run_fleet(
            tmp_path / "fabric.db",
            None,
            n_workers=1,
            spec_payload={
                "schemes": ["dir0b"],
                "traces": [
                    {"workload": "pops", "length": 400, "seed": 1},
                    {"path": str(tmp_path / "does-not-exist.trace")},
                ],
            },
        )
        assert queue.job_state("job-1") == "failed"
        assembled = queue.assemble("job-1")
        assert len(assembled["failures"]) == 1
        assert list(assembled["results"]["dir0b"]) == ["pops"]
        # A permanent failure settles once; it never crash-loops.
        assert queue.stats()["dead_letters"] == 0


class TestFullJitter:
    def test_fixed_seed_reproduces_the_schedule(self):
        first = RetryPolicy(jitter="full", jitter_seed=7)
        second = RetryPolicy(jitter="full", jitter_seed=7)
        assert [first.delay(n) for n in (1, 2, 3)] == [
            second.delay(n) for n in (1, 2, 3)
        ]
        different = RetryPolicy(jitter="full", jitter_seed=8)
        assert [first.delay(n) for n in (1, 2, 3)] != [
            different.delay(n) for n in (1, 2, 3)
        ]

    def test_jitter_stays_within_the_capped_envelope(self):
        policy = RetryPolicy(
            jitter="full", jitter_seed=3, backoff_base=0.1, backoff_max=0.5
        )
        plain = RetryPolicy(backoff_base=0.1, backoff_max=0.5)
        for attempt in range(1, 8):
            assert 0.0 <= policy.delay(attempt) <= plain.delay(attempt)

    def test_jitter_mode_is_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter="half")

    def test_observer_sees_the_slept_delay(self):
        slept: list[float] = []
        reported: list[float] = []

        class Observer:
            def cell_retry(self, task, failed_attempts, error, delay):
                reported.append(delay)

        policy = RetryPolicy(
            max_attempts=3, jitter="full", jitter_seed=11, sleep=slept.append
        )
        calls = {"n": 0}

        def attempt():
            calls["n"] += 1
            raise TransientError("flaky")

        _, exc, attempts = run_with_retry(attempt, policy, observer=Observer())
        assert isinstance(exc, TransientError) and attempts == 3
        # The exact jittered values that were slept were also reported.
        assert slept == reported and len(slept) == 2

    def test_worker_seeds_jitter_from_its_id(self, tmp_path):
        worker = FabricWorker(
            DurableCellQueue(tmp_path / "fabric.db"), worker_id="w0"
        )
        twin = FabricWorker(
            DurableCellQueue(tmp_path / "fabric.db"), worker_id="w0"
        )
        other = FabricWorker(
            DurableCellQueue(tmp_path / "fabric.db"), worker_id="w1"
        )
        assert worker.retry.jitter == "full"
        assert worker.retry.jitter_seed == twin.retry.jitter_seed
        assert worker.retry.jitter_seed != other.retry.jitter_seed
