"""Columnar trace storage: round-trips, views, and sequence behaviour."""

import pickle

import pytest

from repro.trace.columnar import (
    TYPE_INSTR,
    TYPE_READ,
    TYPE_WRITE,
    ColumnarTrace,
    columnar_trace,
)
from repro.trace.io import write_trace_binary, write_trace_file
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace
from repro.workloads.registry import make_trace


@pytest.fixture
def trace():
    return make_trace("pops", length=3000, seed=11)


def test_round_trip_preserves_every_record(trace):
    col = ColumnarTrace.from_trace(trace)
    assert col.to_records() == list(trace.records)
    assert len(col) == len(trace)
    assert col.name == trace.name


def test_round_trip_preserves_flags():
    records = [
        TraceRecord(cpu=1, pid=2, ref_type=RefType.READ, address=0x40,
                    system=True, lock=True, spin=True),
        TraceRecord(cpu=0, pid=0, ref_type=RefType.INSTR, address=0x44),
        TraceRecord(cpu=3, pid=5, ref_type=RefType.WRITE, address=0x48,
                    lock=True),
    ]
    col = ColumnarTrace.from_records(records)
    assert col.to_records() == records


def test_from_trace_is_identity_for_columnar(trace):
    col = ColumnarTrace.from_trace(trace)
    assert ColumnarTrace.from_trace(col) is col
    assert columnar_trace(col) is col


def test_columnar_trace_coerces_record_streams(trace):
    col = columnar_trace(iter(trace.records))
    assert col.to_records() == list(trace.records)


def test_iteration_and_indexing_match(trace):
    col = ColumnarTrace.from_trace(trace)
    assert list(col)[:10] == [col[i] for i in range(10)]
    assert col[-1] == trace.records[-1]


def test_slicing_stays_columnar(trace):
    col = ColumnarTrace.from_trace(trace)
    window = col.records[100:200]
    assert isinstance(window, ColumnarTrace)
    assert window.to_records() == list(trace.records[100:200])


def test_records_property_is_self(trace):
    col = ColumnarTrace.from_trace(trace)
    assert col.records is col


def test_cpus_and_pids_match_record_view(trace):
    col = ColumnarTrace.from_trace(trace)
    assert col.cpus == trace.cpus
    assert col.pids == trace.pids


def test_mismatched_column_lengths_rejected():
    with pytest.raises(ValueError, match="column lengths"):
        ColumnarTrace("bad", [1, 2], [1, 2], [TYPE_READ], [0x10, 0x20])


def test_invalid_type_code_rejected_with_position():
    with pytest.raises(ValueError, match="record 1"):
        ColumnarTrace("bad", [0, 0], [0, 0], [TYPE_READ, 7], [0x10, 0x20])


def test_data_view_drops_instructions(trace):
    col = ColumnarTrace.from_trace(trace)
    instr_count, types, sharers, addresses = col.data_view("pid")
    data = [r for r in trace.records if r.ref_type is not RefType.INSTR]
    assert instr_count == len(trace) - len(data)
    assert len(types) == len(sharers) == len(addresses) == len(data)
    assert TYPE_INSTR not in set(types)
    assert list(sharers) == [r.pid for r in data]
    assert list(addresses) == [r.address for r in data]


def test_data_view_respects_sharer_key(trace):
    col = ColumnarTrace.from_trace(trace)
    _, _, by_cpu, _ = col.data_view("cpu")
    data = [r for r in trace.records if r.ref_type is not RefType.INSTR]
    assert list(by_cpu) == [r.cpu for r in data]


def test_data_view_is_cached(trace):
    col = ColumnarTrace.from_trace(trace)
    assert col.data_view("pid") is col.data_view("pid")


def test_pickle_round_trip(trace):
    col = ColumnarTrace.from_trace(trace)
    col.data_view("pid")  # populate the memo; it must not ship
    clone = pickle.loads(pickle.dumps(col))
    assert clone == col
    assert clone.to_records() == col.to_records()


def test_from_binary_file_matches_record_load(tmp_path, trace):
    path = tmp_path / "trace.bin"
    write_trace_binary(trace.records, path)
    col = ColumnarTrace.from_binary_file(path, name=trace.name)
    assert col.to_records() == list(trace.records)


def test_from_file_autodetects_text_and_binary(tmp_path, trace):
    text = tmp_path / "trace.txt"
    binary = tmp_path / "trace.bin"
    write_trace_file(trace.records, text)
    write_trace_binary(trace.records, binary)
    assert ColumnarTrace.from_file(text).to_records() == list(trace.records)
    assert ColumnarTrace.from_file(binary).to_records() == list(trace.records)


def test_to_trace_round_trip(trace):
    col = ColumnarTrace.from_trace(trace)
    back = col.to_trace()
    assert isinstance(back, Trace)
    assert list(back.records) == list(trace.records)
    assert back.name == trace.name


def test_write_codes_match_module_constants():
    assert (TYPE_INSTR, TYPE_READ, TYPE_WRITE) == (0, 1, 2)
