"""Mutation testing: the conformance gate must kill every saboteur."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.registry import available_protocols
from repro.trace.io import format_record
from repro.verify import run_mutation_testing
from repro.verify.mutation import DEFAULT_MODES, DEFAULT_TRIGGERS, mutation_trace


def test_mutation_trace_is_deterministic_and_shareable():
    first = mutation_trace(4)
    second = mutation_trace(4)
    assert [format_record(r) for r in first.records] == [
        format_record(r) for r in second.records
    ]
    assert len(first.pids) >= 2
    assert len(first.records) >= max(DEFAULT_TRIGGERS)


@pytest.mark.fuzz
def test_every_mutant_of_every_protocol_is_killed():
    """The ISSUE acceptance bar: 100% kill rate across the registry."""
    report = run_mutation_testing()
    assert report.total == len(available_protocols()) * len(DEFAULT_MODES) * len(
        DEFAULT_TRIGGERS
    )
    assert report.survivors == [], report.summary()
    assert report.kill_rate == 1.0
    assert "100%" in report.summary()


def test_illegal_state_mutants_die_as_invariant_findings():
    report = run_mutation_testing(
        schemes=["dir1nb", "wti"], modes=("illegal-state",), triggers=(3,)
    )
    assert report.kill_rate == 1.0
    for mutant in report.mutants:
        assert mutant.mode == "illegal-state"
        assert "invariant" in mutant.finding_kinds


def test_transient_mutants_die_as_fault_findings_not_retried_away():
    report = run_mutation_testing(
        schemes=["dir0b"], modes=("transient",), triggers=(3, 17)
    )
    assert report.kill_rate == 1.0
    for mutant in report.mutants:
        assert mutant.finding_kinds == ("fault",)


def test_survivors_are_named_in_the_summary():
    from repro.verify.mutation import Mutant, MutationReport

    report = MutationReport(trace_name="t")
    report.mutants.append(
        Mutant(scheme="x", mode="illegal-state", trigger=3, killed=False)
    )
    assert report.kill_rate == 0.0
    assert "SURVIVORS: x+illegal-state@3" in report.summary()


def test_out_of_range_triggers_are_rejected():
    with pytest.raises(ConfigurationError, match="never fire"):
        run_mutation_testing(schemes=["dir1nb"], triggers=(10_000,))
    with pytest.raises(ConfigurationError, match="never fire"):
        run_mutation_testing(schemes=["dir1nb"], triggers=(0,))
