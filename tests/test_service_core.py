"""Queue, coalescing table, and job event-log mechanics."""

import threading

import pytest

from repro.errors import ServiceUnavailableError
from repro.service.coalesce import InFlightTable
from repro.service.jobs import DONE, Job, JobStore, QUEUED, RUNNING
from repro.service.queue import JobQueue
from repro.service.spec import parse_job_spec

pytestmark = pytest.mark.service


def make_spec(**overrides):
    payload = {
        "schemes": ["dir0b"],
        "traces": [{"workload": "pops", "length": 500}],
    }
    payload.update(overrides)
    return parse_job_spec(payload)


# ----------------------------------------------------------------------
# JobQueue
# ----------------------------------------------------------------------

def test_queue_orders_by_priority_then_fifo():
    queue = JobQueue()
    low = Job(make_spec(priority=0, tags={"n": "low"}))
    high = Job(make_spec(priority=10, tags={"n": "high"}))
    mid_a = Job(make_spec(priority=5, tags={"n": "a"}))
    mid_b = Job(make_spec(priority=5, tags={"n": "b"}))
    for job in (low, mid_a, mid_b, high):
        queue.submit(job)
    popped = [queue.pop(timeout=0.1) for _ in range(4)]
    assert popped == [high, mid_a, mid_b, low]


def test_queue_pop_times_out_empty():
    queue = JobQueue()
    assert queue.pop(timeout=0.01) is None


def test_queue_dedups_identical_active_specs_when_asked():
    queue = JobQueue()
    first = Job(make_spec(dedup=True))
    second = Job(make_spec(dedup=True))
    accepted, deduplicated = queue.submit(first)
    assert (accepted, deduplicated) == (first, False)
    accepted, deduplicated = queue.submit(second)
    assert (accepted, deduplicated) == (first, True)
    assert len(queue) == 1


def test_queue_without_dedup_flag_keeps_copies():
    queue = JobQueue()
    queue.submit(Job(make_spec()))
    _, deduplicated = queue.submit(Job(make_spec()))
    assert not deduplicated
    assert len(queue) == 2


def test_queue_dedup_releases_after_job_finished():
    queue = JobQueue()
    first = Job(make_spec(dedup=True))
    queue.submit(first)
    first.set_state(RUNNING)
    first.set_state(DONE)
    queue.job_finished(first)
    accepted, deduplicated = queue.submit(Job(make_spec(dedup=True)))
    assert not deduplicated and accepted is not first


def test_closed_queue_refuses_submissions():
    queue = JobQueue()
    queue.close()
    with pytest.raises(ServiceUnavailableError):
        queue.submit(Job(make_spec()))


def test_drain_empties_queue_in_priority_order():
    queue = JobQueue()
    a = Job(make_spec(priority=1, tags={"n": "a"}))
    b = Job(make_spec(priority=9, tags={"n": "b"}))
    queue.submit(a)
    queue.submit(b)
    assert queue.drain() == [b, a]
    assert len(queue) == 0


# ----------------------------------------------------------------------
# InFlightTable
# ----------------------------------------------------------------------

def test_inflight_first_claim_owns_then_waiters_coalesce():
    table = InFlightTable()
    entry, owner = table.claim("cell-1", "job-a")
    assert owner
    same, owner2 = table.claim("cell-1", "job-b")
    assert not owner2 and same is entry
    assert table.coalesced_total == 1
    table.resolve_and_release(entry, {"status": "ok", "result": {"x": 1}})
    assert entry.wait(0.1)
    assert entry.outcome == {"status": "ok", "result": {"x": 1}}
    assert len(table) == 0


def test_inflight_abandon_wakes_waiters_empty_handed():
    table = InFlightTable()
    entry, _ = table.claim("cell-2", "job-a")
    woke = []
    thread = threading.Thread(
        target=lambda: woke.append(entry.wait(2.0) and entry.abandoned)
    )
    thread.start()
    table.abandon_and_release(entry)
    thread.join(timeout=5.0)
    assert woke == [True]
    # The key is claimable again after abandonment.
    _, owner = table.claim("cell-2", "job-c")
    assert owner


# ----------------------------------------------------------------------
# Job event log
# ----------------------------------------------------------------------

def test_job_records_cells_and_emits_sequenced_events():
    job = Job(make_spec(schemes=["dir0b", "dragon"]))
    job.set_state(RUNNING)
    job.record_cell(
        scheme="dir0b", trace_name="pops", index=0, source="simulated",
        payload={"status": "ok", "result": {"total_refs": 1}, "attempts": 1},
    )
    job.record_cell(
        scheme="dragon", trace_name="pops", index=1, source="cache",
        payload={"status": "error", "category": "ProtocolError",
                 "message": "boom", "attempts": 3},
    )
    job.set_state(DONE)
    events = job.events_since(0)
    assert [event["seq"] for event in events] == [0, 1, 2]
    assert events[0]["type"] == "cell" and events[0]["status"] == "ok"
    assert events[1]["error"]["category"] == "ProtocolError"
    assert events[2]["type"] == "job" and events[2]["state"] == DONE
    assert job.cell_errors == 1
    assert job.results["dir0b"]["pops"] == {"total_refs": 1}


def test_job_stream_events_follows_until_terminal():
    job = Job(make_spec())
    collected = []

    def consume():
        collected.extend(job.stream_events(poll=0.05))

    thread = threading.Thread(target=consume)
    thread.start()
    job.record_cell(
        scheme="dir0b", trace_name="pops", index=0, source="simulated",
        payload={"status": "ok", "result": {}, "attempts": 1},
    )
    job.set_state(DONE)
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert [event["type"] for event in collected] == ["cell", "job"]


def test_job_status_snapshot_shape():
    job = Job(make_spec())
    status = job.status()
    assert status["state"] == QUEUED
    assert status["cells"]["total"] == 1
    assert status["cells"]["completed"] == 0
    assert "results" not in status


def test_job_terminal_state_is_sticky():
    job = Job(make_spec())
    job.set_state(DONE)
    job.set_state(RUNNING)
    assert job.state == DONE


def test_job_store_state_counts():
    store = JobStore()
    a, b = Job(make_spec()), Job(make_spec())
    store.add(a)
    store.add(b)
    b.set_state(RUNNING)
    counts = store.state_counts()
    assert counts[QUEUED] == 1 and counts[RUNNING] == 1
    assert len(store) == 2


def test_job_store_unknown_id_raises():
    from repro.errors import JobNotFoundError

    with pytest.raises(JobNotFoundError):
        JobStore().get("nope")
