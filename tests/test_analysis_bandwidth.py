"""Directory vs memory bandwidth comparison (the §5 bottleneck claim)."""

import pytest

from repro.analysis.bandwidth import BandwidthComparison, bandwidth_comparison
from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import Simulator


def test_empty_result_has_zero_demand():
    comparison = bandwidth_comparison(SimulationResult(scheme="s", trace_name="t"))
    assert comparison.directory_accesses_per_ref == 0.0
    assert comparison.memory_accesses_per_ref == 0.0
    assert comparison.ratio == 0.0


def test_ratio_edge_cases():
    assert BandwidthComparison("s", 0.1, 0.0).ratio == float("inf")
    assert BandwidthComparison("s", 0.2, 0.1).ratio == pytest.approx(2.0)


def test_snoopy_schemes_have_no_directory_demand(standard_small):
    simulator = Simulator()
    for scheme in ("wti", "dragon"):
        merged = merge_results([simulator.run(t, scheme) for t in standard_small])
        comparison = bandwidth_comparison(merged)
        assert comparison.directory_accesses_per_ref == 0.0


def test_directory_bandwidth_close_to_memory_bandwidth(standard_small):
    """The paper: 'the required directory bandwidth is only slightly
    higher than the bandwidth to memory'."""
    simulator = Simulator()
    for scheme in ("dir0b", "dirnnb"):
        merged = merge_results([simulator.run(t, scheme) for t in standard_small])
        comparison = bandwidth_comparison(merged)
        assert comparison.directory_accesses_per_ref > 0
        assert 0.5 < comparison.ratio < 2.5


def test_dir1nb_directory_demand_tracks_misses(standard_small):
    simulator = Simulator()
    merged = merge_results([simulator.run(t, "dir1nb") for t in standard_small])
    comparison = bandwidth_comparison(merged)
    frequencies = merged.frequencies()
    misses = frequencies.data_miss_fraction
    # Every coherence miss consults the directory exactly once.
    assert comparison.directory_accesses_per_ref == pytest.approx(misses)
