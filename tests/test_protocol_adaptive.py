"""The competitive update/invalidate hybrid."""

import pytest

from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED as BUS
from repro.memory.line import DragonLineState
from repro.protocols.snoopy.adaptive import AdaptiveProtocol
from repro.workloads.micro import migratory_trace, producer_consumer_trace, readonly_trace

from conftest import drive


def test_update_limit_validation():
    with pytest.raises(ValueError):
        AdaptiveProtocol(4, update_limit=0)


def test_reader_keeps_its_copy():
    """A copy that is read between updates is never dropped."""
    protocol = AdaptiveProtocol(4, update_limit=2)
    refs = [(0, "r", 1), (1, "r", 1)]
    for _ in range(6):
        refs += [(0, "w", 1), (1, "r", 1)]
    drive(protocol, refs)
    assert 1 in protocol.holders(1)


def test_unused_copy_dropped_after_limit():
    protocol = AdaptiveProtocol(4, update_limit=3)
    refs = [(0, "r", 1), (1, "r", 1)] + [(0, "w", 1)] * 3
    drive(protocol, refs)
    holders = protocol.holders(1)
    assert set(holders) == {0}
    # Sole survivor owns the line outright: further writes are local.
    assert holders[0] is DragonLineState.DIRTY
    results = drive(protocol, [(0, "w", 1)], check=False)
    assert results[0].ops == ()


def test_drop_is_free():
    """Self-invalidation adds no bus operations beyond Dragon's update."""
    protocol = AdaptiveProtocol(4, update_limit=1)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
    # One write-update word, nothing else.
    assert len(results[2].ops) == 1


def test_matches_dragon_when_copies_stay_useful():
    """Producer/consumer and read-only: no drops, identical cost."""
    for trace in (
        producer_consumer_trace(length=8_000),
        readonly_trace(length=8_000),
    ):
        dragon = simulate(trace, "dragon").bus_cycles_per_reference(BUS)
        adaptive = simulate(trace, "adaptive").bus_cycles_per_reference(BUS)
        assert adaptive == pytest.approx(dragon)


def test_wins_on_long_write_runs():
    """Migratory data with long write runs: dead updates dominate
    Dragon; the hybrid drops the copies and writes locally."""
    trace = migratory_trace(length=12_000, visit_refs=40)
    dragon = simulate(trace, "dragon").bus_cycles_per_reference(BUS)
    adaptive = simulate(trace, "adaptive").bus_cycles_per_reference(BUS)
    assert adaptive < 0.7 * dragon


def test_bounded_loss_on_short_write_runs():
    """The competitive trade-off: on short write runs Dragon wins, but
    the hybrid's loss stays within a small constant factor."""
    trace = migratory_trace(length=12_000, visit_refs=6)
    dragon = simulate(trace, "dragon").bus_cycles_per_reference(BUS)
    adaptive = simulate(trace, "adaptive").bus_cycles_per_reference(BUS)
    assert dragon <= adaptive <= 3.5 * dragon


def test_statespace_clean():
    from repro.core.statespace import explore_block_states

    report = explore_block_states("adaptive", num_caches=3)
    assert report.clean
    # The counters add reachable states beyond plain Dragon's.
    assert report.states >= 20
