"""Synthetic workload generators: layout, locks, patterns, and traces."""

import pytest

from repro.errors import ConfigurationError, UnknownSchemeError
from repro.memory.address import BlockMapper
from repro.trace.stats import compute_statistics
from repro.workloads.base import SyntheticWorkload, WorkloadConfig
from repro.workloads.layout import AddressSpaceLayout
from repro.workloads.locks import Lock, LockTable
from repro.workloads.patterns import LocalityPicker, ProducerConsumerBuffers
from repro.workloads.registry import (
    available_workloads,
    make_trace,
    standard_traces,
    workload_config,
)


class TestLayout:
    def test_regions_are_disjoint(self):
        layout = AddressSpaceLayout()
        mapper = BlockMapper()
        blocks = set()
        regions = []
        for pid in range(4):
            regions.append([layout.private_address(pid, i) for i in range(layout.private_blocks)])
            regions.append([layout.kernel_private_address(pid, i) for i in range(layout.kernel_private_blocks)])
        regions.append([layout.shared_read_address(i) for i in range(layout.shared_read_blocks)])
        regions.append([layout.migratory_address(i) for i in range(layout.migratory_blocks)])
        regions.append([layout.buffer_address(i) for i in range(layout.buffer_blocks)])
        regions.append([layout.lock_address(i) for i in range(8)])
        regions.append([layout.protected_address(i, j) for i in range(8) for j in range(layout.protected_blocks_per_lock)])
        regions.append([layout.kernel_shared_address(i) for i in range(layout.kernel_shared_blocks)])
        for region in regions:
            for address in region:
                block = mapper.block_of(address)
                assert block not in blocks, f"address {address:#x} collides"
                blocks.add(block)

    def test_indices_wrap_around(self):
        layout = AddressSpaceLayout()
        assert layout.private_address(0, 0) == layout.private_address(
            0, layout.private_blocks
        )
        assert layout.shared_read_address(0) == layout.shared_read_address(
            layout.shared_read_blocks
        )

    def test_instr_addresses_differ_per_process(self):
        layout = AddressSpaceLayout()
        assert layout.instr_address(0, 0) != layout.instr_address(1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressSpaceLayout(private_blocks=0)
        layout = AddressSpaceLayout()
        with pytest.raises(ValueError):
            layout.lock_address(-1)


class TestLocks:
    def test_acquire_release_cycle(self):
        table = LockTable(2, AddressSpaceLayout())
        lock = table[0]
        assert not lock.held
        lock.acquire(3)
        assert lock.held and lock.holder == 3
        assert table.held_by(3) == [lock]
        lock.release(3)
        assert not lock.held

    def test_double_acquire_rejected(self):
        lock = Lock(index=0, address=0x7000_0000)
        lock.acquire(1)
        with pytest.raises(ValueError):
            lock.acquire(2)

    def test_release_by_non_holder_rejected(self):
        lock = Lock(index=0, address=0x7000_0000)
        lock.acquire(1)
        with pytest.raises(ValueError):
            lock.release(2)

    def test_waiters_cleared_on_acquire(self):
        lock = Lock(index=0, address=0x7000_0000)
        lock.waiters.add(5)
        lock.acquire(5)
        assert 5 not in lock.waiters


class TestPatterns:
    def test_locality_picker_bounds(self):
        import random

        picker = LocalityPicker(32, hot_fraction=0.25, p_hot=0.9)
        rng = random.Random(1)
        picks = [picker.pick(rng) for _ in range(1000)]
        assert all(0 <= pick < 32 for pick in picks)
        hot = sum(1 for pick in picks if pick < 8)
        assert hot > 800  # ~92.5% expected in the hot set

    def test_locality_picker_validation(self):
        with pytest.raises(ValueError):
            LocalityPicker(0)
        with pytest.raises(ValueError):
            LocalityPicker(8, hot_fraction=0.0)
        with pytest.raises(ValueError):
            LocalityPicker(8, p_hot=1.5)

    def test_buffer_producer_assignment(self):
        buffers = ProducerConsumerBuffers(4, 8, 4)
        assert buffers.producer_of(0) == 0
        assert buffers.producer_of(3) == 3
        assert buffers.buffers_produced_by(1) == [1]
        assert buffers.block_index(2, 3) == 19
        assert buffers.block_index(2, 11) == 19  # slot wraps


class TestWorkloadConfig:
    def test_defaults_validate(self):
        WorkloadConfig()

    def test_action_mass_bounded(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(p_shared_read=0.9, p_buffer=0.2)

    def test_lock_attempts_require_locks(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(p_lock_attempt=0.1, num_locks=0)

    def test_scaled_to(self):
        config = WorkloadConfig(length=1000).scaled_to(5000)
        assert config.length == 5000

    def test_bad_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(instr_fraction=1.0)
        with pytest.raises(ConfigurationError):
            WorkloadConfig(spin_reads_per_step=0)


class TestGeneration:
    def test_trace_has_requested_length(self):
        trace = SyntheticWorkload(WorkloadConfig(length=5000)).build()
        assert len(trace) == 5000

    def test_deterministic_for_same_seed(self):
        config = WorkloadConfig(length=3000, seed=7)
        a = SyntheticWorkload(config).build()
        b = SyntheticWorkload(config).build()
        assert a.records == b.records

    def test_different_seeds_differ(self):
        a = SyntheticWorkload(WorkloadConfig(length=3000, seed=1)).build()
        b = SyntheticWorkload(WorkloadConfig(length=3000, seed=2)).build()
        assert a.records != b.records

    def test_process_count_respected(self):
        trace = SyntheticWorkload(WorkloadConfig(length=4000, num_processes=3)).build()
        assert trace.pids == [0, 1, 2]

    def test_spin_reads_only_from_lock_region(self):
        layout = AddressSpaceLayout()
        mapper = BlockMapper()
        trace = SyntheticWorkload(WorkloadConfig(length=20_000)).build()
        lock_blocks = {mapper.block_of(layout.lock_address(i)) for i in range(8)}
        for record in trace:
            if record.spin:
                assert mapper.block_of(record.address) in lock_blocks

    def test_instr_fraction_near_target(self):
        trace = SyntheticWorkload(WorkloadConfig(length=40_000, instr_fraction=0.45)).build()
        stats = compute_statistics(trace.records, "t")
        assert abs(stats.instr_fraction - 0.45) < 0.05


class TestRegistry:
    def test_available_workloads(self):
        assert available_workloads() == ["pero", "pops", "thor"]

    def test_unknown_workload(self):
        with pytest.raises(UnknownSchemeError):
            make_trace("spec2006")
        with pytest.raises(UnknownSchemeError):
            workload_config("linpack")

    def test_make_trace_length(self):
        trace = make_trace("pero", length=2000)
        assert len(trace) == 2000 and trace.name == "pero"

    def test_standard_traces_cached(self):
        first = standard_traces(5000)
        second = standard_traces(5000)
        assert [t.name for t in first] == ["pops", "thor", "pero"]
        assert first[0] is second[0]  # cache hit

    def test_config_knobs_forwarded(self):
        config = workload_config("pops", length=1234, seed=99)
        assert config.length == 1234 and config.seed == 99


class TestMigration:
    def test_migration_changes_cpu_assignments(self):
        config = WorkloadConfig(
            length=20_000, p_migrate=1.0, migration_interval=1_000, seed=5
        )
        trace = SyntheticWorkload(config).build()
        # Some pid must appear on more than one cpu.
        cpus_per_pid = {}
        for record in trace:
            cpus_per_pid.setdefault(record.pid, set()).add(record.cpu)
        assert any(len(cpus) > 1 for cpus in cpus_per_pid.values())

    def test_no_migration_keeps_assignments(self):
        config = WorkloadConfig(length=10_000, p_migrate=0.0, seed=5)
        trace = SyntheticWorkload(config).build()
        cpus_per_pid = {}
        for record in trace:
            cpus_per_pid.setdefault(record.pid, set()).add(record.cpu)
        assert all(len(cpus) == 1 for cpus in cpus_per_pid.values())

    def test_migration_only_affects_processor_sharing_view(self):
        from repro.core.simulator import simulate

        config = WorkloadConfig(
            length=20_000, p_migrate=1.0, migration_interval=1_000, seed=5
        )
        trace = SyntheticWorkload(config).build()
        by_pid = simulate(trace, "dir0b", sharer_key="pid")
        by_cpu = simulate(trace, "dir0b", sharer_key="cpu")
        from repro.cost.bus import PAPER_PIPELINED

        # Migration-induced sharing can only add coherence traffic.
        assert by_cpu.bus_cycles_per_reference(
            PAPER_PIPELINED
        ) >= by_pid.bus_cycles_per_reference(PAPER_PIPELINED)
