"""The Section 5 shared-bus processor bound."""

import pytest

from repro.analysis.system import SystemBound, effective_processor_bound


def test_paper_example_lands_near_15_processors():
    """0.03 cycles/ref, 10 MIPS, 1 data ref/instr, 100 ns bus -> ~15-17."""
    bound = effective_processor_bound("dragon", 0.03)
    assert bound.ns_between_bus_cycles == pytest.approx(1666.7, rel=1e-3)
    assert 14 < bound.max_processors < 18


def test_faster_processors_reduce_the_bound():
    slow = effective_processor_bound("s", 0.03, mips=10)
    fast = effective_processor_bound("s", 0.03, mips=40)
    assert fast.max_processors == pytest.approx(slow.max_processors / 4)


def test_cheaper_protocol_raises_the_bound():
    expensive = effective_processor_bound("a", 0.32)
    cheap = effective_processor_bound("b", 0.03)
    assert cheap.max_processors > 10 * expensive.max_processors / 2


def test_zero_cost_is_unbounded():
    bound = effective_processor_bound("free", 0.0)
    assert bound.max_processors == float("inf")


def test_validation():
    with pytest.raises(ValueError):
        SystemBound("s", 0.03, mips=0, data_refs_per_instruction=1, bus_cycle_ns=100)
    with pytest.raises(ValueError):
        SystemBound("s", -0.1, mips=10, data_refs_per_instruction=1, bus_cycle_ns=100)
    with pytest.raises(ValueError):
        SystemBound("s", 0.1, mips=10, data_refs_per_instruction=0, bus_cycle_ns=100)


def test_references_per_second_counts_instr_and_data():
    bound = effective_processor_bound("s", 0.03, mips=10, data_refs_per_instruction=1)
    assert bound.references_per_second == pytest.approx(2e7)
