"""The network scaling study: directories scale, snoopy schemes can't run."""

import pytest

from repro.analysis.networks import network_scaling_study
from repro.cost.network import Topology


@pytest.fixture(scope="module")
def points():
    return network_scaling_study(
        schemes=("dirnnb", "dir0b", "dragon"),
        topologies=(Topology.BUS, Topology.MESH_2D),
        node_counts=(4, 16),
        length=10_000,
        workloads=("pops", "pero"),
    )


def lookup(points, scheme, topology, nodes):
    for point in points:
        if (
            point.scheme == scheme
            and point.topology is topology
            and point.num_nodes == nodes
        ):
            return point
    raise AssertionError("point missing")


def test_full_grid_present(points):
    assert len(points) == 12  # 3 schemes x 2 topologies x 2 sizes


def test_snoopy_unhosted_off_bus(points):
    assert not lookup(points, "dragon", Topology.MESH_2D, 16).hosted
    assert lookup(points, "dragon", Topology.BUS, 16).hosted


def test_directory_schemes_hosted_everywhere(points):
    for scheme in ("dirnnb", "dir0b"):
        for topology in (Topology.BUS, Topology.MESH_2D):
            for nodes in (4, 16):
                assert lookup(points, scheme, topology, nodes).hosted


def test_sequential_beats_broadcast_on_networks(points):
    """The paper's Section 6 motivation, quantified: on a mesh the
    no-broadcast full map beats the broadcast scheme, whose emulated
    broadcasts cost O(n) messages."""
    dirnnb = lookup(points, "dirnnb", Topology.MESH_2D, 16)
    dir0b = lookup(points, "dir0b", Topology.MESH_2D, 16)
    assert dirnnb.cycles_per_reference < dir0b.cycles_per_reference


def test_broadcast_penalty_grows_with_machine(points):
    """Dir0B's disadvantage over DirnNB widens from 4 to 16 nodes."""

    def gap(nodes):
        dirnnb = lookup(points, "dirnnb", Topology.MESH_2D, nodes)
        dir0b = lookup(points, "dir0b", Topology.MESH_2D, nodes)
        return dir0b.cycles_per_reference / dirnnb.cycles_per_reference

    assert gap(16) > gap(4)
