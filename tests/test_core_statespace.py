"""Exhaustive single-block state-space exploration."""

import pytest

from repro.core.statespace import ExplorationReport, explore_block_states, fingerprint
from repro.errors import ConfigurationError
from repro.protocols.registry import available_protocols, make_protocol


def test_every_registered_protocol_is_invariant_clean():
    for scheme in available_protocols():
        num_caches = 4 if scheme == "coarse-vector" else 3
        report = explore_block_states(scheme, num_caches=num_caches)
        assert report.clean, f"{scheme}: {report.violations[:3]}"
        assert report.states > 3
        assert report.transitions >= report.states


def test_dir1nb_has_the_smallest_space():
    """One copy at a time: fewest reachable global states."""
    dir1nb = explore_block_states("dir1nb", num_caches=3)
    dir0b = explore_block_states("dir0b", num_caches=3)
    dragon = explore_block_states("dragon", num_caches=3)
    assert dir1nb.states < dir0b.states < dragon.states


def test_state_count_grows_with_machine_size():
    small = explore_block_states("dirnnb", num_caches=2)
    big = explore_block_states("dirnnb", num_caches=4)
    assert big.states > small.states


def test_pointer_count_changes_dirinb_space():
    one = explore_block_states("dirinb", num_caches=3, num_pointers=1)
    two = explore_block_states("dirinb", num_caches=3, num_pointers=2)
    assert one.states < two.states


def test_max_states_guard():
    with pytest.raises(ConfigurationError, match="max_states"):
        explore_block_states("dragon", num_caches=3, max_states=2)


def test_violation_detection_on_a_broken_protocol():
    """Sabotage Dir0B's write path: the explorer must notice."""
    from repro.protocols.directory.dir0b import Dir0BProtocol
    from repro.protocols import registry

    class BrokenDir0B(Dir0BProtocol):
        def on_write(self, cache, block, first_ref):
            result = super().on_write(cache, block, first_ref)
            # "Forget" an invalidation: resurrect another cache's copy.
            from repro.memory.line import LineState

            other = (cache + 1) % self.num_caches
            if not first_ref:
                self._caches[other].put(block, LineState.CLEAN)
            return result

    original = registry._REGISTRY["dir0b"]
    registry._REGISTRY["dir0b"] = BrokenDir0B
    try:
        report = explore_block_states("dir0b", num_caches=3)
    finally:
        registry._REGISTRY["dir0b"] = original
    assert not report.clean
    assert any("dirty" in violation.lower() for violation in report.violations)


def test_stop_on_violation_short_circuits():
    from repro.protocols.directory.dir0b import Dir0BProtocol
    from repro.protocols import registry
    from repro.memory.line import LineState

    class Broken(Dir0BProtocol):
        def on_write(self, cache, block, first_ref):
            result = super().on_write(cache, block, first_ref)
            self._caches[(cache + 1) % self.num_caches].put(block, LineState.DIRTY)
            return result

    original = registry._REGISTRY["dir0b"]
    registry._REGISTRY["dir0b"] = Broken
    try:
        report = explore_block_states("dir0b", num_caches=3, stop_on_violation=True)
    finally:
        registry._REGISTRY["dir0b"] = original
    assert len(report.violations) == 1


def test_fingerprint_distinguishes_states():
    protocol_a = make_protocol("dir0b", 3)
    protocol_b = make_protocol("dir0b", 3)
    assert fingerprint(protocol_a) == fingerprint(protocol_b)
    protocol_a.on_read(0, 0, True)
    assert fingerprint(protocol_a) != fingerprint(protocol_b)
    protocol_b.on_read(0, 0, True)
    assert fingerprint(protocol_a) == fingerprint(protocol_b)


def test_report_dataclass():
    report = ExplorationReport(scheme="s", num_caches=2)
    assert report.clean
    report.violations.append("boom")
    assert not report.clean
