"""Parallel sweep engine and on-disk result cache."""

import json

import pytest

from repro.core.simulator import Simulator
from repro.errors import ConfigurationError, ProtocolError, TransientError
from repro.protocols.registry import make_protocol
from repro.runner.cache import ResultCache, cache_key, trace_fingerprint
from repro.runner.checkpoint import CheckpointManager
from repro.engine.backends import ProcessPoolBackend
from repro.runner.resilient import ResilientExperiment, RetryPolicy
from repro.trace.columnar import ColumnarTrace
from repro.workloads.registry import make_trace

SCHEMES = ["dir1nb", "wti", "dir0b", "dragon"]


def no_sleep_policy(**kwargs) -> RetryPolicy:
    kwargs.setdefault("sleep", lambda _delay: None)
    return RetryPolicy(**kwargs)


@pytest.fixture
def traces():
    return [
        make_trace("pops", length=1500, seed=1),
        make_trace("thor", length=1500, seed=2),
    ]


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------

def test_parallel_sweep_matches_serial(traces):
    serial = ResilientExperiment(traces=traces, schemes=SCHEMES).run()
    parallel = ResilientExperiment(traces=traces, schemes=SCHEMES, jobs=2).run()
    assert parallel.results == serial.results


def test_parallel_result_ordering_is_sweep_order(traces):
    outcome = ResilientExperiment(traces=traces, schemes=SCHEMES, jobs=2).run()
    assert list(outcome.results) == SCHEMES  # scheme-major
    for per_trace in outcome.results.values():
        assert list(per_trace) == [trace.name for trace in traces]


def test_jobs_must_be_positive(traces):
    with pytest.raises(ConfigurationError, match="jobs"):
        ResilientExperiment(traces=traces, schemes=SCHEMES, jobs=0)
    with pytest.raises(ConfigurationError, match="jobs"):
        ProcessPoolBackend(jobs=0)


def test_parallel_containment_of_permanent_failures(traces):
    def saboteur(num_caches):
        raise ProtocolError("sabotaged build")

    saboteur.scheme_key = "boom"
    outcome = ResilientExperiment(
        traces=traces,
        schemes=["dir0b", saboteur, "dragon"],
        jobs=2,
        retry=no_sleep_policy(max_attempts=2),
    ).run()
    failures = outcome.all_failures()
    assert {f.scheme for f in failures} == {"boom"}
    assert all(f.category == "ProtocolError" for f in failures)
    assert set(outcome.results) == {"dir0b", "dragon"}


def test_unpicklable_cells_fall_back_to_in_process(traces):
    # A lambda cannot cross the process boundary; the cell must still
    # run (in the parent) and still be contained on failure.
    bad = lambda num_caches: (_ for _ in ()).throw(ProtocolError("boom"))  # noqa: E731
    bad.scheme_key = "unpicklable"
    outcome = ResilientExperiment(
        traces=traces,
        schemes=["dir0b", bad],
        jobs=2,
        retry=no_sleep_policy(max_attempts=1),
    ).run()
    assert {f.scheme for f in outcome.all_failures()} == {"unpicklable"}
    assert "dir0b" in outcome.results


def test_parallel_strict_raises_rehydrated_exception(traces):
    def saboteur(num_caches):
        raise ProtocolError("sabotaged build")

    saboteur.scheme_key = "boom"
    with pytest.raises(ProtocolError, match="sabotaged build"):
        ResilientExperiment(
            traces=traces, schemes=[saboteur, "dir0b"], jobs=2, strict=True,
            retry=no_sleep_policy(max_attempts=1),
        ).run()


def test_worker_side_retry_recovers_transients(traces):
    class FlakyFactory:
        scheme_key = "flaky"

        def __init__(self):
            self.calls = 0

        def __call__(self, num_caches):
            self.calls += 1
            if self.calls < 3:
                raise TransientError("warming up")
            return make_protocol("dir0b", num_caches)

    outcome = ResilientExperiment(
        traces=traces[:1],
        schemes=[FlakyFactory()],
        jobs=2,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
    ).run()
    assert not outcome.all_failures()
    assert "flaky" in outcome.results


def test_parallel_checkpoint_manifest_and_resume(tmp_path, traces):
    checkpoint = CheckpointManager(tmp_path / "ckpt")
    first = ResilientExperiment(
        traces=traces, schemes=SCHEMES, jobs=2, checkpoint=checkpoint
    ).run()
    manifest = json.loads((tmp_path / "ckpt" / "manifest.json").read_text())
    assert set(manifest["completed"]) == set(SCHEMES)
    assert all(len(cells) == len(traces) for cells in manifest["completed"].values())

    resumed = ResilientExperiment(
        traces=traces, schemes=SCHEMES, jobs=2, checkpoint=checkpoint, resume=True
    ).run()
    assert resumed.results == first.results


def test_parallel_resume_from_serial_checkpoint(tmp_path, traces):
    checkpoint = CheckpointManager(tmp_path / "ckpt")
    serial = ResilientExperiment(
        traces=traces, schemes=SCHEMES, checkpoint=checkpoint
    ).run()
    parallel = ResilientExperiment(
        traces=traces, schemes=SCHEMES, jobs=3, checkpoint=checkpoint, resume=True
    ).run()
    assert parallel.results == serial.results


def test_executor_runs_columnar_traces(traces):
    columnar = [ColumnarTrace.from_trace(trace) for trace in traces]
    serial = ResilientExperiment(traces=traces, schemes=SCHEMES).run()
    parallel = ResilientExperiment(traces=columnar, schemes=SCHEMES, jobs=2).run()
    assert parallel.results == serial.results


def test_executor_reports_attempt_counts(traces):
    executor = ProcessPoolBackend(jobs=2, retry=no_sleep_policy(max_attempts=1))
    cells = [("dir0b", "dir0b", traces[0]), ("dragon", "dragon", traces[1])]
    outcomes = executor.run(Simulator(), cells)
    assert set(outcomes) == {0, 1}
    assert all(payload["status"] == "ok" for payload in outcomes.values())
    assert all(payload["attempts"] == 1 for payload in outcomes.values())


# ----------------------------------------------------------------------
# Trace fingerprints
# ----------------------------------------------------------------------

def test_fingerprint_is_representation_independent(traces):
    trace = traces[0]
    assert trace_fingerprint(trace) == trace_fingerprint(
        ColumnarTrace.from_trace(trace)
    )


def test_fingerprint_ignores_trace_name(traces):
    trace = traces[0]
    renamed = ColumnarTrace.from_trace(trace)
    renamed.name = "something-else"
    assert trace_fingerprint(trace) == trace_fingerprint(renamed)


def test_fingerprint_changes_with_content(traces):
    trace = traces[0]
    truncated = ColumnarTrace.from_trace(trace)[: len(trace) - 1]
    assert trace_fingerprint(trace) != trace_fingerprint(truncated)


def test_cache_key_varies_with_scheme_options_and_config(traces):
    fp = trace_fingerprint(traces[0])
    base = cache_key("dir0b", Simulator(), fp)
    assert cache_key("dragon", Simulator(), fp) != base
    assert cache_key("dir0b", Simulator(sharer_key="cpu"), fp) != base
    assert cache_key(("dirinb", {"num_pointers": 2}), Simulator(), fp) != base
    assert cache_key("dir0b", Simulator(), fp) == base


def test_cache_key_is_none_for_factories(traces):
    factory = lambda num_caches: make_protocol("dir0b", num_caches)  # noqa: E731
    assert cache_key(factory, Simulator(), trace_fingerprint(traces[0])) is None


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

def test_result_cache_hits_skip_simulation(tmp_path, traces):
    cache = ResultCache(tmp_path / "cache")
    first = ResilientExperiment(
        traces=traces, schemes=SCHEMES, result_cache=cache
    ).run()
    assert cache.hits == 0
    assert cache.misses == len(SCHEMES) * len(traces)

    cache2 = ResultCache(tmp_path / "cache")
    second = ResilientExperiment(
        traces=traces, schemes=SCHEMES, result_cache=cache2
    ).run()
    assert cache2.hits == len(SCHEMES) * len(traces)
    assert cache2.misses == 0
    assert second.results == first.results


def test_result_cache_crosses_representations_and_jobs(tmp_path, traces):
    cache = ResultCache(tmp_path / "cache")
    serial = ResilientExperiment(
        traces=traces, schemes=SCHEMES, result_cache=cache
    ).run()
    columnar = [ColumnarTrace.from_trace(trace) for trace in traces]
    cache2 = ResultCache(tmp_path / "cache")
    parallel = ResilientExperiment(
        traces=columnar, schemes=SCHEMES, jobs=2, result_cache=cache2
    ).run()
    assert cache2.hits == len(SCHEMES) * len(traces)
    assert parallel.results == serial.results


def test_result_cache_ignores_corrupt_entries(tmp_path, traces):
    cache = ResultCache(tmp_path / "cache")
    ResilientExperiment(traces=traces, schemes=["dir0b"], result_cache=cache).run()
    for entry in (tmp_path / "cache").glob("*.json"):
        entry.write_text("{ not json")
    cache2 = ResultCache(tmp_path / "cache")
    outcome = ResilientExperiment(
        traces=traces, schemes=["dir0b"], result_cache=cache2
    ).run()
    assert cache2.hits == 0
    assert not outcome.all_failures()


def test_result_cache_reports_under_current_labels(tmp_path, traces):
    """A hit from a differently-named identical trace keeps this sweep's names."""
    cache = ResultCache(tmp_path / "cache")
    ResilientExperiment(
        traces=traces[:1], schemes=["dir0b"], result_cache=cache
    ).run()
    renamed = ColumnarTrace.from_trace(traces[0])
    renamed.name = "alias"
    cache2 = ResultCache(tmp_path / "cache")
    outcome = ResilientExperiment(
        traces=[renamed], schemes=["dir0b"], result_cache=cache2
    ).run()
    assert cache2.hits == 1
    result = outcome.results["dir0b"]["alias"]
    assert result.trace_name == "alias"
    assert result.scheme == "dir0b"
