"""The Illinois/MESI protocol (paper reference [5])."""

from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED
from repro.protocols.snoopy.illinois import IllinoisProtocol, MESIState
from repro.protocols.events import EventType, OpKind

from conftest import drive


def kinds_of(result):
    return [op.kind for op in result.ops]


def test_sole_fetch_installs_exclusive():
    protocol = IllinoisProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "w", 2), (1, "r", 1)])
    # Block 1 fetched while cache 0 holds it -> SHARED for both; a
    # fresh block with no other holder would be EXCLUSIVE.
    assert protocol.holders(2) == {1: MESIState.MODIFIED}
    holders = protocol.holders(1)
    assert holders[0] is MESIState.SHARED and holders[1] is MESIState.SHARED


def test_exclusive_upgrade_is_silent():
    """The E state's payoff: write to an unshared clean block, no bus."""
    protocol = IllinoisProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 2), (0, "w", 1)])
    assert results[2].event is EventType.WH_BLK_DRTY
    assert results[2].ops == ()
    assert protocol.holders(1) == {0: MESIState.MODIFIED}


def test_shared_write_broadcasts_invalidate():
    protocol = IllinoisProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
    final = results[2]
    assert final.event is EventType.WH_BLK_CLN
    assert kinds_of(final) == [OpKind.BROADCAST_INVALIDATE]
    assert final.clean_write_sharers == 1


def test_cache_to_cache_supply_of_clean_blocks():
    protocol = IllinoisProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1)])
    # Cache 0 (EXCLUSIVE) supplies; both become SHARED.
    assert kinds_of(results[1]) == [OpKind.CACHE_ACCESS]
    assert results[1].event is EventType.RM_BLK_CLN


def test_dirty_supply_flushes():
    protocol = IllinoisProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "r", 1)])
    assert results[1].event is EventType.RM_BLK_DRTY
    assert kinds_of(results[1]) == [OpKind.WRITE_BACK]
    holders = protocol.holders(1)
    assert holders[0] is MESIState.SHARED and holders[1] is MESIState.SHARED


def test_modified_and_exclusive_are_sole_copies():
    protocol = IllinoisProtocol(4)
    drive(
        protocol,
        [(0, "r", 1), (1, "r", 1), (1, "w", 1), (2, "r", 1), (3, "w", 1)],
    )
    for block in protocol.tracked_blocks():
        exclusive = [
            cache
            for cache, state in protocol.holders(block).items()
            if state.is_exclusive
        ]
        if exclusive:
            assert len(protocol.holders(block)) == 1


def test_read_after_invalidation_shares_with_owner():
    protocol = IllinoisProtocol(4)
    # 0 invalidated by 1's write; 0's re-read gets a dirty supply.
    drive(protocol, [(0, "r", 1), (1, "w", 1), (0, "r", 1)])
    assert protocol.holders(1)[0] is MESIState.SHARED
    assert protocol.holders(1)[1] is MESIState.SHARED


def test_beats_write_once_on_private_write_patterns(pops_small):
    """E-state silent upgrades save write-once's one bus word per block."""
    bus = PAPER_PIPELINED
    illinois = simulate(pops_small, "illinois").bus_cycles_per_reference(bus)
    write_once = simulate(pops_small, "write-once").bus_cycles_per_reference(bus)
    assert illinois < write_once


def test_competitive_with_dragon(pops_small):
    bus = PAPER_PIPELINED
    illinois = simulate(pops_small, "illinois").bus_cycles_per_reference(bus)
    dragon = simulate(pops_small, "dragon").bus_cycles_per_reference(bus)
    dir0b = simulate(pops_small, "dir0b").bus_cycles_per_reference(bus)
    assert illinois < dir0b
    assert illinois < 1.5 * dragon
