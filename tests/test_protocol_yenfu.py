"""Yen & Fu's single-bit scheme (Section 2)."""

import pytest

from repro.cost.accounting import CostCategory
from repro.cost.bus import PAPER_PIPELINED
from repro.protocols.directory.dirnnb import DirNNBProtocol
from repro.protocols.directory.yenfu import YenFuProtocol
from repro.protocols.events import EventType, OpKind

from conftest import drive


def op_units(result, kind):
    return sum(op.count for op in result.ops if op.kind is kind)


def test_single_bit_set_for_sole_holder():
    protocol = YenFuProtocol(4)
    drive(protocol, [(0, "r", 1)], check=False)
    assert protocol.single_bit(0, 1)


def test_single_bit_cleared_when_shared():
    protocol = YenFuProtocol(4)
    drive(protocol, [(0, "r", 1), (1, "r", 1)], check=False)
    assert not protocol.single_bit(0, 1)
    assert not protocol.single_bit(1, 1)


def test_write_hit_with_single_bit_skips_directory():
    protocol = YenFuProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1)], check=False)
    final = results[1]
    assert final.event is EventType.WH_BLK_CLN
    assert final.ops == ()  # no DIR_CHECK: the saved access


def test_write_hit_without_single_bit_probes_directory():
    protocol = YenFuProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)], check=False)
    final = results[2]
    assert op_units(final, OpKind.DIR_CHECK) == 1
    assert op_units(final, OpKind.INVALIDATE) == 1


def test_sharing_transition_costs_a_single_bit_update():
    protocol = YenFuProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1)], check=False)
    # The second reader's miss carries the message clearing cache 0's bit.
    assert op_units(results[1], OpKind.SINGLE_BIT_UPDATE) == 1


def test_dirty_flush_transition_piggybacks_for_free():
    protocol = YenFuProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "r", 1)], check=False)
    # The flush already involved cache 0: no extra message.
    assert op_units(results[1], OpKind.SINGLE_BIT_UPDATE) == 0
    assert not protocol.single_bit(0, 1)


def test_events_match_censier_feautrier():
    refs = [
        (0, "r", 1), (1, "r", 1), (0, "w", 1), (2, "r", 1), (2, "w", 1),
        (3, "w", 2), (0, "r", 2), (0, "w", 2),
    ]
    yenfu = [r.event for r in drive(YenFuProtocol(4), refs, check=False)]
    cf = [r.event for r in drive(DirNNBProtocol(4), refs, check=False)]
    assert yenfu == cf


def test_saves_directory_cycles_on_real_traces(pops_small):
    from repro.core.simulator import simulate

    yenfu = simulate(pops_small, "yenfu")
    cf = simulate(pops_small, "dirnnb")
    yenfu_dir = yenfu.breakdown_per_reference(PAPER_PIPELINED).get(
        CostCategory.DIR_ACCESS
    )
    cf_dir = cf.breakdown_per_reference(PAPER_PIPELINED).get(CostCategory.DIR_ACCESS)
    # The point of the scheme: fewer standalone directory cycles ...
    assert yenfu_dir < cf_dir
    # ... while the miss behaviour (and thus block traffic) is identical.
    assert yenfu.frequencies().data_miss_fraction == pytest.approx(
        cf.frequencies().data_miss_fraction
    )


def test_write_after_regaining_singleness():
    protocol = YenFuProtocol(4)
    results = drive(
        protocol,
        [(0, "r", 1), (1, "r", 1), (0, "w", 1), (0, "r", 1), (0, "w", 1)],
        check=False,
    )
    # After invalidating cache 1, cache 0 is single again; the write
    # following its (hit) read is free.
    assert results[3].event is EventType.RD_HIT
    assert results[4].event is EventType.WH_BLK_DRTY


def test_storage_is_full_map():
    assert YenFuProtocol(64).directory_bits_per_block() == 65
