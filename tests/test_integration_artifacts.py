"""Integration: every paper artifact regenerates and is well-formed."""

import pytest

from repro.report.experiments import PAPER_SCHEMES, Artifact, PaperExperiments


@pytest.fixture(scope="module")
def experiments():
    return PaperExperiments(length=20_000)


def test_table1_is_the_paper_timing(experiments):
    artifact = experiments.table1()
    assert artifact.data["Invalidate"] == 1
    assert artifact.data["Wait for Memory"] == 2
    assert "Table 1" in artifact.text


def test_table2_has_both_buses(experiments):
    artifact = experiments.table2()
    assert artifact.data["pipelined"]["memory access"] == 5
    assert artifact.data["non-pipelined"]["memory access"] == 7


def test_table3_reports_three_traces(experiments):
    artifact = experiments.table3()
    assert [stats.name for stats in artifact.data] == ["pops", "thor", "pero"]
    assert all(stats.total_refs == 20_000 for stats in artifact.data)
    assert "POPS" in artifact.text


def test_table4_shape(experiments):
    artifact = experiments.table4()
    frequencies = artifact.data
    assert set(frequencies) == set(PAPER_SCHEMES)
    # Scheme-inapplicable cells render as dashes, like the paper.
    wh_distrib_row = next(
        line for line in artifact.text.splitlines() if "wh-distrib" in line
    )
    assert wh_distrib_row.count("-") >= 3


def test_table5_cumulative_row(experiments):
    artifact = experiments.table5()
    assert "cumulative" in artifact.text
    table = artifact.data
    for scheme in PAPER_SCHEMES:
        assert sum(table[scheme].values()) >= 0


def test_figure1_single_invalidation_dominates(experiments):
    artifact = experiments.figure1()
    assert artifact.data.single_or_none_fraction > 0.7
    assert "%" in artifact.text


def test_figure2_ranges_ordered(experiments):
    ranges = experiments.figure2().data
    for low, high in ranges.values():
        assert 0 <= low <= high


def test_figure3_per_trace(experiments):
    data = experiments.figure3().data
    assert set(data) == {"pops", "thor", "pero"}


def test_figure4_fractions(experiments):
    fractions = experiments.figure4().data
    for row in fractions.values():
        assert sum(row.values()) == pytest.approx(1.0, abs=1e-6)


def test_figure5_transaction_costs(experiments):
    costs = experiments.figure5().data
    assert costs["dir1nb"] > costs["dragon"]


def test_section51_models(experiments):
    data = experiments.section51().data
    assert data["dragon"].slope > data["dir0b"].slope * 0.5
    assert data["berkeley"] <= data["dir0b"].base


def test_section52_spin_impact(experiments):
    impacts = experiments.section52().data
    by_scheme = {impact.scheme: impact for impact in impacts}
    assert by_scheme["dir1nb"].relative_drop > by_scheme["dir0b"].relative_drop


def test_section6_artifacts(experiments):
    sequential = experiments.section6_sequential().data
    assert sequential["dirnnb"] == pytest.approx(sequential["dir0b"], rel=0.15)
    model = experiments.section6_dir1b().data
    assert model.cycles(10) > model.cycles(1)
    sweep = experiments.section6_sweep(pointer_counts=(1, 2)).data
    assert len(sweep) == 4
    storage = experiments.section6_storage().data
    assert storage[1024]["full-map"] == 1025


def test_section5_system_bound(experiments):
    bounds = experiments.section5_system().data
    assert bounds["dragon"].max_processors > bounds["dir1nb"].max_processors


def test_all_artifacts_regenerate(experiments):
    artifacts = experiments.all_artifacts()
    assert len(artifacts) == 19
    for artifact in artifacts:
        assert isinstance(artifact, Artifact)
        assert artifact.text.strip()
        assert str(artifact) == artifact.text
