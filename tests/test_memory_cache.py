"""Infinite and finite cache models."""

import pytest

from repro.memory.cache import FiniteCache, InfiniteCache, make_cache
from repro.memory.line import LineState


def test_infinite_cache_put_get_evict():
    cache = InfiniteCache()
    assert cache.get(1) is None
    assert cache.put(1, LineState.CLEAN) is None
    assert cache.get(1) is LineState.CLEAN
    assert 1 in cache
    assert len(cache) == 1
    assert cache.evict(1) is LineState.CLEAN
    assert cache.get(1) is None
    assert cache.evict(1) is None


def test_infinite_cache_never_evicts_on_put():
    cache = InfiniteCache()
    for block in range(10_000):
        assert cache.put(block, LineState.CLEAN) is None
    assert len(cache) == 10_000


def test_infinite_cache_blocks_iteration():
    cache = InfiniteCache()
    cache.put(3, LineState.CLEAN)
    cache.put(7, LineState.DIRTY)
    assert sorted(cache.blocks()) == [3, 7]
    assert dict(cache.items()) == {3: LineState.CLEAN, 7: LineState.DIRTY}


def test_finite_cache_capacity_and_eviction():
    cache = FiniteCache(num_sets=1, associativity=2)
    assert cache.capacity_blocks == 2
    assert cache.put(1, LineState.CLEAN) is None
    assert cache.put(2, LineState.CLEAN) is None
    victim = cache.put(3, LineState.CLEAN)
    assert victim == (1, LineState.CLEAN)  # LRU
    assert 1 not in cache and 2 in cache and 3 in cache


def test_finite_cache_lru_touch_refreshes():
    cache = FiniteCache(num_sets=1, associativity=2)
    cache.put(1, LineState.CLEAN)
    cache.put(2, LineState.CLEAN)
    cache.touch(1)  # 2 becomes LRU
    victim = cache.put(3, LineState.CLEAN)
    assert victim == (2, LineState.CLEAN)


def test_finite_cache_update_does_not_evict():
    cache = FiniteCache(num_sets=1, associativity=2)
    cache.put(1, LineState.CLEAN)
    cache.put(2, LineState.CLEAN)
    assert cache.put(1, LineState.DIRTY) is None
    assert cache.get(1) is LineState.DIRTY


def test_finite_cache_set_indexing():
    cache = FiniteCache(num_sets=4, associativity=1)
    cache.put(0, LineState.CLEAN)
    cache.put(4, LineState.CLEAN)  # same set as 0 (block % 4)
    assert 0 not in cache
    assert 4 in cache
    cache.put(1, LineState.CLEAN)  # different set
    assert 4 in cache and 1 in cache


def test_finite_cache_len_and_blocks():
    cache = FiniteCache(num_sets=2, associativity=2)
    for block in (0, 1, 2, 3):
        cache.put(block, LineState.CLEAN)
    assert len(cache) == 4
    assert sorted(cache.blocks()) == [0, 1, 2, 3]


def test_finite_cache_validation():
    with pytest.raises(ValueError):
        FiniteCache(num_sets=3, associativity=2)
    with pytest.raises(ValueError):
        FiniteCache(num_sets=0, associativity=2)
    with pytest.raises(ValueError):
        FiniteCache(num_sets=2, associativity=0)


def test_make_cache_factory():
    assert isinstance(make_cache("infinite"), InfiniteCache)
    finite = make_cache("finite", num_sets=8, associativity=4)
    assert isinstance(finite, FiniteCache)
    assert finite.capacity_blocks == 32
    with pytest.raises(ValueError):
        make_cache("bogus")


def test_infinite_cache_touch_is_a_noop():
    cache = InfiniteCache()
    cache.put(1, LineState.CLEAN)
    cache.touch(1)
    cache.touch(99)  # absent block: still fine
    assert cache.get(1) is LineState.CLEAN
