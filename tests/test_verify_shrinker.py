"""Shrinker properties: still-failing, 1-minimal, deterministic.

The property suite drives :func:`shrink_records` with synthetic
predicates over generated record lists (fast, no simulation), then a
handful of end-to-end tests shrink real conformance failures through
:func:`failure_predicate`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.io import format_record
from repro.trace.record import RefType, TraceRecord
from repro.verify import ConformanceSpec, shrink_trace
from repro.verify.mutation import mutation_trace
from repro.verify.shrink import failure_predicate, shrink_records

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        cpu=st.integers(0, 3),
        pid=st.integers(0, 3),
        ref_type=st.sampled_from([RefType.READ, RefType.WRITE]),
        address=st.integers(0, 7).map(lambda block: block * 16),
    ),
    min_size=1,
    max_size=40,
)


def writes(records):
    return [r for r in records if r.ref_type is RefType.WRITE]


def render(records):
    return [format_record(r) for r in records]


# ----------------------------------------------------------------------
# Properties with synthetic predicates
# ----------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(records=records_strategy, threshold=st.integers(1, 3))
def test_shrunk_output_still_satisfies_the_predicate(records, threshold):
    predicate = lambda candidate: len(writes(candidate)) >= threshold
    if not predicate(records):
        with pytest.raises(ValueError):
            shrink_records(records, predicate)
        return
    reduced = shrink_records(records, predicate)
    assert predicate(reduced)
    assert len(reduced) <= len(records)


@settings(max_examples=80, deadline=None)
@given(records=records_strategy, threshold=st.integers(1, 3))
def test_shrunk_output_is_minimal_under_single_deletion(records, threshold):
    predicate = lambda candidate: len(writes(candidate)) >= threshold
    if not predicate(records):
        return
    reduced = shrink_records(records, predicate)
    for position in range(len(reduced)):
        candidate = reduced[:position] + reduced[position + 1 :]
        assert not (candidate and predicate(candidate))
    # For this monotone predicate, 1-minimal means exactly `threshold`
    # writes and nothing else.
    assert len(reduced) == threshold
    assert len(writes(reduced)) == threshold


@settings(max_examples=60, deadline=None)
@given(records=records_strategy, threshold=st.integers(1, 3))
def test_shrinking_is_deterministic(records, threshold):
    predicate = lambda candidate: len(writes(candidate)) >= threshold
    if not predicate(records):
        return
    first = shrink_records(list(records), predicate)
    second = shrink_records(list(records), predicate)
    assert render(first) == render(second)


@settings(max_examples=40, deadline=None)
@given(records=records_strategy)
def test_nonmonotone_predicates_shrink_safely_too(records):
    """Order-sensitive predicates (a specific adjacency) still shrink to
    a failing, 1-minimal core — nothing assumes monotonicity."""

    def predicate(candidate):
        return any(
            a.ref_type is RefType.WRITE and b.ref_type is RefType.READ
            and a.address == b.address
            for a, b in zip(candidate, candidate[1:])
        )

    if not predicate(records):
        return
    reduced = shrink_records(records, predicate)
    assert predicate(reduced)
    for position in range(len(reduced)):
        candidate = reduced[:position] + reduced[position + 1 :]
        assert not (candidate and predicate(candidate))


# ----------------------------------------------------------------------
# End to end against real conformance failures
# ----------------------------------------------------------------------


def test_saboteur_failure_shrinks_to_the_trigger_prefix():
    """An illegal-state saboteur firing at ref N needs exactly N data
    references to reproduce — the shrinker should find precisely that."""
    spec = ConformanceSpec("dir1nb", saboteur_trigger=5, saboteur_mode="illegal-state")
    trace = mutation_trace(0)
    predicate = failure_predicate(spec)
    assert predicate(trace.records)
    minimized = shrink_trace(trace, predicate)
    assert len(minimized.records) == 5
    assert predicate(minimized.records)
    assert minimized.name == f"{trace.name}-min"
    assert str(len(trace.records)) in minimized.description


def test_failure_predicate_is_false_for_empty_and_passing_inputs():
    spec = ConformanceSpec("dir1nb")
    predicate = failure_predicate(spec)
    assert not predicate([])
    assert not predicate(mutation_trace(0).records)


def test_shrink_requires_a_failing_starting_point():
    predicate = failure_predicate(ConformanceSpec("dir1nb"))
    with pytest.raises(ValueError):
        shrink_records(mutation_trace(0).records, predicate)
