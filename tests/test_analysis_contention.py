"""The closed-queue bus contention model."""

import pytest

from repro.analysis.contention import BusContentionModel, contention_model
from repro.analysis.system import effective_processor_bound
from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import PAPER_PIPELINED


def model(z=90e-9, s=10e-9):
    return BusContentionModel("test", think_time=z, service_time=s)


def test_demand_and_saturation():
    m = model(z=90e-9, s=10e-9)
    assert m.demand == pytest.approx(0.1)
    assert m.saturation_processors == pytest.approx(10.0)


def test_one_processor_is_fully_effective():
    point = model().evaluate(1)
    assert point.effective_processors == pytest.approx(1.0)
    assert point.efficiency == pytest.approx(1.0)


def test_effective_processors_monotone_and_bounded():
    m = model()
    previous = 0.0
    for point in m.curve(60):
        assert point.effective_processors >= previous - 1e-9
        assert point.effective_processors <= point.processors + 1e-9
        assert point.effective_processors <= m.saturation_processors + 1e-9
        previous = point.effective_processors


def test_asymptote_approaches_the_linear_bound():
    m = model()
    deep = m.evaluate(400)
    assert deep.effective_processors == pytest.approx(
        m.saturation_processors, rel=0.01
    )
    assert deep.bus_utilization == pytest.approx(1.0, rel=0.01)


def test_contention_bites_before_the_linear_bound():
    """At half the saturation population the machine is already slower
    than the paper's optimistic straight line."""
    m = model()
    half = m.evaluate(5)
    assert half.effective_processors < 5.0
    assert half.effective_processors > 3.0


def test_zero_service_time_is_contention_free():
    m = model(s=0.0)
    point = m.evaluate(64)
    assert point.effective_processors == 64.0
    assert point.bus_utilization == 0.0


def test_zero_processors():
    point = model().evaluate(0)
    assert point.effective_processors == 0.0


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        BusContentionModel("s", think_time=-1.0, service_time=0.0)
    with pytest.raises(ValueError):
        model().evaluate(-1)


def test_model_from_simulation_matches_paper_bound(standard_small):
    """The model's saturation point equals §5's back-of-envelope bound."""
    simulator = Simulator()
    merged = merge_results([simulator.run(t, "dragon") for t in standard_small])
    m = contention_model(merged, PAPER_PIPELINED)
    simple = effective_processor_bound(
        "dragon", merged.bus_cycles_per_reference(PAPER_PIPELINED)
    )
    assert m.saturation_processors == pytest.approx(simple.max_processors, rel=1e-6)
    # And the MVA curve stays below that bound everywhere.
    for point in m.curve(40):
        assert point.effective_processors <= simple.max_processors + 1e-9


def test_bus_free_result():
    m = contention_model(
        SimulationResult(scheme="s", trace_name="t"), PAPER_PIPELINED
    )
    assert m.service_time == 0.0
    assert m.evaluate(16).effective_processors == 16.0


def test_validation_of_machine_parameters(standard_small):
    simulator = Simulator()
    result = simulator.run(standard_small[0], "dir0b")
    with pytest.raises(ValueError):
        contention_model(result, PAPER_PIPELINED, mips=0)
