"""Block address arithmetic."""

import pytest

from repro.memory.address import DEFAULT_BLOCK_BYTES, WORD_BYTES, BlockMapper


def test_paper_configuration():
    mapper = BlockMapper()
    assert mapper.block_bytes == DEFAULT_BLOCK_BYTES == 16
    assert mapper.words_per_block == 4
    assert WORD_BYTES == 4


def test_block_of_groups_by_16_bytes():
    mapper = BlockMapper()
    assert mapper.block_of(0) == 0
    assert mapper.block_of(15) == 0
    assert mapper.block_of(16) == 1
    assert mapper.block_of(0x100) == 16


def test_base_address_inverts_block_of():
    mapper = BlockMapper(block_bytes=64)
    for block in (0, 1, 7, 1000):
        assert mapper.block_of(mapper.base_address(block)) == block


def test_same_block():
    mapper = BlockMapper()
    assert mapper.same_block(0, 15)
    assert not mapper.same_block(15, 16)


def test_offset_bits():
    assert BlockMapper(block_bytes=16).offset_bits == 4
    assert BlockMapper(block_bytes=32).offset_bits == 5
    assert BlockMapper(block_bytes=1).offset_bits == 0


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        BlockMapper(block_bytes=24)
    with pytest.raises(ValueError):
        BlockMapper(block_bytes=0)


def test_rejects_negative_addresses():
    mapper = BlockMapper()
    with pytest.raises(ValueError):
        mapper.block_of(-1)
    with pytest.raises(ValueError):
        mapper.base_address(-1)
