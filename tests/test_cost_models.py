"""Bus timing (Table 1) and bus models (Table 2)."""

import pytest

from repro.cost.bus import (
    PAPER_NON_PIPELINED,
    PAPER_PIPELINED,
    BusModel,
    non_pipelined_bus,
    pipelined_bus,
)
from repro.cost.timing import PAPER_TIMING, BusTiming
from repro.protocols.events import (
    BusOp,
    OpKind,
    broadcast_invalidate,
    cache_access,
    dir_check,
    dir_check_overlapped,
    invalidate,
    mem_access,
    write_back,
    write_word,
)


def test_paper_timing_values():
    timing = PAPER_TIMING
    assert timing.send_address == 1
    assert timing.transfer_word == 1
    assert timing.invalidate == 1
    assert timing.wait_directory == 2
    assert timing.wait_memory == 2
    assert timing.wait_cache == 1
    assert timing.words_per_block == 4


def test_timing_rejects_negative_values():
    with pytest.raises(ValueError):
        BusTiming(send_address=-1)
    with pytest.raises(ValueError):
        BusTiming(words_per_block=0)


def test_pipelined_costs_match_table2():
    bus = PAPER_PIPELINED
    assert bus.mem_access == 5
    assert bus.cache_access == 5
    assert bus.write_back == 4
    assert bus.write_word == 1
    assert bus.dir_check == 1
    assert bus.invalidate == 1


def test_non_pipelined_costs_match_table2():
    bus = PAPER_NON_PIPELINED
    assert bus.mem_access == 7
    assert bus.cache_access == 6
    assert bus.write_back == 4
    assert bus.write_word == 2
    assert bus.dir_check == 3
    assert bus.invalidate == 1


def test_charge_per_op():
    bus = PAPER_PIPELINED
    assert bus.charge(mem_access()) == 5
    assert bus.charge(cache_access()) == 5
    assert bus.charge(write_back()) == 4
    assert bus.charge(write_word()) == 1
    assert bus.charge(dir_check()) == 1
    assert bus.charge(dir_check_overlapped()) == 0
    assert bus.charge(invalidate(3)) == 3
    assert bus.charge(broadcast_invalidate()) == 1


def test_overlapped_directory_check_is_free_on_both_buses():
    assert PAPER_PIPELINED.charge(dir_check_overlapped()) == 0
    assert PAPER_NON_PIPELINED.charge(dir_check_overlapped()) == 0


def test_broadcast_cost_parameterization():
    bus = pipelined_bus(broadcast_cost=8.0)
    assert bus.charge(broadcast_invalidate()) == 8.0
    rebuilt = PAPER_PIPELINED.with_broadcast_cost(16.0)
    assert rebuilt.charge(broadcast_invalidate()) == 16.0
    # The original is unchanged (frozen dataclass).
    assert PAPER_PIPELINED.charge(broadcast_invalidate()) == 1.0


def test_costs_scale_with_block_size():
    timing = BusTiming(words_per_block=8)
    bus = pipelined_bus(timing)
    assert bus.mem_access == 9  # 1 address + 8 words
    assert bus.write_back == 8  # address rides with the first word


def test_non_pipelined_memory_wait_holds_the_bus():
    timing = BusTiming(wait_memory=5)
    assert non_pipelined_bus(timing).mem_access == 10
    assert pipelined_bus(timing).mem_access == 5  # pipelined unaffected


def test_bus_model_validation():
    with pytest.raises(ValueError):
        BusModel(
            name="bad", mem_access=-1, cache_access=1, write_back=1,
            write_word=1, dir_check=1, invalidate=1,
        )
    with pytest.raises(ValueError):
        pipelined_bus(broadcast_cost=-1.0)


def test_invalidate_count_is_multiplicative():
    op = BusOp(OpKind.INVALIDATE, 7)
    assert PAPER_PIPELINED.charge(op) == 7


def test_table_rows_cover_all_categories():
    rows = dict(PAPER_PIPELINED.as_table_rows())
    assert len(rows) == 7
    assert rows["memory access"] == 5.0
