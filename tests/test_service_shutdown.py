"""Graceful-shutdown paths: SIGTERM mid-sweep, checkpoint, restart-resume.

The in-process halves of this story are covered in
``test_service_scheduler.py``; here a real ``repro serve`` process gets
a real SIGTERM (and SIGINT — same path) mid-sweep and a restarted
server must resume the job bit-for-bit (ISSUE satellite: shutdown test
coverage).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.simulator import Simulator
from repro.runner.checkpoint import result_to_json
from repro.service.client import ServiceClient
from repro.workloads.registry import make_trace

SCHEMES = ["dir1nb", "wti", "dir0b", "dragon"]
LENGTH = 8000
SEED = 9

pytestmark = [
    pytest.mark.service,
    pytest.mark.skipif(
        not hasattr(signal, "SIGTERM") or os.name == "nt",
        reason="POSIX signal semantics required",
    ),
]


def start_server(state_dir: Path) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", "1", "--state-dir", str(state_dir),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    line = process.stdout.readline()
    assert "listening on" in line, f"unexpected banner: {line!r}"
    url = line.strip().rsplit(" ", 1)[-1]
    return process, url


def wait_exit(process: subprocess.Popen, timeout: float = 60.0) -> int:
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10.0)
        pytest.fail("serve process did not exit after SIGTERM")


def direct_results() -> dict:
    trace = make_trace("pops", length=LENGTH, seed=SEED)
    simulator = Simulator()
    expected = {}
    for scheme in SCHEMES:
        result = simulator.run(trace, scheme, trace_name=trace.name)
        result.scheme = scheme
        expected[scheme] = {trace.name: result_to_json(result)}
    return expected


def test_sigterm_mid_sweep_checkpoints_and_restart_resumes(tmp_path):
    state = tmp_path / "state"
    process, url = start_server(state)
    try:
        client = ServiceClient(url, timeout=30.0)
        job = client.submit(
            {
                "schemes": SCHEMES,
                "traces": [{"workload": "pops", "length": LENGTH, "seed": SEED}],
            }
        )
        job_id = job["id"]

        # Follow the stream until the first cell lands — the sweep is
        # then provably mid-flight — and pull the plug.
        for event in client.stream_events(job_id):
            if event.get("type") == "cell":
                break
        process.send_signal(signal.SIGTERM)
        assert wait_exit(process) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    # The checkpoint manifest holds the completed cells; the job record
    # is parked as queued, not lost and not terminal.
    job_dir = state / "jobs" / job_id
    manifest = json.loads((job_dir / "manifest.json").read_text("utf-8"))
    completed = sum(len(per_trace) for per_trace in manifest["completed"].values())
    assert 1 <= completed < len(SCHEMES)
    persisted = json.loads((job_dir / "job.json").read_text("utf-8"))
    assert persisted["state"] == "queued"

    # A restarted server on the same state dir resumes the job to a
    # bit-for-bit identical result.
    process, url = start_server(state)
    try:
        client = ServiceClient(url, timeout=30.0)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            status = client.job(job_id)
            if status["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.2)
        assert status["state"] == "done"
        assert status["cells"]["checkpoint"] == completed
        assert status["cells"]["simulated"] == len(SCHEMES) - completed
        assert status["results"] == direct_results()
        process.send_signal(signal.SIGTERM)
        assert wait_exit(process) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)


def test_sigterm_with_empty_queue_exits_promptly(tmp_path):
    process, url = start_server(tmp_path / "state")
    try:
        client = ServiceClient(url, timeout=10.0)
        assert client.health()["status"] == "ok"
        process.send_signal(signal.SIGTERM)
        assert wait_exit(process, timeout=30.0) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)


def test_sigint_mid_sweep_takes_the_same_checkpoint_path(tmp_path):
    """^C is not an exception splat: SIGINT checkpoints exactly like
    SIGTERM — job parked as queued, partial manifest on disk, exit 0."""
    state = tmp_path / "state"
    process, url = start_server(state)
    try:
        client = ServiceClient(url, timeout=30.0)
        job = client.submit(
            {
                "schemes": SCHEMES,
                "traces": [{"workload": "pops", "length": LENGTH, "seed": SEED}],
            }
        )
        job_id = job["id"]
        for event in client.stream_events(job_id):
            if event.get("type") == "cell":
                break
        process.send_signal(signal.SIGINT)
        assert wait_exit(process) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    job_dir = state / "jobs" / job_id
    manifest = json.loads((job_dir / "manifest.json").read_text("utf-8"))
    completed = sum(len(per_trace) for per_trace in manifest["completed"].values())
    assert 1 <= completed < len(SCHEMES)
    persisted = json.loads((job_dir / "job.json").read_text("utf-8"))
    assert persisted["state"] == "queued"


def test_sigint_with_empty_queue_exits_promptly(tmp_path):
    process, url = start_server(tmp_path / "state")
    try:
        client = ServiceClient(url, timeout=10.0)
        assert client.health()["status"] == "ok"
        process.send_signal(signal.SIGINT)
        assert wait_exit(process, timeout=30.0) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
