"""Dir1NB: single-copy, no-broadcast directory protocol."""

from repro.memory.line import LineState
from repro.protocols.directory.dir1nb import Dir1NBProtocol
from repro.protocols.events import EventType, OpKind

from conftest import drive


def ops_of(result):
    return [(op.kind, op.count) for op in result.ops]


def test_first_reference_is_free():
    protocol = Dir1NBProtocol(4)
    (result,) = drive(protocol, [(0, "r", 1)])
    assert result.event is EventType.RM_FIRST_REF
    assert result.ops == ()


def test_read_hit_after_install():
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "r", 1)])
    assert results[1].event is EventType.RD_HIT
    assert not results[1].uses_bus


def test_block_migrates_on_remote_read():
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1)])
    assert results[1].event is EventType.RM_BLK_CLN
    assert (OpKind.INVALIDATE, 1) in ops_of(results[1])
    assert (OpKind.MEM_ACCESS, 1) in ops_of(results[1])
    # The block now lives only in cache 1.
    assert set(protocol.holders(1)) == {1}


def test_dirty_block_written_back_on_remote_read():
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "r", 1)])
    assert results[1].event is EventType.RM_BLK_DRTY
    kinds = ops_of(results[1])
    assert (OpKind.WRITE_BACK, 1) in kinds
    assert (OpKind.INVALIDATE, 1) in kinds
    # No separate memory access: the requester receives the data
    # during the write-back transfer (Section 4.3).
    assert (OpKind.MEM_ACCESS, 1) not in kinds
    assert protocol.holders(1) == {1: LineState.CLEAN}


def test_write_hit_on_clean_block_is_free():
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1)])
    assert results[1].event is EventType.WH_BLK_CLN
    assert results[1].ops == ()
    assert protocol.holders(1) == {0: LineState.DIRTY}


def test_write_hit_on_dirty_block_is_free():
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "w", 1), (0, "w", 1)])
    assert results[1].event is EventType.WH_BLK_DRTY
    assert results[1].ops == ()


def test_remote_write_to_clean_holder():
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "w", 1)])
    assert results[1].event is EventType.WM_BLK_CLN
    kinds = ops_of(results[1])
    assert (OpKind.INVALIDATE, 1) in kinds
    assert (OpKind.MEM_ACCESS, 1) in kinds
    assert protocol.holders(1) == {1: LineState.DIRTY}


def test_remote_write_to_dirty_holder():
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "w", 1)])
    assert results[1].event is EventType.WM_BLK_DRTY
    kinds = ops_of(results[1])
    assert (OpKind.WRITE_BACK, 1) in kinds
    assert (OpKind.INVALIDATE, 1) in kinds


def test_at_most_one_copy_ever(trace_tiny):
    protocol = Dir1NBProtocol(4)
    refs = [
        (0, "r", 5), (1, "r", 5), (2, "r", 5), (3, "w", 5),
        (0, "w", 5), (1, "r", 5),
    ]
    drive(protocol, refs)  # invariant checker enforces max_copies == 1
    assert len(protocol.holders(5)) == 1


def test_lock_bouncing_pattern_misses_every_alternation():
    """Two spinners alternately reading one block miss every time."""
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "r", 9)] + [(1, "r", 9), (0, "r", 9)] * 5)
    alternating = results[1:]
    assert all(result.event is EventType.RM_BLK_CLN for result in alternating)


def test_directory_never_costs_unoverlapped_cycles():
    protocol = Dir1NBProtocol(4)
    results = drive(
        protocol,
        [(0, "r", 1), (1, "w", 1), (0, "r", 1), (1, "r", 1), (0, "w", 1)],
    )
    for result in results:
        for op in result.ops:
            assert op.kind is not OpKind.DIR_CHECK


def test_dirty_bit_survives_local_write_then_remote_read():
    protocol = Dir1NBProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1), (1, "r", 1)])
    # The local write was silent, but the remote read must still see a
    # dirty block and force a write-back.
    assert results[2].event is EventType.RM_BLK_DRTY


def test_directory_storage_is_single_pointer():
    protocol = Dir1NBProtocol(64)
    # one 6-bit pointer + dirty bit
    assert protocol.directory_bits_per_block() == 7
