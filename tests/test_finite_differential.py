"""Finite↔infinite differential harness (the capacity extension's proof).

Two guarantees make finite capacity a trustworthy sweep axis:

* **ample capacity is invisible** — for every registered protocol, a
  finite cache whose capacity covers the trace's whole block footprint
  (and whose sets never overflow) produces a result digest-identical to
  the infinite-cache run, on every execution backend (serial record
  path, columnar/kernel fast path, pooled multiprocess sweep, and
  chunk-streamed ``.ctrc``);
* **scarce capacity only adds cost** — shrinking a nested
  fully-associative geometry never lowers bus cycles per reference, and
  every finite cost is bounded below by the infinite (pure coherence)
  cost.
"""

from __future__ import annotations

import pytest

from repro.core.simulator import Simulator
from repro.cost.bus import pipelined_bus
from repro.memory.geometry import CacheGeometry
from repro.protocols.registry import available_protocols
from repro.runner.checkpoint import result_to_json
from repro.trace.columnar import ColumnarTrace
from repro.workloads.registry import make_trace

ALL_SCHEMES = available_protocols()
TRACE_LENGTH = 4000


@pytest.fixture(scope="module")
def trace():
    return make_trace("pops", length=TRACE_LENGTH, seed=5)


@pytest.fixture(scope="module")
def columnar(trace):
    return ColumnarTrace.from_trace(trace)


@pytest.fixture(scope="module")
def ample(trace):
    """A fully-associative geometry covering the whole block footprint.

    One set whose associativity exceeds the distinct-block count: LRU
    can never evict, so the finite machinery must be a perfect no-op.
    """
    simulator = Simulator()
    shift = simulator.block_mapper.offset_bits
    footprint = len({record.address >> shift for record in trace.records})
    return CacheGeometry(lines=footprint + 1, assoc=footprint + 1)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_ample_capacity_is_digest_identical(trace, ample, scheme):
    """Capacity >= footprint: finite digest == infinite digest."""
    simulator = Simulator()
    infinite = simulator.run(trace, scheme)
    finite = simulator.run(trace, scheme, geometry=ample.canonical())
    assert result_to_json(finite) == result_to_json(infinite)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_ample_capacity_identical_on_columnar_backend(columnar, ample, scheme):
    """The columnar path (kernels where they exist) agrees too."""
    simulator = Simulator()
    infinite = simulator.run(columnar, scheme)
    finite = simulator.run(columnar, scheme, geometry=ample.canonical())
    assert result_to_json(finite) == result_to_json(infinite)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_ample_capacity_identical_on_streaming_backend(
    trace, ample, scheme, tmp_path
):
    """Chunk-streamed .ctrc simulation preserves the identity."""
    from repro.store import ChunkedTrace, pack_trace

    simulator = Simulator()
    path = tmp_path / "finite.ctrc"
    pack_trace(trace, path, chunk_records=700)
    with ChunkedTrace(path) as chunked:
        finite = simulator.run(chunked, scheme, geometry=ample.canonical())
    infinite = simulator.run(trace, scheme)
    assert result_to_json(finite) == result_to_json(infinite)


def test_ample_capacity_identical_on_pooled_backend(trace, ample):
    """The multiprocess sweep round-trips finite cells bit-identically."""
    from repro.runner.resilient import ResilientExperiment

    suffix = f"@{ample.canonical()}"
    schemes = list(ALL_SCHEMES) + [f"{name}{suffix}" for name in ALL_SCHEMES]
    outcome = ResilientExperiment(traces=[trace], schemes=schemes, jobs=2).run()
    assert not outcome.all_failures()
    for name in ALL_SCHEMES:
        infinite = outcome.results[name][trace.name]
        finite = outcome.results[f"{name}{suffix}"][trace.name]
        finite_json = result_to_json(finite)
        infinite_json = result_to_json(infinite)
        # The pooled cells carry their per-cell scheme keys; identity is
        # about the measurements, not the label.
        finite_json.pop("scheme", None)
        infinite_json.pop("scheme", None)
        assert finite_json == infinite_json


@pytest.mark.parametrize("scheme", ("dir0b", "dir1nb", "wti", "dragon"))
def test_small_capacity_backends_agree(trace, columnar, scheme, tmp_path):
    """At an evicting geometry, every backend returns the same result."""
    from repro.store import ChunkedTrace, pack_trace

    simulator = Simulator()
    record = simulator.run(trace, scheme, geometry="64x2")
    fast = simulator.run(columnar, scheme, geometry="64x2")
    path = tmp_path / "small.ctrc"
    pack_trace(trace, path, chunk_records=700)
    with ChunkedTrace(path) as chunked:
        streamed = simulator.run(chunked, scheme, geometry="64x2")
    assert result_to_json(fast) == result_to_json(record)
    assert result_to_json(streamed) == result_to_json(record)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_nested_capacity_cost_is_monotone(trace, ample, scheme):
    """Nested fully-associative capacities: cost never rises with size.

    num_sets=1 keeps the geometries strictly nested, so LRU's inclusion
    property applies: every hit at capacity C is a hit at 2C, and every
    extra finite cost comes from replacement misses and write-backs.
    """
    bus = pipelined_bus()
    simulator = Simulator()
    costs = []
    for assoc in (8, 32, 128):
        geometry = CacheGeometry(lines=assoc, assoc=assoc)
        result = simulator.run(trace, scheme, geometry=geometry.canonical())
        costs.append(result.bus_cycles_per_reference(bus))
    infinite = simulator.run(trace, scheme).bus_cycles_per_reference(bus)
    assert costs[0] >= costs[1] >= costs[2] >= infinite


@pytest.mark.parametrize("scheme", ("dir0b", "dir1nb"))
def test_directory_capacity_recalls_add_cost(trace, scheme):
    """A finite directory can only add recall traffic, never remove it."""
    bus = pipelined_bus()
    simulator = Simulator()
    unbounded = simulator.run(trace, scheme, geometry="256x2")
    bounded = simulator.run(trace, scheme, geometry="256x2@dir:32")
    assert bounded.directory_recalls > 0
    assert bounded.bus_cycles_per_reference(bus) >= unbounded.bus_cycles_per_reference(bus)
