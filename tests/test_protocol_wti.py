"""WTI: write-through with invalidate."""

from repro.memory.line import LineState
from repro.protocols.snoopy.wti import WTIProtocol
from repro.protocols.events import EventType, OpKind

from conftest import drive


def kinds_of(result):
    return [op.kind for op in result.ops]


def test_every_write_goes_to_memory():
    protocol = WTIProtocol(4)
    results = drive(protocol, [(0, "w", 1), (0, "w", 1), (0, "w", 1)])
    for result in results:
        assert OpKind.WRITE_WORD in kinds_of(result)


def test_first_reference_write_costs_only_the_write_through():
    protocol = WTIProtocol(4)
    (result,) = drive(protocol, [(0, "w", 1)])
    assert result.event is EventType.WM_FIRST_REF
    assert kinds_of(result) == [OpKind.WRITE_WORD]


def test_no_dirty_lines_ever():
    protocol = WTIProtocol(4)
    drive(protocol, [(0, "w", 1), (0, "r", 1), (1, "r", 1), (1, "w", 1)])
    for block in protocol.tracked_blocks():
        for state in protocol.holders(block).values():
            assert state is LineState.CLEAN


def test_write_invalidates_other_copies_for_free():
    protocol = WTIProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1), (0, "w", 1)])
    final = results[3]
    assert kinds_of(final) == [OpKind.WRITE_WORD]
    assert final.clean_write_sharers == 2
    assert set(protocol.holders(1)) == {0}


def test_read_miss_always_served_by_memory():
    protocol = WTIProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "r", 1)])
    final = results[1]
    assert final.event is EventType.RM_BLK_CLN
    assert kinds_of(final) == [OpKind.MEM_ACCESS]


def test_invalidated_reader_remisses():
    protocol = WTIProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "w", 1), (0, "r", 1)])
    assert results[2].event is EventType.RM_BLK_CLN


def test_write_miss_allocates():
    protocol = WTIProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "w", 1), (1, "r", 1)])
    assert results[1].event is EventType.WM_BLK_CLN
    assert OpKind.MEM_ACCESS in kinds_of(results[1])
    # The allocating write left a valid copy: the next read hits.
    assert results[2].event is EventType.RD_HIT


def test_hit_miss_counts_match_dir0b_state_model(standard_small):
    """The paper: WTI and Dir0B share the data state-change model."""
    from repro.core.simulator import Simulator

    simulator = Simulator()
    trace = standard_small[0]
    wti = simulator.run(trace, "wti").frequencies()
    d0b = simulator.run(trace, "dir0b").frequencies()

    def read_misses(freq):
        return freq.count(EventType.RM_BLK_CLN) + freq.count(EventType.RM_BLK_DRTY)

    def write_misses(freq):
        return freq.count(EventType.WM_BLK_CLN) + freq.count(EventType.WM_BLK_DRTY)

    assert read_misses(wti) == read_misses(d0b)
    assert write_misses(wti) == write_misses(d0b)
    assert wti.count(EventType.RD_HIT) == d0b.count(EventType.RD_HIT)
