"""Edge paths across subsystems that the mainline tests don't reach."""

import pytest

from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED
from repro.protocols.events import EventType, OpKind
from repro.protocols.registry import make_protocol

from conftest import drive, tiny_trace


def op_units(result, kind):
    return sum(op.count for op in result.ops if op.kind is kind)


class TestDirectoryProtocolEdges:
    def test_dir0b_write_miss_on_foreign_clean_one_broadcasts(self):
        """CLEAN_ONE held by someone else: the two-bit directory has no
        pointer, so removing the lone copy still needs a broadcast."""
        protocol = make_protocol("dir0b", 4)
        results = drive(protocol, [(0, "r", 1), (1, "w", 1)])
        assert results[1].event is EventType.WM_BLK_CLN
        assert op_units(results[1], OpKind.BROADCAST_INVALIDATE) == 1

    def test_dirib_write_miss_after_overflow_broadcasts(self):
        protocol = make_protocol("dir1b", 4)
        results = drive(
            protocol,
            [(0, "r", 1), (1, "r", 1), (2, "r", 1), (3, "w", 1)],
        )
        final = results[3]
        assert final.event is EventType.WM_BLK_CLN
        assert op_units(final, OpKind.BROADCAST_INVALIDATE) == 1
        # Precision is restored afterwards: the next write-hit by the
        # owner needs no invalidation traffic at all.
        next_write = drive(protocol, [(3, "w", 1)], check=False)[0]
        assert next_write.event is EventType.WH_BLK_DRTY

    def test_dirinb_multiple_sequential_capacity_evictions(self):
        """Five readers through a 2-pointer directory: each new reader
        displaces exactly one existing sharer."""
        protocol = make_protocol("dirinb", 6, num_pointers=2)
        results = drive(
            protocol,
            [(cache, "r", 1) for cache in range(6)],
        )
        evictions = sum(result.pointer_evictions for result in results)
        assert evictions == 4  # readers 3..6 each displaced one
        assert len(protocol.holders(1)) == 2

    def test_tang_organization_full_run(self, pops_small):
        """Tang's duplicate-tag organization is behaviourally identical
        to the full map on a real trace."""
        from repro.core.simulator import Simulator

        simulator = Simulator()
        tang = simulator.run(pops_small, "dirnnb", organization="tang")
        full = simulator.run(pops_small, "dirnnb")
        assert tang.event_counts == full.event_counts
        assert tang.bus_cycles_per_reference(
            PAPER_PIPELINED
        ) == pytest.approx(full.bus_cycles_per_reference(PAPER_PIPELINED))

    def test_yenfu_single_bit_restored_after_invalidation(self):
        protocol = make_protocol("yenfu", 4)
        drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)], check=False)
        # Cache 0 invalidated cache 1: it is single again.
        assert protocol.single_bit(0, 1)


class TestSnoopyEdges:
    def test_dragon_write_miss_with_multiple_clean_holders(self):
        protocol = make_protocol("dragon", 4)
        results = drive(
            protocol, [(0, "r", 1), (1, "r", 1), (2, "w", 1)]
        )
        final = results[2]
        assert final.event is EventType.WM_BLK_CLN
        # Fetch plus the distributed update word.
        assert op_units(final, OpKind.MEM_ACCESS) == 1
        assert op_units(final, OpKind.WRITE_WORD) == 1
        assert len(protocol.holders(1)) == 3

    def test_write_once_dirty_write_miss(self):
        protocol = make_protocol("write-once", 4)
        results = drive(
            protocol, [(0, "r", 1), (0, "w", 1), (0, "w", 1), (1, "w", 1)]
        )
        final = results[3]
        assert final.event is EventType.WM_BLK_DRTY
        assert op_units(final, OpKind.WRITE_BACK) == 1
        assert set(protocol.holders(1)) == {1}

    def test_illinois_write_miss_clean_supply(self):
        protocol = make_protocol("illinois", 4)
        results = drive(protocol, [(0, "r", 1), (1, "w", 1)])
        final = results[1]
        assert final.event is EventType.WM_BLK_CLN
        # The clean holder supplies the block before being invalidated.
        assert op_units(final, OpKind.CACHE_ACCESS) == 1


class TestReportingEdges:
    def test_conclusions_artifact_unit(self):
        from repro.report.experiments import PaperExperiments

        artifact = PaperExperiments(length=6_000).conclusions()
        assert artifact.artifact_id == "conclusions"
        assert 0 < artifact.data["competitiveness"] < 5
        assert "re-derived" in artifact.text

    def test_stacked_chart_empty(self):
        from repro.report.figures import stacked_fraction_chart

        assert stacked_fraction_chart({}, title="t") == "t"

    def test_bar_chart_zero_values(self):
        from repro.report.figures import bar_chart

        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in text


class TestCliEdges:
    def test_simulate_with_cpu_sharer_key(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate", "--workload", "pero", "--length", "2000",
                "--schemes", "dir0b", "--sharer-key", "cpu",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0 and "dir0b" in out

    def test_artifact_all_prints_everything(self, capsys):
        from repro.cli import main

        code = main(["artifact", "all", "--length", "2000"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 4" in out and "Figure 5" in out and "re-derived" in out


class TestOracleEdges:
    def test_oracle_with_adaptive_protocol(self):
        """Self-invalidation must never cause a stale read."""
        from repro.core.oracle import CoherentOracle

        oracle = CoherentOracle(make_protocol("adaptive", 4, update_limit=1))
        seen = set()
        pattern = [
            (0, "r", 1), (1, "r", 1), (0, "w", 1), (1, "r", 1),
            (0, "w", 1), (0, "w", 1), (1, "r", 1),
        ]
        for cache, op, block in pattern:
            first = block not in seen
            seen.add(block)
            if op == "r":
                oracle.on_read(cache, block, first)
            else:
                oracle.on_write(cache, block, first)

    def test_simulation_context_reuse(self, trace_tiny):
        from repro.core.simulator import SimulationContext, Simulator

        simulator = Simulator()
        protocol = make_protocol("dir0b", 2)
        context = SimulationContext()
        first = simulator.run(
            trace_tiny.head(4), protocol, context=context, trace_name="a"
        )
        second = simulator.run(
            trace_tiny, protocol, context=context, trace_name="b",
        )
        # Blocks seen in the first segment are not first-refs in the second.
        assert second.event_counts[EventType.RM_FIRST_REF] < simulate(
            trace_tiny, "dir0b"
        ).event_counts[EventType.RM_FIRST_REF] + 1
