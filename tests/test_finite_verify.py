"""Finite-capacity conformance: geometry specs, eviction audit, mutants.

The finite↔infinite differential harness proves the finite machine
*matches* the infinite one where it must; this suite proves the
*verification gate itself* understands finite capacity — geometry-keyed
conformance cells, the oracle's write-back audit, finite corpus replay,
and the eviction-saboteur mutation campaign that demonstrates the gate
kills replacement-logic bugs.
"""

import pytest

from repro.core.oracle import CoherentOracle
from repro.core.simulator import Simulator
from repro.errors import ProtocolError
from repro.memory.cache import FiniteCache
from repro.protocols.registry import make_protocol
from repro.runner.faults import SaboteurProtocol
from repro.verify import (
    ConformanceChecker,
    ConformanceSpec,
    Corpus,
    TraceFuzzer,
    run_eviction_mutation_testing,
)
from repro.verify.mutation import (
    DEFAULT_EVICTION_GEOMETRY,
    DEFAULT_TRIGGERS,
    EVICTION_MODES,
    mutation_trace,
)

GEOMETRY = DEFAULT_EVICTION_GEOMETRY  # 2 sets x 2 ways


# ----------------------------------------------------------------------
# Geometry-aware conformance specs
# ----------------------------------------------------------------------


def test_spec_geometry_appears_in_scheme_key():
    assert ConformanceSpec("dir1nb").scheme_key == "dir1nb"
    assert ConformanceSpec("dir1nb", geometry="4x2").scheme_key == "dir1nb@4x2"
    mutant = ConformanceSpec(
        "dir1nb", saboteur_trigger=3, saboteur_mode="lru-mru", geometry="4x2"
    )
    assert mutant.scheme_key == "dir1nb@4x2+lru-mru@3"


def test_finite_spec_builds_finite_caches_and_engages_the_audit():
    oracle = ConformanceSpec("dir1nb", geometry="4x2")(4)
    assert isinstance(oracle, CoherentOracle)
    caches = oracle.protocol._caches
    assert all(isinstance(cache, FiniteCache) for cache in caches)
    assert all(cache.capacity_blocks == 4 for cache in caches)
    assert oracle._audit_evictions

    infinite = ConformanceSpec("dir1nb")(4)
    assert not any(isinstance(c, FiniteCache) for c in infinite.protocol._caches)
    assert not infinite._audit_evictions


def test_specs_for_crosses_geometries_with_schemes():
    checker = ConformanceChecker(schemes=["dir0b", "dragon"])
    specs = checker.specs_for((None, GEOMETRY))
    assert [spec.scheme_key for spec in specs] == [
        "dir0b",
        "dragon",
        f"dir0b@{GEOMETRY}",
        f"dragon@{GEOMETRY}",
    ]


def test_mixed_infinite_and_finite_cells_pass_one_differential_sweep():
    """Replacement traffic must not perturb the trace-property totals."""
    checker = ConformanceChecker(schemes=["dir0b", "dir1nb", "wti", "dragon"])
    traces = list(TraceFuzzer(seed=7, min_refs=30, max_refs=40).traces(2))
    report = checker.check(traces, specs=checker.specs_for((None, GEOMETRY)))
    assert report.cells == 8 * len(traces)
    assert report.clean, [str(f) for f in report.findings]


# ----------------------------------------------------------------------
# The oracle's eviction audit
# ----------------------------------------------------------------------


def test_clean_finite_runs_observe_writebacks_without_false_positives():
    trace = mutation_trace(0)
    oracle = ConformanceSpec("dir1nb", geometry=GEOMETRY)(len(trace.pids))
    Simulator(check_invariants=1).run(trace, oracle)
    # The contended 4x2 geometry forces dirty replacements; every one
    # must have been covered by an observed write-back op.
    assert oracle.writebacks_observed > 0


def test_dropped_writeback_is_caught_by_the_eviction_audit():
    trace = mutation_trace(0)
    spec = ConformanceSpec(
        "dir1nb", saboteur_trigger=3, saboteur_mode="drop-writeback", geometry=GEOMETRY
    )
    with pytest.raises(ProtocolError, match="without a write-back"):
        Simulator(check_invariants=1).run(trace, spec(len(trace.pids)))


def test_audit_stays_dormant_under_infinite_caches():
    """Infinite runs never evict, so the audit must not tax them."""
    protocol = make_protocol("dir1nb", 4)
    oracle = CoherentOracle(protocol)
    assert not oracle._audit_evictions
    oracle.on_read(0, 5, True)
    oracle.on_write(1, 5, False)
    assert oracle.writebacks_observed == 0


# ----------------------------------------------------------------------
# Eviction saboteurs
# ----------------------------------------------------------------------


def test_lru_mru_saboteur_reverses_finite_set_order():
    protocol = make_protocol("dir1nb", 2, geometry="4x2")
    saboteur = SaboteurProtocol(protocol, trigger_after=1, mode="lru-mru")
    saboteur.on_read(0, 0, True)
    saboteur.on_read(0, 2, False)  # same set as block 0; now full
    line_set = protocol._caches[0]._sets[0]
    # Reversed recency: the most recent fill (block 2) sits in the
    # victim position.
    assert list(line_set) == [2, 0]


def test_stale_directory_saboteur_leaves_the_directory_stale():
    protocol = make_protocol("dirnnb", 2, geometry="4x2")
    saboteur = SaboteurProtocol(protocol, trigger_after=2, mode="stale-directory")
    saboteur.on_read(0, 0, True)
    saboteur.on_read(1, 1, False)  # trigger: block 0 is evicted silently
    assert saboteur.fired
    assert 0 not in protocol.holders(0)
    assert 0 in protocol.directory.entry(0).sharers


# ----------------------------------------------------------------------
# The eviction mutation campaign
# ----------------------------------------------------------------------


def test_eviction_mutants_are_killed_for_directory_and_snoopy_schemes():
    report = run_eviction_mutation_testing(schemes=["dir1nb", "dragon", "wti"])
    assert report.survivors == [], report.summary()
    assert report.kill_rate == 1.0
    # wti is write-through: its drop-writeback cells are vacuous and
    # skipped, not counted as survivors.
    by_scheme_mode = {(m.scheme, m.mode) for m in report.mutants}
    assert ("wti", "drop-writeback") not in by_scheme_mode
    assert ("dir1nb", "drop-writeback") in by_scheme_mode
    expected = len(EVICTION_MODES) * len(DEFAULT_TRIGGERS) * 3 - len(DEFAULT_TRIGGERS)
    assert report.total == expected


@pytest.mark.fuzz
def test_every_eviction_mutant_of_every_protocol_is_killed():
    """The acceptance bar: 100% kill rate across the whole registry."""
    report = run_eviction_mutation_testing()
    assert report.survivors == [], report.summary()
    assert report.kill_rate == 1.0


# ----------------------------------------------------------------------
# Finite golden-corpus replay
# ----------------------------------------------------------------------


def test_corpus_replay_groups_finite_entries_by_geometry(tmp_path):
    fuzzer = TraceFuzzer(seed=3, min_refs=12, max_refs=16)
    corpus = Corpus(tmp_path)
    corpus.save(fuzzer.trace(0), {"kind": "seed"})
    corpus.save(fuzzer.trace(1), {"kind": "seed", "geometry": GEOMETRY})
    checker = ConformanceChecker(schemes=["dir0b", "dir1nb"])
    report = corpus.replay(checker)
    assert report.cells == 4
    assert f"dir0b@{GEOMETRY}" in report.schemes
    assert "dir0b" in report.schemes
    assert report.clean, [str(f) for f in report.findings]


def test_committed_corpus_contains_finite_geometry_seeds():
    corpus = Corpus("tests/corpus")
    finite = [e for e in corpus.entries() if e.meta.get("geometry")]
    assert len(finite) >= 4
    assert all(e.meta["geometry"] == GEOMETRY for e in finite)
