"""Directory organizations: full map, Tang, two-bit, limited pointer, coarse."""

import pytest

from repro.errors import ProtocolError
from repro.memory.directory import (
    CoarseVectorDirectory,
    FullMapDirectory,
    LimitedPointerDirectory,
    PointerEvictionPolicy,
    TangDirectory,
    TwoBitDirectory,
    TwoBitState,
    directory_bits_per_block,
)


class TestFullMap:
    def test_empty_entry(self):
        directory = FullMapDirectory(4)
        entry = directory.entry(7)
        assert not entry.cached and not entry.dirty
        assert entry.sharers == frozenset()

    def test_clean_copies_accumulate(self):
        directory = FullMapDirectory(4)
        directory.note_clean_copy(1, 0)
        directory.note_clean_copy(1, 2)
        entry = directory.entry(1)
        assert entry.sharers == {0, 2}
        assert not entry.dirty

    def test_dirty_owner_is_exclusive(self):
        directory = FullMapDirectory(4)
        directory.note_clean_copy(1, 0)
        directory.note_clean_copy(1, 2)
        directory.note_dirty_owner(1, 3)
        entry = directory.entry(1)
        assert entry.dirty and entry.owner == 3
        assert entry.sharers == {3}

    def test_writeback_keep_clean(self):
        directory = FullMapDirectory(4)
        directory.note_dirty_owner(1, 2)
        directory.note_writeback(1, 2, keep_clean=True)
        entry = directory.entry(1)
        assert not entry.dirty
        assert entry.sharers == {2}

    def test_writeback_drop_copy(self):
        directory = FullMapDirectory(4)
        directory.note_dirty_owner(1, 2)
        directory.note_writeback(1, 2, keep_clean=False)
        assert not directory.entry(1).cached

    def test_writeback_from_non_owner_rejected(self):
        directory = FullMapDirectory(4)
        directory.note_clean_copy(1, 2)
        with pytest.raises(ProtocolError):
            directory.note_writeback(1, 2, keep_clean=True)

    def test_invalidation_plan_excludes_requester(self):
        directory = FullMapDirectory(4)
        for cache in (0, 1, 3):
            directory.note_clean_copy(5, cache)
        plan = directory.plan_invalidation(5, requester=1)
        assert plan.targets == (0, 3)
        assert not plan.broadcast
        assert plan.message_count == 2
        assert plan.wasted_targets == ()

    def test_note_all_invalidated_with_keep(self):
        directory = FullMapDirectory(4)
        for cache in (0, 1, 2):
            directory.note_clean_copy(5, cache)
        directory.note_all_invalidated(5, keep=1)
        assert directory.entry(5).sharers == {1}

    def test_bits_per_block(self):
        assert FullMapDirectory(4).bits_per_block() == 5
        assert FullMapDirectory(64).bits_per_block() == 65

    def test_capacity_is_unbounded(self):
        directory = FullMapDirectory(4)
        assert directory.check_capacity(0, 3)
        with pytest.raises(ProtocolError):
            directory.overflow_victim(0, 3)


class TestTang:
    def test_is_information_equivalent_to_full_map(self):
        directory = TangDirectory(4)
        directory.note_clean_copy(1, 0)
        directory.note_clean_copy(1, 3)
        assert directory.entry(1).sharers == {0, 3}
        assert directory.lookup_is_search

    def test_total_storage_scales_with_caches(self):
        directory = TangDirectory(4, tag_bits=20, lines_per_cache=1024)
        assert directory.total_storage_bits() == 4 * 1024 * 21

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TangDirectory(4, tag_bits=0)


class TestTwoBit:
    def test_state_progression(self):
        directory = TwoBitDirectory(4)
        assert directory.state_of(9) is TwoBitState.NOT_CACHED
        directory.note_clean_copy(9, 0)
        assert directory.state_of(9) is TwoBitState.CLEAN_ONE
        directory.note_clean_copy(9, 1)
        assert directory.state_of(9) is TwoBitState.CLEAN_MANY
        directory.note_dirty_owner(9, 1)
        assert directory.state_of(9) is TwoBitState.DIRTY_ONE

    def test_writeback_transitions(self):
        directory = TwoBitDirectory(4)
        directory.note_dirty_owner(9, 1)
        directory.note_writeback(9, 1, keep_clean=True)
        assert directory.state_of(9) is TwoBitState.CLEAN_ONE
        directory.note_dirty_owner(9, 1)
        directory.note_writeback(9, 1, keep_clean=False)
        assert directory.state_of(9) is TwoBitState.NOT_CACHED

    def test_writeback_without_dirty_rejected(self):
        directory = TwoBitDirectory(4)
        with pytest.raises(ProtocolError):
            directory.note_writeback(9, 1, keep_clean=True)

    def test_write_hit_plan_clean_one_skips_broadcast(self):
        directory = TwoBitDirectory(4)
        directory.note_clean_copy(9, 2)
        plan = directory.plan_write_hit(9, writer=2)
        assert plan.targets == () and not plan.broadcast

    def test_write_hit_plan_clean_many_broadcasts(self):
        directory = TwoBitDirectory(4)
        directory.note_clean_copy(9, 2)
        directory.note_clean_copy(9, 3)
        plan = directory.plan_write_hit(9, writer=2)
        assert plan.broadcast

    def test_invalidation_plan_broadcasts_when_cached(self):
        directory = TwoBitDirectory(4)
        directory.note_clean_copy(9, 2)
        assert directory.plan_invalidation(9, requester=0).broadcast
        directory.note_all_invalidated(9)
        plan = directory.plan_invalidation(9, requester=0)
        assert plan.targets == () and not plan.broadcast

    def test_single_holder_invalidation_resets(self):
        directory = TwoBitDirectory(4)
        directory.note_clean_copy(9, 2)
        directory.note_invalidated(9, 2)
        assert directory.state_of(9) is TwoBitState.NOT_CACHED

    def test_bits_per_block_is_constant(self):
        assert TwoBitDirectory(4).bits_per_block() == 2
        assert TwoBitDirectory(4096).bits_per_block() == 2


class TestLimitedPointer:
    def test_pointers_accumulate_up_to_i(self):
        directory = LimitedPointerDirectory(8, num_pointers=2, broadcast_bit=True)
        directory.note_clean_copy(3, 0)
        directory.note_clean_copy(3, 5)
        entry = directory.entry(3)
        assert entry.sharers == {0, 5}

    def test_broadcast_bit_set_on_overflow(self):
        directory = LimitedPointerDirectory(8, num_pointers=1, broadcast_bit=True)
        directory.note_clean_copy(3, 0)
        directory.note_clean_copy(3, 5)
        entry = directory.entry(3)
        assert entry.sharers is None  # precision lost
        assert directory.plan_invalidation(3, requester=5).broadcast

    def test_no_broadcast_overflow_is_an_error(self):
        directory = LimitedPointerDirectory(8, num_pointers=1, broadcast_bit=False)
        directory.note_clean_copy(3, 0)
        assert not directory.check_capacity(3, 5)
        with pytest.raises(ProtocolError):
            directory.note_clean_copy(3, 5)

    def test_overflow_victim_policies(self):
        for policy, expected in [
            (PointerEvictionPolicy.FIFO, 4),
            (PointerEvictionPolicy.LIFO, 2),
            (PointerEvictionPolicy.LOWEST_INDEX, 2),
        ]:
            directory = LimitedPointerDirectory(
                8, num_pointers=2, broadcast_bit=False, eviction_policy=policy
            )
            directory.note_clean_copy(3, 4)
            directory.note_clean_copy(3, 2)
            assert directory.overflow_victim(3, 6) == expected

    def test_existing_sharer_never_overflows(self):
        directory = LimitedPointerDirectory(8, num_pointers=1, broadcast_bit=False)
        directory.note_clean_copy(3, 0)
        assert directory.check_capacity(3, 0)
        directory.note_clean_copy(3, 0)  # idempotent

    def test_dirty_owner_resets_broadcast_bit(self):
        directory = LimitedPointerDirectory(8, num_pointers=1, broadcast_bit=True)
        directory.note_clean_copy(3, 0)
        directory.note_clean_copy(3, 5)  # overflow -> broadcast
        directory.note_dirty_owner(3, 5)
        entry = directory.entry(3)
        assert entry.sharers == {5} and entry.dirty

    def test_sequential_plan_under_capacity(self):
        directory = LimitedPointerDirectory(8, num_pointers=2, broadcast_bit=True)
        directory.note_clean_copy(3, 0)
        directory.note_clean_copy(3, 5)
        plan = directory.plan_invalidation(3, requester=0)
        assert plan.targets == (5,) and not plan.broadcast

    def test_bits_per_block(self):
        # i pointers of log2(n) bits + dirty (+ broadcast)
        assert LimitedPointerDirectory(64, 1, broadcast_bit=True).bits_per_block() == 8
        assert LimitedPointerDirectory(64, 1, broadcast_bit=False).bits_per_block() == 7
        assert LimitedPointerDirectory(64, 2, broadcast_bit=True).bits_per_block() == 14

    def test_rejects_bad_pointer_count(self):
        with pytest.raises(ValueError):
            LimitedPointerDirectory(8, num_pointers=0, broadcast_bit=True)


class TestCoarseVector:
    def test_tracks_superset(self):
        directory = CoarseVectorDirectory(8)
        directory.note_clean_copy(3, 1)
        directory.note_clean_copy(3, 2)
        plan = directory.plan_invalidation(3, requester=7)
        assert set(plan.targets) >= {1, 2}
        assert not plan.broadcast

    def test_wasted_targets_reported(self):
        directory = CoarseVectorDirectory(8)
        directory.note_clean_copy(3, 0)
        directory.note_clean_copy(3, 3)  # 0b000 + 0b011 -> denotes {0,1,2,3}
        plan = directory.plan_invalidation(3, requester=7)
        assert set(plan.targets) == {0, 1, 2, 3}
        assert set(plan.wasted_targets) == {1, 2}

    def test_dirty_owner_restores_precision(self):
        directory = CoarseVectorDirectory(8)
        directory.note_clean_copy(3, 0)
        directory.note_clean_copy(3, 7)
        directory.note_dirty_owner(3, 7)
        entry = directory.entry(3)
        assert entry.sharers == {7} and entry.dirty

    def test_all_invalidated_with_keep(self):
        directory = CoarseVectorDirectory(8)
        directory.note_clean_copy(3, 0)
        directory.note_clean_copy(3, 7)
        directory.note_all_invalidated(3, keep=7)
        assert set(directory.code_of(3).decode()) == {7}

    def test_bits_per_block(self):
        assert CoarseVectorDirectory(8).bits_per_block() == 7  # 2*3 + dirty
        assert CoarseVectorDirectory(64).bits_per_block() == 13


def test_directory_bits_helper():
    assert directory_bits_per_block("full-map", 16) == 17
    assert directory_bits_per_block("two-bit", 16) == 2
    assert directory_bits_per_block("limited-b", 16, 2) == 10
    assert directory_bits_per_block("limited-nb", 16, 2) == 9
    assert directory_bits_per_block("coarse-vector", 16) == 9
    with pytest.raises(ValueError):
        directory_bits_per_block("bogus", 16)
