"""Berkeley Ownership as the paper models it: Dir0B with free directory."""

from repro.protocols.snoopy.berkeley import BerkeleyProtocol
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols.events import OpKind

from conftest import drive

REFS = [
    (0, "r", 1), (1, "r", 1), (0, "w", 1), (2, "r", 1), (2, "w", 1),
    (3, "w", 2), (0, "r", 2), (1, "w", 2),
]


def test_no_standalone_directory_checks():
    protocol = BerkeleyProtocol(4)
    results = drive(protocol, REFS)
    for result in results:
        assert all(op.kind is not OpKind.DIR_CHECK for op in result.ops)


def test_events_identical_to_dir0b():
    berkeley = [r.event for r in drive(BerkeleyProtocol(4), REFS)]
    dir0b = [r.event for r in drive(Dir0BProtocol(4), REFS)]
    assert berkeley == dir0b


def test_costs_never_exceed_dir0b(standard_small):
    from repro.core.simulator import Simulator
    from repro.cost.bus import pipelined_bus

    simulator = Simulator()
    bus = pipelined_bus()
    for trace in standard_small:
        berkeley = simulator.run(trace, "berkeley").bus_cycles_per_reference(bus)
        dir0b = simulator.run(trace, "dir0b").bus_cycles_per_reference(bus)
        assert berkeley <= dir0b


def test_is_advertised_as_snoopy():
    assert BerkeleyProtocol(4).scheme_kind == "snoopy"
    assert BerkeleyProtocol(4).name == "berkeley"
