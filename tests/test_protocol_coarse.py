"""Coarse-vector directory protocol (Section 6 ternary coding)."""

from repro.protocols.directory.coarse import CoarseVectorProtocol
from repro.protocols.events import EventType, OpKind

from conftest import drive


def op_units(result, kind):
    return sum(op.count for op in result.ops if op.kind is kind)


def test_exact_for_single_sharer():
    protocol = CoarseVectorProtocol(8)
    results = drive(protocol, [(0, "r", 1), (1, "w", 1)])
    final = results[1]
    assert final.event is EventType.WM_BLK_CLN
    assert op_units(final, OpKind.INVALIDATE) == 1
    assert final.wasted_invalidations == 0


def test_superset_causes_wasted_invalidations():
    protocol = CoarseVectorProtocol(8)
    # Sharers 0 and 3 encode to {0,1,2,3}: caches 1 and 2 get wasted
    # messages when cache 7 writes.
    results = drive(protocol, [(0, "r", 1), (3, "r", 1), (7, "w", 1)])
    final = results[2]
    assert op_units(final, OpKind.INVALIDATE) == 4
    assert final.wasted_invalidations == 2


def test_never_broadcasts():
    protocol = CoarseVectorProtocol(8)
    results = drive(
        protocol,
        [(0, "r", 1), (3, "r", 1), (5, "r", 1), (7, "w", 1), (0, "r", 1)],
    )
    for result in results:
        assert op_units(result, OpKind.BROADCAST_INVALIDATE) == 0


def test_write_restores_precision():
    protocol = CoarseVectorProtocol(8)
    drive(protocol, [(0, "r", 1), (7, "r", 1), (7, "w", 1)])
    code = protocol.directory.code_of(1)
    assert code.is_exact_single
    assert list(code.decode()) == [7]


def test_storage_is_logarithmic():
    assert CoarseVectorProtocol(64).directory_bits_per_block() == 13
    assert CoarseVectorProtocol(1024).directory_bits_per_block() == 21


def test_event_classification_matches_full_map():
    from repro.protocols.directory.dirnnb import DirNNBProtocol

    refs = [
        (0, "r", 1), (3, "r", 1), (0, "w", 1), (5, "r", 1), (5, "w", 1),
        (7, "w", 2), (0, "r", 2), (3, "w", 2),
    ]
    coarse = [r.event for r in drive(CoarseVectorProtocol(8), refs)]
    full = [r.event for r in drive(DirNNBProtocol(8), refs)]
    assert coarse == full
