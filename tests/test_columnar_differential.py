"""Differential test: record path == columnar fast path == parallel sweep.

The columnar fast path and the parallel executor both promise results
*identical* to the plain record-by-record simulation — not statistically
close, equal.  This suite holds that for every registered protocol on a
mixed synthetic trace (instructions, private and shared data, read/write
mixes, multiple sharers), comparing full :class:`SimulationResult`
payloads: event counts, op units, histograms, transaction counts.
"""

import pytest

from repro.core.simulator import SimulationContext, Simulator
from repro.protocols.registry import available_protocols, make_protocol
from repro.runner.resilient import ResilientExperiment
from repro.trace.columnar import ColumnarTrace
from repro.workloads.registry import make_trace

TRACE_LENGTH = 6000


@pytest.fixture(scope="module")
def trace():
    return make_trace("pops", length=TRACE_LENGTH, seed=42)


@pytest.fixture(scope="module")
def columnar(trace):
    return ColumnarTrace.from_trace(trace)


@pytest.mark.parametrize("scheme", available_protocols())
def test_columnar_fast_path_is_bit_identical(trace, columnar, scheme):
    simulator = Simulator()
    record_result = simulator.run(trace, scheme)
    columnar_result = simulator.run(columnar, scheme)
    assert columnar_result == record_result


@pytest.mark.parametrize("scheme", available_protocols())
def test_columnar_fast_path_matches_with_cpu_sharers(trace, columnar, scheme):
    simulator = Simulator(sharer_key="cpu")
    assert simulator.run(columnar, scheme) == simulator.run(trace, scheme)


def test_segmented_columnar_run_matches_continuous(trace, columnar):
    """Windowed fast-path segments with a shared context == one pass.

    This is the checkpointed-sweep execution shape: the same protocol
    instance and context fed slice by slice.
    """
    simulator = Simulator()
    whole = simulator.run(trace, "dir0b")

    protocol = make_protocol("dir0b", num_caches=len(columnar.pids))
    context = SimulationContext()
    total = None
    for start in range(0, len(columnar), 1024):
        segment = columnar.records[start : start + 1024]
        part = simulator.run(segment, protocol, trace_name=trace.name, context=context)
        if total is None:
            total = part
        else:
            from repro.core.result import merge_results

            total = merge_results([total, part], name=trace.name)
    total.scheme = whole.scheme
    assert total == whole


def test_parallel_sweep_matches_record_path(trace, columnar):
    """A 2-worker sweep over every protocol == the serial record path."""
    schemes = list(available_protocols())
    simulator = Simulator()
    serial = {
        scheme: simulator.run(trace, scheme, trace_name=trace.name)
        for scheme in schemes
    }
    parallel = ResilientExperiment(
        traces=[columnar], schemes=schemes, jobs=2
    ).run()
    assert not parallel.all_failures()
    for scheme in schemes:
        assert parallel.results[scheme][trace.name] == serial[scheme]
