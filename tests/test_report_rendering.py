"""ASCII table and figure rendering."""

import pytest

from repro.report.figures import (
    bar_chart,
    histogram_chart,
    range_chart,
    stacked_fraction_chart,
)
from repro.report.tables import format_table


class TestTables:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [("a", 1.5), ("bb", 2.25)], precision=2)
        lines = text.splitlines()
        assert lines[0].split() == ["name", "value"]
        assert "1.50" in lines[2]
        assert "2.25" in lines[3]

    def test_title_prepended(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_none_renders_as_dash(self):
        text = format_table(["a", "b"], [(None, 2)])
        assert text.splitlines()[-1].split() == ["-", "2"]

    def test_columns_align(self):
        text = format_table(["col"], [("short",), ("a much longer cell",)])
        lines = text.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])


class TestFigures:
    def test_bar_chart_scales_to_max(self):
        text = bar_chart({"big": 10.0, "half": 5.0}, width=10, precision=1)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_range_chart_marks_low_and_high(self):
        text = range_chart({"s": (1.0, 2.0)}, width=10)
        line = text.splitlines()[-1]
        assert line.count("#") == 5
        assert line.count("=") == 5

    def test_histogram_percentages(self):
        text = histogram_chart([(0, 85.0), (1, 10.0), (2, 5.0)], title="h")
        lines = text.splitlines()
        assert lines[0] == "h"
        assert "85.00%" in lines[1]
        assert lines[1].count("#") > lines[2].count("#")

    def test_stacked_chart_has_legend(self):
        text = stacked_fraction_chart(
            {"s": {"mem": 0.5, "inv": 0.5}}, width=10
        )
        assert "legend:" in text
        assert "mmmmm" in text
        assert "iiiii" in text
