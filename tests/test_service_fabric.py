"""The scheduler's fabric mode: fleet execution behind the job API.

With ``Scheduler(fabric_db=...)`` the service keeps its whole contract
— spec validation, dedup, coalescing, events, ``/stats`` — but owned
cells are executed by lease-based fabric workers, and jobs survive the
scheduler process itself (recovery straight from the fabric db, no
``state_dir`` required).
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.errors import JobSpecError
from repro.fabric.chaos import canonical_digest, serial_results
from repro.fabric.queue import DurableCellQueue
from repro.service.api import ServiceServer
from repro.service.jobs import Job
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.spec import parse_job_spec

pytestmark = pytest.mark.service

SPEC = {
    "schemes": ["dir0b", "wti"],
    "traces": [{"workload": "pops", "length": 800, "seed": 4}],
}


def wait_terminal(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.finished:
            return
        time.sleep(0.05)
    pytest.fail(f"job {job.id} still {job.state} after {timeout}s")


def get_json(url):
    return json.load(urllib.request.urlopen(url))


class TestFabricMode:
    def test_job_runs_on_the_fleet_bit_identical(self, tmp_path):
        scheduler = Scheduler(
            workers=1, fabric_db=tmp_path / "fabric.db", fabric_workers=2,
            lease_s=10.0,
        )
        scheduler.start()
        try:
            spec = parse_job_spec(dict(SPEC))
            job, deduplicated = scheduler.submit(spec)
            assert not deduplicated
            wait_terminal(job)
            assert job.state == "done"
            # Every cell came through the fleet, none in-process.
            assert job.cell_sources["fabric"] == spec.cell_count()
            assert job.cell_sources["simulated"] == 0
            assert canonical_digest(job.results) == canonical_digest(
                serial_results(spec)
            )
            stats = scheduler.stats()
            assert stats["cells"]["fabric"] == spec.cell_count()
            assert stats["fabric"]["cells"]["done"] == spec.cell_count()
            assert stats["fabric"]["duplicate_completions"] == 0
        finally:
            scheduler.shutdown()

    def test_repeat_job_is_memo_resolved_not_resimulated(self, tmp_path):
        scheduler = Scheduler(
            workers=1, fabric_db=tmp_path / "fabric.db", fabric_workers=1
        )
        scheduler.start()
        try:
            spec = parse_job_spec(dict(SPEC))
            first, _ = scheduler.submit(spec)
            wait_terminal(first)
            second, _ = scheduler.submit(parse_job_spec(dict(SPEC)))
            wait_terminal(second)
            assert second.state == "done"
            assert second.cell_sources["cache"] == spec.cell_count()
            assert second.cell_sources["fabric"] == 0
            assert second.results == first.results
            # The fabric never saw the second job's cells at all.
            assert scheduler.fabric.stats()["cells"]["done"] == spec.cell_count()
        finally:
            scheduler.shutdown()

    def test_restarted_scheduler_recovers_jobs_from_the_fabric(self, tmp_path):
        db = tmp_path / "fabric.db"
        # No in-process workers and no external fleet: the job's cells
        # reach the db but nobody executes them...
        scheduler = Scheduler(workers=1, fabric_db=db, fabric_workers=0)
        scheduler.start()
        spec = parse_job_spec(dict(SPEC))
        job, _ = scheduler.submit(spec)
        fabric = DurableCellQueue(db)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if fabric.stats()["cells"]["pending"] == spec.cell_count():
                break
            time.sleep(0.05)
        else:
            pytest.fail("cells never reached the fabric")
        # ...and the service dies mid-job (checkpoint stop, no state_dir).
        scheduler.shutdown(mode="checkpoint")

        # A fresh scheduler on the same db — still no state_dir — finds
        # the orphaned job and a fleet finishes it under the same id.
        revived = Scheduler(workers=1, fabric_db=db, fabric_workers=2)
        revived.start()
        try:
            recovered = revived.jobs.get(job.id)
            wait_terminal(recovered, timeout=90.0)
            assert recovered.state == "done"
            assert canonical_digest(recovered.results) == canonical_digest(
                serial_results(spec)
            )
        finally:
            revived.shutdown()

    def test_dead_letters_fail_the_job_and_list_in_the_dlq(self, tmp_path):
        db = tmp_path / "fabric.db"
        scheduler = Scheduler(
            workers=1, fabric_db=db, fabric_workers=0, lease_s=0.2
        )
        server = ServiceServer(scheduler, port=0)
        server.start()
        try:
            # max_attempts=1 + a worker that leases and dies (simulated
            # here by leasing and never settling): the reaper
            # dead-letters the cell and the job fails loudly.
            spec = parse_job_spec(
                {
                    "schemes": ["dir0b"],
                    "traces": [{"workload": "pops", "length": 400, "seed": 1}],
                    "max_attempts": 1,
                }
            )
            job, _ = scheduler.submit(spec)
            fabric = DurableCellQueue(db)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if fabric.lease("crashy-worker", lease_s=0.2) is not None:
                    break
                time.sleep(0.05)
            wait_terminal(job, timeout=60.0)
            assert job.state == "done"  # the job completes...
            assert job.cell_errors == 1  # ...with the cell failure contained
            dlq = get_json(server.url + "/dlq")
            assert dlq["enabled"]
            assert len(dlq["dead"]) == 1
            assert dlq["dead"][0]["scheme_key"] == "dir0b"
            stats = get_json(server.url + "/stats")
            assert stats["fabric"]["dead_letters"] == 1
        finally:
            server.stop()

    def test_dlq_route_without_fabric_reports_disabled(self):
        scheduler = Scheduler(workers=1)
        server = ServiceServer(scheduler, port=0)
        server.start()
        try:
            dlq = get_json(server.url + "/dlq")
            assert dlq == {"enabled": False, "dead": []}
            assert get_json(server.url + "/stats")["fabric"] is None
        finally:
            server.stop()


class TestSpecMaxAttempts:
    def test_unset_max_attempts_keeps_historic_hashes(self):
        spec = parse_job_spec(dict(SPEC))
        assert "max_attempts" not in spec.canonical()
        assert spec.spec_hash() == parse_job_spec(dict(SPEC)).spec_hash()

    def test_set_max_attempts_round_trips_and_changes_identity(self):
        spec = parse_job_spec({**SPEC, "max_attempts": 5})
        assert spec.max_attempts == 5
        assert spec.canonical()["max_attempts"] == 5
        assert spec.spec_hash() != parse_job_spec(dict(SPEC)).spec_hash()

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "3"])
    def test_invalid_max_attempts_rejected(self, bad):
        with pytest.raises(JobSpecError):
            parse_job_spec({**SPEC, "max_attempts": bad})


class TestPopAfterClose:
    def test_pop_on_a_closed_empty_queue_returns_immediately(self):
        queue = JobQueue()
        queue.close()
        start = time.monotonic()
        assert queue.pop(timeout=5.0) is None
        assert time.monotonic() - start < 1.0

    def test_pop_still_drains_jobs_queued_before_close(self):
        queue = JobQueue()
        job = Job(parse_job_spec(dict(SPEC)))
        queue.submit(job)
        queue.close()
        assert queue.pop(timeout=5.0) is job
        assert queue.pop(timeout=5.0) is None
