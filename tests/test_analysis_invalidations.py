"""Figure 1 invalidation histogram analysis."""

import pytest

from repro.analysis.invalidations import InvalidationHistogram, invalidation_histogram
from repro.core.simulator import simulate

from conftest import tiny_trace


def test_histogram_from_tiny_trace():
    result = simulate(tiny_trace(), "dir0b")
    histogram = invalidation_histogram(result)
    assert histogram.population == 2
    assert histogram.buckets[0] == pytest.approx(0.5)
    assert histogram.buckets[1] == pytest.approx(0.5)
    assert histogram.single_or_none_fraction == pytest.approx(1.0)


def test_fraction_at_most_is_cumulative():
    histogram = InvalidationHistogram(
        buckets={0: 0.5, 1: 0.3, 2: 0.15, 3: 0.05}, population=100
    )
    assert histogram.fraction_at_most(0) == pytest.approx(0.5)
    assert histogram.fraction_at_most(1) == pytest.approx(0.8)
    assert histogram.fraction_at_most(3) == pytest.approx(1.0)


def test_mean_invalidations():
    histogram = InvalidationHistogram(buckets={0: 0.5, 2: 0.5}, population=10)
    assert histogram.mean_invalidations == pytest.approx(1.0)


def test_percent_rows_are_padded():
    histogram = InvalidationHistogram(buckets={0: 1.0}, population=1)
    rows = histogram.percent_rows(3)
    assert rows == [(0, 100.0), (1, 0.0), (2, 0.0), (3, 0.0)]


def test_paper_structural_result_on_synthetic_traces(standard_small):
    """>~80% of clean-block writes invalidate at most one cache."""
    from repro.core.result import merge_results
    from repro.core.simulator import Simulator

    simulator = Simulator()
    merged = merge_results([simulator.run(t, "dir0b") for t in standard_small])
    histogram = invalidation_histogram(merged)
    assert histogram.population > 100
    assert histogram.single_or_none_fraction > 0.75
