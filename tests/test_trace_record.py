"""TraceRecord and RefType behaviour."""

import pytest

from repro.trace.record import (
    RefType,
    TraceRecord,
    data_refs,
    is_data,
    ref_type_from_code,
)


def test_ref_type_data_classification():
    assert not RefType.INSTR.is_data
    assert RefType.READ.is_data
    assert RefType.WRITE.is_data


def test_ref_type_short_codes_round_trip():
    for ref_type in RefType:
        assert ref_type_from_code(ref_type.short) is ref_type


def test_ref_type_from_unknown_code():
    with pytest.raises(ValueError):
        ref_type_from_code("x")


def test_record_fields():
    record = TraceRecord(cpu=2, pid=7, ref_type=RefType.WRITE, address=0x1234)
    assert record.is_data and record.is_write and not record.is_read
    assert not record.system and not record.lock and not record.spin


def test_record_rejects_negative_cpu():
    with pytest.raises(ValueError):
        TraceRecord(cpu=-1, pid=0, ref_type=RefType.READ, address=0)


def test_record_rejects_negative_pid():
    with pytest.raises(ValueError):
        TraceRecord(cpu=0, pid=-1, ref_type=RefType.READ, address=0)


def test_record_rejects_negative_address():
    with pytest.raises(ValueError):
        TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=-4)


def test_spin_implies_lock():
    with pytest.raises(ValueError):
        TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=0, spin=True)
    record = TraceRecord(
        cpu=0, pid=0, ref_type=RefType.READ, address=0, lock=True, spin=True
    )
    assert record.spin and record.lock


def test_with_cpu_and_with_pid_return_copies():
    record = TraceRecord(cpu=0, pid=1, ref_type=RefType.READ, address=8)
    moved = record.with_cpu(3)
    relabeled = record.with_pid(9)
    assert moved.cpu == 3 and moved.pid == 1
    assert relabeled.pid == 9 and relabeled.cpu == 0
    assert record.cpu == 0 and record.pid == 1


def test_records_are_hashable_and_comparable():
    a = TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=16)
    b = TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=16)
    assert a == b
    assert hash(a) == hash(b)


def test_data_refs_filters_instructions():
    records = [
        TraceRecord(cpu=0, pid=0, ref_type=RefType.INSTR, address=0),
        TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=4),
        TraceRecord(cpu=0, pid=0, ref_type=RefType.WRITE, address=8),
    ]
    assert [r.address for r in data_refs(records)] == [4, 8]
    assert [is_data(r) for r in records] == [False, True, True]
