"""Interconnection-network cost models."""

import pytest

from repro.core.simulator import simulate
from repro.cost.network import (
    NetworkModel,
    Topology,
    average_distance,
    network_cycles_per_reference,
)
from repro.protocols.events import BusOp, OpKind

from conftest import tiny_trace


class TestDistances:
    def test_single_node_everywhere(self):
        for topology in (Topology.BUS, Topology.RING, Topology.FULLY_CONNECTED):
            assert average_distance(topology, 1) == 0.0

    def test_bus_and_fully_connected_are_one_hop(self):
        assert average_distance(Topology.BUS, 16) == 1.0
        assert average_distance(Topology.FULLY_CONNECTED, 16) == 1.0

    def test_ring_distance(self):
        # Unidirectional ring of 4: distances 1, 2, 3 -> mean 2.
        assert average_distance(Topology.RING, 4) == pytest.approx(2.0)

    def test_hypercube_distance(self):
        # 3-cube: mean Hamming distance over distinct pairs = 3*4/7.
        assert average_distance(Topology.HYPERCUBE, 8) == pytest.approx(12 / 7)

    def test_hypercube_requires_power_of_two(self):
        with pytest.raises(ValueError):
            average_distance(Topology.HYPERCUBE, 6)

    def test_mesh_distance(self):
        # 2x2 mesh: pairs at Manhattan distances (1,1,2) per corner;
        # mean over distinct pairs = 4/3.
        assert average_distance(Topology.MESH_2D, 4) == pytest.approx(4 / 3)

    def test_mesh_requires_square(self):
        with pytest.raises(ValueError):
            average_distance(Topology.MESH_2D, 8)

    def test_distance_grows_with_machine(self):
        assert average_distance(Topology.MESH_2D, 64) > average_distance(
            Topology.MESH_2D, 16
        )
        assert average_distance(Topology.HYPERCUBE, 64) > average_distance(
            Topology.HYPERCUBE, 16
        )


class TestCharging:
    def net(self, topology=Topology.FULLY_CONNECTED, nodes=4, **kwargs):
        return NetworkModel(topology, nodes, **kwargs)

    def test_block_fetch_is_request_plus_reply(self):
        net = self.net()  # header 1, 4 words, 1 hop
        # request (1+0+1) + reply (1+4+1) = 8
        assert net.charge(BusOp(OpKind.MEM_ACCESS)) == 8.0

    def test_control_messages(self):
        net = self.net()
        assert net.charge(BusOp(OpKind.INVALIDATE, 3)) == 6.0
        assert net.charge(BusOp(OpKind.DIR_CHECK)) == 2.0
        assert net.charge(BusOp(OpKind.DIR_CHECK_OVERLAPPED)) == 0.0
        assert net.charge(BusOp(OpKind.WRITE_WORD)) == 3.0

    def test_broadcast_native_on_bus(self):
        bus_net = self.net(Topology.BUS)
        assert bus_net.charge(BusOp(OpKind.BROADCAST_INVALIDATE)) == 2.0

    def test_broadcast_emulated_elsewhere(self):
        mesh = self.net(Topology.MESH_2D, 4)
        single = mesh.message_cost(0)
        assert mesh.charge(BusOp(OpKind.BROADCAST_INVALIDATE)) == pytest.approx(
            3 * single
        )

    def test_distance_raises_costs(self):
        small = NetworkModel(Topology.MESH_2D, 4)
        big = NetworkModel(Topology.MESH_2D, 64)
        assert big.charge(BusOp(OpKind.MEM_ACCESS)) > small.charge(
            BusOp(OpKind.MEM_ACCESS)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(Topology.BUS, 0)
        with pytest.raises(ValueError):
            NetworkModel(Topology.BUS, 4, header_flits=-1)
        with pytest.raises(ValueError):
            NetworkModel(Topology.MESH_2D, 5)


class TestSchemeHosting:
    def test_directory_schemes_run_anywhere(self):
        mesh = NetworkModel(Topology.MESH_2D, 4)
        for scheme in ("dir1nb", "dir0b", "dirnnb", "coarse-vector", "yenfu"):
            result = simulate(tiny_trace(), scheme)
            cycles = network_cycles_per_reference(result, mesh)
            assert cycles >= 0

    def test_snoopy_schemes_need_a_bus(self):
        mesh = NetworkModel(Topology.MESH_2D, 4)
        for scheme in ("wti", "dragon", "berkeley"):
            result = simulate(tiny_trace(), scheme)
            with pytest.raises(ValueError, match="snoopy"):
                network_cycles_per_reference(result, mesh)

    def test_snoopy_schemes_ok_on_bus_topology(self):
        bus_net = NetworkModel(Topology.BUS, 4)
        result = simulate(tiny_trace(), "dragon")
        assert network_cycles_per_reference(result, bus_net) > 0

    def test_supports_scheme_api(self):
        from repro.protocols.registry import make_protocol

        mesh = NetworkModel(Topology.HYPERCUBE, 4)
        assert mesh.supports_scheme(make_protocol("dirnnb", 4))
        assert not mesh.supports_scheme(make_protocol("dragon", 4))
        assert mesh.supports_scheme("directory")
        assert not mesh.supports_scheme("snoopy")

    def test_sequential_invalidation_cheaper_than_emulated_broadcast(
        self, standard_small
    ):
        """On a real network the paper's DirnNB choice wins: directed
        invalidations beat (n-1)-message emulated broadcasts."""
        mesh = NetworkModel(Topology.MESH_2D, 4)
        dirnnb = simulate(standard_small[0], "dirnnb")
        dir0b = simulate(standard_small[0], "dir0b")
        assert network_cycles_per_reference(
            dirnnb, mesh
        ) < network_cycles_per_reference(dir0b, mesh)


class TestDistanceFormulasAgainstBruteForce:
    """The closed-form mean distances must match exhaustive enumeration."""

    @staticmethod
    def brute_force(topology, num_nodes, hop_fn):
        total = pairs = 0
        for a in range(num_nodes):
            for b in range(num_nodes):
                if a == b:
                    continue
                total += hop_fn(a, b)
                pairs += 1
        return total / pairs

    def test_ring(self):
        for n in (2, 4, 8, 16):
            expected = self.brute_force(
                Topology.RING, n, lambda a, b: (b - a) % n
            )
            assert average_distance(Topology.RING, n) == pytest.approx(expected)

    def test_hypercube(self):
        for n in (2, 4, 8, 16, 32):
            expected = self.brute_force(
                Topology.HYPERCUBE, n, lambda a, b: bin(a ^ b).count("1")
            )
            assert average_distance(Topology.HYPERCUBE, n) == pytest.approx(expected)

    def test_mesh(self):
        for side in (2, 3, 4, 8):
            n = side * side

            def manhattan(a, b):
                ax, ay = a % side, a // side
                bx, by = b % side, b // side
                return abs(ax - bx) + abs(ay - by)

            expected = self.brute_force(Topology.MESH_2D, n, manhattan)
            assert average_distance(Topology.MESH_2D, n) == pytest.approx(expected)
