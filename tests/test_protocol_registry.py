"""The protocol registry and shorthand names."""

import pytest

from repro.errors import UnknownSchemeError
from repro.protocols.directory.dir1nb import Dir1NBProtocol
from repro.protocols.directory.diri import DirIBProtocol, DirINBProtocol
from repro.protocols.registry import (
    available_protocols,
    make_protocol,
    protocol_class,
)


def test_available_protocols_is_sorted_and_complete():
    names = available_protocols()
    assert names == sorted(names)
    for expected in ("dir1nb", "dir0b", "dirnnb", "wti", "dragon", "berkeley"):
        assert expected in names


def test_every_registered_protocol_instantiates():
    for name in available_protocols():
        protocol = make_protocol(name, 4)
        assert protocol.num_caches == 4


def test_canonical_dir1nb_is_the_dedicated_class():
    assert isinstance(make_protocol("dir1nb", 4), Dir1NBProtocol)


def test_pointer_shorthand_broadcast():
    protocol = make_protocol("dir2b", 8)
    assert isinstance(protocol, DirIBProtocol)
    assert protocol.num_pointers == 2


def test_pointer_shorthand_no_broadcast():
    protocol = make_protocol("dir3nb", 8)
    assert isinstance(protocol, DirINBProtocol)
    assert protocol.num_pointers == 3


def test_dir1b_shorthand():
    protocol = make_protocol("dir1b", 8)
    assert isinstance(protocol, DirIBProtocol)
    assert protocol.num_pointers == 1


def test_names_are_case_insensitive():
    assert make_protocol("Dragon", 4).name == "dragon"
    assert make_protocol("DIR0B", 4).name == "dir0b"


def test_unknown_name_raises():
    with pytest.raises(UnknownSchemeError):
        make_protocol("mesi", 4)
    with pytest.raises(UnknownSchemeError):
        protocol_class("mosi")


def test_explicit_options_forwarded():
    protocol = make_protocol("dirinb", 8, num_pointers=4)
    assert protocol.num_pointers == 4


def test_shorthand_pointer_count_zero_rejected():
    with pytest.raises(UnknownSchemeError):
        make_protocol("dir0nb", 4)
