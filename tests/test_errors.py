"""The exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    TraceFormatError,
    UnknownSchemeError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        TraceFormatError,
        ProtocolError,
        InvariantViolation,
        ConfigurationError,
        UnknownSchemeError,
    ):
        assert issubclass(exc_type, ReproError)


def test_invariant_violation_is_a_protocol_error():
    assert issubclass(InvariantViolation, ProtocolError)


def test_unknown_scheme_is_a_configuration_error():
    assert issubclass(UnknownSchemeError, ConfigurationError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise InvariantViolation("broken")
