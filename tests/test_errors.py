"""The exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    TraceFormatError,
    UnknownSchemeError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        TraceFormatError,
        ProtocolError,
        InvariantViolation,
        ConfigurationError,
        UnknownSchemeError,
    ):
        assert issubclass(exc_type, ReproError)


def test_invariant_violation_is_a_protocol_error():
    assert issubclass(InvariantViolation, ProtocolError)


def test_unknown_scheme_is_a_configuration_error():
    assert issubclass(UnknownSchemeError, ConfigurationError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise InvariantViolation("broken")


def test_runner_errors_are_repro_errors():
    from repro.errors import CheckpointError, TransientError

    assert issubclass(CheckpointError, ReproError)
    assert issubclass(TransientError, ReproError)
    # Neither is a protocol or configuration problem.
    assert not issubclass(CheckpointError, (ProtocolError, ConfigurationError))
    assert not issubclass(TransientError, (ProtocolError, ConfigurationError))


def test_errors_module_declares_all():
    import repro.errors as errors

    assert set(errors.__all__) == {
        "ReproError",
        "TraceFormatError",
        "ProtocolError",
        "InvariantViolation",
        "ConfigurationError",
        "UnknownSchemeError",
        "CheckpointError",
        "TransientError",
        "ServiceError",
        "JobSpecError",
        "JobNotFoundError",
        "ServiceUnavailableError",
        "ConformanceError",
    }
    for name in errors.__all__:
        assert issubclass(getattr(errors, name), ReproError)


def test_hierarchy_is_reexported_from_package_root():
    import repro

    for name in (
        "ReproError",
        "TraceFormatError",
        "InvariantViolation",
        "CheckpointError",
        "TransientError",
        "ServiceError",
        "JobSpecError",
        "JobNotFoundError",
        "ServiceUnavailableError",
        "ConformanceError",
    ):
        import repro.errors as errors

        assert getattr(repro, name) is getattr(errors, name)


def test_trace_format_error_location_attributes():
    plain = TraceFormatError("bad line")
    assert plain.path is None and plain.line is None

    located = TraceFormatError("bad line", path="t.trace", line=7)
    assert located.path == "t.trace" and located.line == 7
    assert str(located).startswith("t.trace:7:")

    path_only = TraceFormatError("truncated", path="t.bin")
    assert str(path_only).startswith("t.bin:") and path_only.line is None
