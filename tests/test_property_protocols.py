"""Property-based tests: protocol invariants under random reference streams.

Every protocol is driven with arbitrary (cache, op, block) sequences
while the invariant checker validates the global state after every
reference.  Cross-protocol equivalences implied by the paper's
state-change-model argument (Section 5) are also checked.
"""

from hypothesis import given, settings, strategies as st

from repro.core.invariants import InvariantChecker
from repro.memory.line import LineState
from repro.protocols.registry import available_protocols, make_protocol

NUM_CACHES = 4
NUM_BLOCKS = 6

refs_strategy = st.lists(
    st.tuples(
        st.integers(0, NUM_CACHES - 1),
        st.sampled_from(["r", "w"]),
        st.integers(0, NUM_BLOCKS - 1),
    ),
    min_size=1,
    max_size=60,
)


def run_with_checks(protocol, refs):
    checker = InvariantChecker(protocol)
    seen = set()
    results = []
    for cache, op, block in refs:
        first = block not in seen
        seen.add(block)
        if op == "r":
            results.append(protocol.on_read(cache, block, first))
        else:
            results.append(protocol.on_write(cache, block, first))
        checker.check_block(block)
    return results


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy, scheme=st.sampled_from(available_protocols()))
def test_invariants_hold_for_every_protocol(refs, scheme):
    protocol = make_protocol(scheme, NUM_CACHES)
    run_with_checks(protocol, refs)
    InvariantChecker(protocol).check_all()


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy)
def test_reads_after_writes_see_a_valid_copy(refs):
    """After any sequence, a reader holds the block (read-your-reference)."""
    for scheme in ("dir0b", "dirnnb", "dragon", "wti"):
        protocol = make_protocol(scheme, NUM_CACHES)
        run_with_checks(protocol, refs)
        cache, _op, block = refs[-1]
        assert cache in protocol.holders(block)


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy)
def test_multicopy_schemes_classify_events_identically(refs):
    """Dir0B, DirnNB, DiriB, coarse-vector, Berkeley: one state model."""
    baseline = [
        result.event
        for result in run_with_checks(make_protocol("dirnnb", NUM_CACHES), refs)
    ]
    for scheme, options in [
        ("dir0b", {}),
        ("berkeley", {}),
        ("dirib", {"num_pointers": 2}),
        ("coarse-vector", {}),
    ]:
        protocol = make_protocol(scheme, NUM_CACHES, **options)
        events = [result.event for result in run_with_checks(protocol, refs)]
        assert events == baseline, scheme


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy)
def test_dir1nb_equals_dirinb_with_one_pointer_on_miss_counts(refs):
    """Dir1NB and DiriNB(i=1) keep the same single-copy occupancy."""
    dir1nb = run_with_checks(make_protocol("dir1nb", NUM_CACHES), refs)
    dirinb = run_with_checks(
        make_protocol("dirinb", NUM_CACHES, num_pointers=1), refs
    )
    assert [r.event.is_read_miss or r.event.is_write_miss for r in dir1nb] == [
        r.event.is_read_miss or r.event.is_write_miss for r in dirinb
    ]


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy)
def test_event_read_write_kind_matches_reference(refs):
    """A read reference always yields a read event, writes a write event."""
    for scheme in ("dir1nb", "dir0b", "wti", "dragon"):
        protocol = make_protocol(scheme, NUM_CACHES)
        results = run_with_checks(protocol, refs)
        for (cache, op, block), result in zip(refs, results):
            if op == "r":
                assert result.event.is_read
            else:
                assert result.event.is_write


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy)
def test_first_reference_events_never_charge_block_fetches(refs):
    """First refs cost nothing in the paper's metric (WTI's write-through
    of the written word is the one exception)."""
    from repro.protocols.events import OpKind

    for scheme in ("dir1nb", "dir0b", "dirnnb", "dragon"):
        protocol = make_protocol(scheme, NUM_CACHES)
        results = run_with_checks(protocol, refs)
        for result in results:
            if result.event.is_first_ref:
                assert result.ops == ()


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy)
def test_protocols_are_deterministic(refs):
    for scheme in available_protocols():
        a = run_with_checks(make_protocol(scheme, NUM_CACHES), refs)
        b = run_with_checks(make_protocol(scheme, NUM_CACHES), refs)
        assert a == b


@settings(max_examples=40, deadline=None)
@given(refs=refs_strategy)
def test_wti_memory_always_current(refs):
    """No WTI line is ever dirty (memory can always serve misses)."""
    protocol = make_protocol("wti", NUM_CACHES)
    checker = InvariantChecker(protocol)
    seen = set()
    for cache, op, block in refs:
        first = block not in seen
        seen.add(block)
        if op == "r":
            protocol.on_read(cache, block, first)
        else:
            protocol.on_write(cache, block, first)
        for state in protocol.holders(block).values():
            assert state is LineState.CLEAN
    checker.check_all()


@settings(max_examples=40, deadline=None)
@given(refs=refs_strategy, pointers=st.integers(1, NUM_CACHES))
def test_dirinb_copy_bound_holds_for_any_i(refs, pointers):
    protocol = make_protocol("dirinb", NUM_CACHES, num_pointers=pointers)
    run_with_checks(protocol, refs)
    for block in protocol.tracked_blocks():
        assert len(protocol.holders(block)) <= pointers


@settings(max_examples=40, deadline=None)
@given(refs=refs_strategy)
def test_dragon_never_loses_copies(refs):
    """Under an update protocol with infinite caches, the holder set of a
    block only grows."""
    protocol = make_protocol("dragon", NUM_CACHES)
    seen = set()
    holder_history: dict[int, set[int]] = {}
    for cache, op, block in refs:
        first = block not in seen
        seen.add(block)
        if op == "r":
            protocol.on_read(cache, block, first)
        else:
            protocol.on_write(cache, block, first)
        previous = holder_history.get(block, set())
        current = set(protocol.holders(block))
        assert previous <= current
        holder_history[block] = current
