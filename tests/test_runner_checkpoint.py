"""Checkpoint/resume: snapshot formats, validation, and bit-for-bit resume."""

import json
import pickle

import pytest

from repro.core.experiment import Experiment
from repro.core.simulator import simulate
from repro.errors import CheckpointError
from repro.protocols.registry import make_protocol
from repro.runner.checkpoint import (
    CELL_STATE_MAGIC,
    CELL_STATE_VERSION,
    CheckpointManager,
    result_from_json,
    result_to_json,
)
from repro.runner.faults import KillPoint, SaboteurProtocol
from repro.runner.resilient import run_resilient_sweep
from repro.workloads.registry import make_trace


@pytest.fixture
def trace():
    return make_trace("pops", length=2000, seed=3)


# ----------------------------------------------------------------------
# SimulationResult <-> JSON codec
# ----------------------------------------------------------------------

def test_result_json_roundtrip_is_exact(trace):
    result = simulate(trace, "dir1nb")
    payload = result_to_json(result)
    # The payload must survive an actual JSON serialization boundary.
    restored = result_from_json(json.loads(json.dumps(payload)))
    assert restored == result


def test_result_json_rejects_corrupt_payload(trace):
    payload = result_to_json(simulate(trace, "dir0b"))
    del payload["total_refs"]
    with pytest.raises(CheckpointError, match="corrupt"):
        result_from_json(payload)

    payload = result_to_json(simulate(trace, "dir0b"))
    payload["event_counts"]["not-an-event"] = 3
    with pytest.raises(CheckpointError, match="corrupt"):
        result_from_json(payload)


# ----------------------------------------------------------------------
# Manifest validation
# ----------------------------------------------------------------------

def test_missing_manifest_raises(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint manifest"):
        CheckpointManager(tmp_path / "ckpt").load_manifest()


def test_manifest_magic_and_version_are_enforced(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpt")
    (tmp_path / "ckpt" / "manifest.json").write_text('{"magic": "something-else"}')
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        manager.load_manifest()

    manifest = manager.new_manifest({"schemes": ["dir0b"]})
    manifest["version"] = 99
    manager.save_manifest(manifest)
    with pytest.raises(CheckpointError, match="version"):
        manager.load_manifest()

    (tmp_path / "ckpt" / "manifest.json").write_text("{not json")
    with pytest.raises(CheckpointError, match="unreadable"):
        manager.load_manifest()


def test_manifest_fingerprint_mismatch_raises(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpt")
    stored = {"schemes": ["dir1nb"], "traces": ["pops"], "sharer_key": "pid"}
    manager.save_manifest(manager.new_manifest(stored))
    assert manager.load_manifest(stored)["fingerprint"] == stored
    other = dict(stored, schemes=["dir0b"])
    with pytest.raises(CheckpointError, match="different experiment"):
        manager.load_manifest(other)


def test_resume_from_foreign_checkpoint_is_refused(tmp_path, trace):
    ckpt = str(tmp_path / "ckpt")
    run_resilient_sweep([trace], ["dir1nb"], checkpoint_dir=ckpt)
    with pytest.raises(CheckpointError, match="different experiment"):
        run_resilient_sweep([trace], ["dir0b"], checkpoint_dir=ckpt, resume=True)


# ----------------------------------------------------------------------
# Cell-snapshot validation
# ----------------------------------------------------------------------

def test_cell_state_roundtrip_and_clear(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpt")
    assert manager.load_cell_state() is None
    state = {"scheme": "dir1nb", "records_done": 42}
    manager.save_cell_state(state)
    assert manager.load_cell_state() == state
    manager.clear_cell_state()
    assert manager.load_cell_state() is None
    manager.clear_cell_state()  # idempotent


def test_cell_state_magic_version_and_payload_are_enforced(tmp_path):
    manager = CheckpointManager(tmp_path / "ckpt")
    cell_path = tmp_path / "ckpt" / "cell.pkl"

    cell_path.write_bytes(b"JUNKDATA")
    with pytest.raises(CheckpointError, match="bad magic"):
        manager.load_cell_state()

    cell_path.write_bytes(CELL_STATE_MAGIC + bytes([CELL_STATE_VERSION + 1]))
    with pytest.raises(CheckpointError, match="version"):
        manager.load_cell_state()

    cell_path.write_bytes(CELL_STATE_MAGIC + bytes([CELL_STATE_VERSION]) + b"\x80junk")
    with pytest.raises(CheckpointError, match="corrupt cell snapshot"):
        manager.load_cell_state()

    blob = CELL_STATE_MAGIC + bytes([CELL_STATE_VERSION]) + pickle.dumps([1, 2])
    cell_path.write_bytes(blob)
    with pytest.raises(CheckpointError, match="not a dict"):
        manager.load_cell_state()


# ----------------------------------------------------------------------
# Windowed checkpointing is invisible in the results
# ----------------------------------------------------------------------

def test_checkpointed_run_matches_plain_run(tmp_path, trace):
    outcome = run_resilient_sweep(
        [trace], ["dir1nb", "dragon"],
        checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_every=123,
    )
    plain = Experiment(traces=[trace], schemes=["dir1nb", "dragon"]).run()
    assert outcome.ok
    for scheme in ("dir1nb", "dragon"):
        assert outcome.result(scheme, trace.name) == plain.result(scheme, trace.name)


def test_resume_of_finished_sweep_recomputes_nothing(tmp_path, trace):
    ckpt = str(tmp_path / "ckpt")
    first = run_resilient_sweep(
        [trace], ["dir1nb", "dir0b"], checkpoint_dir=ckpt, checkpoint_every=500
    )
    ran = []
    resumed = run_resilient_sweep(
        [trace], ["dir1nb", "dir0b"], checkpoint_dir=ckpt, resume=True,
        progress=lambda scheme, name: ran.append((scheme, name)),
    )
    assert ran == []  # every cell restored from the manifest
    for scheme in ("dir1nb", "dir0b"):
        assert resumed.result(scheme, trace.name) == first.result(scheme, trace.name)


# ----------------------------------------------------------------------
# Kill and resume: the acceptance scenario
# ----------------------------------------------------------------------

def test_kill_and_resume_reproduces_uninterrupted_result(tmp_path, trace):
    """A run killed mid-cell, resumed, equals the uninterrupted run exactly."""
    def killer(num_caches):
        return SaboteurProtocol(
            make_protocol("dir1nb", num_caches), trigger_after=400, mode="kill"
        )
    killer.scheme_key = "dir1nb"

    ckpt = str(tmp_path / "ckpt")
    KillPoint.arm()
    try:
        with pytest.raises(KeyboardInterrupt):
            run_resilient_sweep(
                [trace], [killer], checkpoint_dir=ckpt, checkpoint_every=250
            )
    finally:
        KillPoint.disarm()

    # The "dead process" left a consistent mid-cell snapshot behind.
    state = CheckpointManager(ckpt).load_cell_state()
    assert state is not None
    assert 0 < state["records_done"] < len(trace)

    resumed = run_resilient_sweep(
        [trace], [killer], checkpoint_dir=ckpt, checkpoint_every=250, resume=True
    )
    plain = Experiment(traces=[trace], schemes=["dir1nb"]).run()
    assert resumed.ok
    assert resumed.result("dir1nb", trace.name) == plain.result("dir1nb", trace.name)


def test_midsweep_kill_resumes_only_unfinished_cells(tmp_path, trace):
    def killer(num_caches):
        return SaboteurProtocol(
            make_protocol("dir0b", num_caches), trigger_after=300, mode="kill"
        )
    killer.scheme_key = "dir0b"
    schemes = ["dir1nb", killer]

    ckpt = str(tmp_path / "ckpt")
    KillPoint.arm()
    try:
        with pytest.raises(KeyboardInterrupt):
            run_resilient_sweep(
                [trace], schemes, checkpoint_dir=ckpt, checkpoint_every=200
            )
    finally:
        KillPoint.disarm()

    ran = []
    resumed = run_resilient_sweep(
        [trace], schemes, checkpoint_dir=ckpt, checkpoint_every=200, resume=True,
        progress=lambda scheme, name: ran.append(scheme),
    )
    assert ran == ["dir0b"]  # dir1nb came straight from the manifest
    plain = Experiment(traces=[trace], schemes=["dir1nb", "dir0b"]).run()
    for scheme in ("dir1nb", "dir0b"):
        assert resumed.result(scheme, trace.name) == plain.result(scheme, trace.name)
