"""The Markdown report emitter."""

from repro.report.experiments import PaperExperiments
from repro.report.markdown import render_report, write_report


def test_render_contains_every_artifact():
    experiments = PaperExperiments(length=5_000)
    report = render_report(experiments)
    for heading in (
        "Fundamental bus timing",
        "Bus cycle costs",
        "Trace characteristics",
        "Event frequencies",
        "Bus cycle breakdown",
        "Invalidation histogram",
        "Cycles per transaction",
        "Overhead sensitivity",
        "Spin lock impact",
        "Dir1B broadcast model",
        "Directory storage",
        "System bound",
    ):
        assert heading in report, heading
    assert "trace length: 5,000" in report
    assert report.count("```text") == report.count("```") / 2


def test_write_report_creates_file(tmp_path):
    path = write_report(tmp_path / "REPORT.md", length=5_000)
    text = path.read_text()
    assert text.startswith("# Directory Schemes for Cache Coherence")
    assert "ISCA 1988" in text


def test_write_report_reuses_prewarmed_experiments(tmp_path):
    experiments = PaperExperiments(length=5_000)
    experiments.experiment  # warm
    path = write_report(tmp_path / "R.md", experiments=experiments)
    assert path.exists()
