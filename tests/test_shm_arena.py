"""Shared-memory arena lifecycle and batched-dispatch parity tests.

The :class:`~repro.engine.shm.TraceArena` is the pooled backend's
pickle-free trace transport; these tests hold its lifecycle guarantees
(create/attach/dispose, no leaked ``/dev/shm`` segments, crash
containment) and that batched dispatch over the arena produces exactly
the outcomes of serial in-process execution.
"""

import multiprocessing
import os
import signal

import pytest

from repro.core.simulator import Simulator
from repro.engine.backends import (
    InlineBackend,
    ProcessPoolBackend,
    _POOLS,
    execute_batch,
    shutdown_pools,
)
from repro.engine.shm import TraceArena, attach_arena, detach_all
from repro.protocols.registry import available_protocols
from repro.trace.columnar import ColumnarTrace
from repro.workloads.registry import make_trace

TRACE_LENGTH = 2500


def _shm_segments() -> set[str]:
    """Names of live POSIX shared-memory segments (Linux: /dev/shm)."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:
        return set()


@pytest.fixture(scope="module")
def columnar():
    return ColumnarTrace.from_trace(make_trace("pops", length=TRACE_LENGTH, seed=3))


@pytest.fixture(scope="module")
def columnar_thor():
    return ColumnarTrace.from_trace(make_trace("thor", length=TRACE_LENGTH, seed=5))


# ----------------------------------------------------------------------
# Arena lifecycle
# ----------------------------------------------------------------------


def test_arena_round_trips_traces(columnar, columnar_thor):
    arena = TraceArena.create([columnar, columnar_thor])
    assert arena is not None
    try:
        assert arena.trace_from(0) == columnar
        assert arena.trace_from(1) == columnar_thor
        # Reconstruction is memoized per index.
        assert arena.trace_from(0) is arena.trace_from(0)
    finally:
        arena.dispose()


def test_arena_traces_are_zero_copy_views(columnar):
    arena = TraceArena.create([columnar])
    try:
        rebuilt = arena.trace_from(0)
        assert isinstance(rebuilt.address, memoryview)
        assert rebuilt.address.format == "Q"
        assert isinstance(rebuilt.type_code, memoryview)
        del rebuilt  # release the views so dispose() can unmap cleanly
    finally:
        arena.dispose()


def test_arena_descriptor_is_small_and_picklable(columnar, columnar_thor):
    import pickle

    arena = TraceArena.create([columnar, columnar_thor])
    try:
        blob = pickle.dumps(arena.descriptor)
        # The whole point: descriptor size is independent of trace length.
        assert len(blob) < 2048
    finally:
        arena.dispose()


def test_dispose_unlinks_segment(columnar):
    before = _shm_segments()
    arena = TraceArena.create([columnar])
    name = arena.descriptor["segment"]
    assert name in _shm_segments()
    arena.dispose()
    assert name not in _shm_segments()
    assert _shm_segments() <= before


def test_attach_after_unlink_raises(columnar):
    arena = TraceArena.create([columnar])
    descriptor = arena.descriptor
    arena.dispose()
    detach_all()
    with pytest.raises(FileNotFoundError):
        attach_arena(descriptor)


def test_attach_memoizes_and_drops_stale_arenas(columnar, columnar_thor):
    first = TraceArena.create([columnar])
    second = TraceArena.create([columnar_thor])
    try:
        attached_first = attach_arena(first.descriptor)
        assert attach_arena(first.descriptor) is attached_first
        # Attaching a different segment replaces the memoized one.
        attached_second = attach_arena(second.descriptor)
        assert attached_second is not attached_first
        assert attach_arena(second.descriptor) is attached_second
    finally:
        detach_all()
        first.dispose()
        second.dispose()


def test_simulation_over_attached_arena_matches_original(columnar):
    arena = TraceArena.create([columnar])
    try:
        attached = attach_arena(arena.descriptor)
        simulator = Simulator()
        assert simulator.run(attached.trace_from(0), "dir0b") == simulator.run(
            columnar, "dir0b"
        )
    finally:
        detach_all()
        arena.dispose()


def test_execute_batch_reads_traces_from_arena(columnar):
    import pickle

    arena = TraceArena.create([columnar])
    try:
        from repro.engine.policies import RetryPolicy

        payload = {
            "simulator": Simulator(),
            "retry": RetryPolicy(),
            "arena": arena.descriptor,
            "cells": [
                {"spec": pickle.dumps("dir0b"), "key": "dir0b", "trace_index": 0},
                {"spec": pickle.dumps("wti"), "key": "wti", "trace_index": 0},
            ],
        }
        payloads = execute_batch(payload)
        assert [p["status"] for p in payloads] == ["ok", "ok"]
        serial = Simulator().run(columnar, "dir0b")
        from repro.runner.checkpoint import result_to_json

        assert payloads[0]["result"] == result_to_json(serial)
    finally:
        detach_all()
        arena.dispose()


# ----------------------------------------------------------------------
# Pooled sweeps: no leaked segments, parity, crash containment
# ----------------------------------------------------------------------


def _cells(*traces):
    return [(scheme, scheme, trace) for scheme in available_protocols() for trace in traces]


def test_pooled_sweep_leaves_no_shm_segments(columnar, columnar_thor):
    before = _shm_segments()
    backend = ProcessPoolBackend(jobs=2)
    outcomes = backend.run(Simulator(), _cells(columnar, columnar_thor))
    assert all(payload["status"] == "ok" for payload in outcomes.values())
    assert _shm_segments() <= before


@pytest.mark.parametrize("batch", [None, 1, 5])
def test_batched_pool_matches_inline(columnar, columnar_thor, batch):
    """Batched shm dispatch == serial in-process, across all protocols."""
    cells = _cells(columnar, columnar_thor)
    inline = InlineBackend().run(Simulator(), cells)
    pooled = ProcessPoolBackend(jobs=2, batch=batch).run(Simulator(), cells)
    assert pooled == inline


class _KillWorkerSpec:
    """A protocol factory that SIGKILLs pool workers but runs in the parent."""

    scheme_key = "killer"

    def __call__(self, num_caches):
        if multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        from repro.protocols.registry import make_protocol

        return make_protocol("wti", num_caches)


def test_worker_crash_is_contained_and_leaks_nothing(columnar):
    """A worker dying mid-batch falls back to the parent, cleans up shm,
    and retires the broken pool so the next sweep gets a fresh one."""
    before = _shm_segments()
    shutdown_pools()
    backend = ProcessPoolBackend(jobs=2)
    cells = [(_KillWorkerSpec(), "killer", columnar), ("dir0b", "dir0b", columnar)]
    outcomes = backend.run(Simulator(), cells)
    assert outcomes[0]["status"] == "ok"  # re-ran in the parent
    assert outcomes[1]["status"] == "ok"
    assert _shm_segments() <= before
    assert 2 not in _POOLS  # the broken pool was retired

    # The next sweep transparently warms a fresh pool.
    again = backend.run(Simulator(), [("wti", "wti", columnar)])
    assert again[0]["status"] == "ok"
    assert _shm_segments() <= before


def test_shutdown_pools_is_idempotent():
    shutdown_pools()
    shutdown_pools()
    assert not _POOLS
