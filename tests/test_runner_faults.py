"""Fault injection: every injected fault class is caught and contained."""

import pickle

import pytest

from repro.core.invariants import InvariantChecker
from repro.core.simulator import simulate
from repro.errors import InvariantViolation, TraceFormatError, TransientError
from repro.protocols.registry import make_protocol
from repro.runner.faults import (
    TEXT_CORRUPTION_MODES,
    FaultInjector,
    FlakyReader,
    FlakyTrace,
    KillPoint,
    SaboteurProtocol,
    inject_illegal_dirty_copies,
)
from repro.trace.io import (
    read_trace_binary,
    read_trace_file,
    write_trace_binary,
    write_trace_file,
)
from repro.workloads.registry import make_trace


@pytest.fixture
def trace():
    return make_trace("pops", length=1200, seed=11)


# ----------------------------------------------------------------------
# Corrupt text records
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mode", TEXT_CORRUPTION_MODES)
def test_text_corruption_raises_trace_format_error(tmp_path, trace, mode):
    path = tmp_path / "t.trace"
    write_trace_file(trace.records, path)
    line = FaultInjector(seed=5).corrupt_text_trace(path, mode=mode)

    with pytest.raises(TraceFormatError) as excinfo:
        list(read_trace_file(path))
    # The error pinpoints the corrupted file line.
    assert excinfo.value.path == str(path)
    assert excinfo.value.line == line


def test_text_corruption_is_deterministic_under_seed(tmp_path, trace):
    paths = []
    for name in ("a.trace", "b.trace"):
        path = tmp_path / name
        write_trace_file(trace.records, path)
        FaultInjector(seed=42).corrupt_text_trace(path, mode="garbage")
        paths.append(path)
    assert paths[0].read_text() == paths[1].read_text()


def test_bit_flip_address_changes_exactly_one_bit(trace):
    injector = FaultInjector(seed=3)
    record = trace.records[0]
    flipped = injector.bit_flip_address(record, bit=7)
    assert flipped.address == record.address ^ (1 << 7)
    assert flipped.cpu == record.cpu and flipped.ref_type is record.ref_type


# ----------------------------------------------------------------------
# Corrupt binary traces
# ----------------------------------------------------------------------

def test_truncated_binary_header_raises(tmp_path, trace):
    path = tmp_path / "t.bin"
    write_trace_binary(trace.records, path)
    FaultInjector().truncate_binary_trace(path, keep_bytes=7)  # mid-header
    with pytest.raises(TraceFormatError, match="truncated"):
        list(read_trace_binary(path))


def test_truncated_binary_body_raises(tmp_path, trace):
    path = tmp_path / "t.bin"
    write_trace_binary(trace.records, path)
    size = path.stat().st_size
    FaultInjector().truncate_binary_trace(path, keep_bytes=size - 5)
    with pytest.raises(TraceFormatError, match="truncated"):
        list(read_trace_binary(path))


def test_corrupt_binary_type_code_raises(tmp_path, trace):
    path = tmp_path / "t.bin"
    write_trace_binary(trace.records, path)
    FaultInjector().corrupt_binary_type_code(path, record_index=3)
    with pytest.raises(TraceFormatError, match="type code"):
        list(read_trace_binary(path))


# ----------------------------------------------------------------------
# Flaky readers
# ----------------------------------------------------------------------

def test_flaky_reader_fails_then_recovers(trace):
    reader = FlakyReader(trace.records, fail_after=10, fail_times=2)
    for _ in range(2):
        with pytest.raises(TransientError):
            list(reader)
    assert list(reader) == list(trace.records)
    assert reader.passes == 3


def test_flaky_trace_metadata_never_trips(trace):
    flaky = FlakyTrace(trace, fail_after=0, fail_times=1)
    # pids/cpus/len must work without consuming the failure budget ...
    assert flaky.pids == trace.pids
    assert flaky.cpus == trace.cpus
    assert len(flaky) == len(trace)
    # ... so streaming still trips exactly once.
    with pytest.raises(TransientError):
        list(flaky.records)
    assert list(flaky.records) == list(trace.records)


# ----------------------------------------------------------------------
# Illegal protocol state
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheme", ["dir1nb", "dir0b", "wti", "dragon"])
def test_injected_dirty_copies_violate_invariants(scheme):
    protocol = make_protocol(scheme, 4)
    inject_illegal_dirty_copies(protocol, block=0x40)
    with pytest.raises(InvariantViolation):
        InvariantChecker(protocol).check_block(0x40)


def test_saboteur_illegal_state_caught_mid_simulation(trace):
    saboteur = SaboteurProtocol(
        make_protocol("dir1nb", len(trace.pids)), trigger_after=50,
        mode="illegal-state",
    )
    with pytest.raises(InvariantViolation):
        simulate(trace, saboteur, check_invariants=True)


def test_saboteur_transient_mode_raises_once(trace):
    saboteur = SaboteurProtocol(
        make_protocol("dir0b", len(trace.pids)), trigger_after=25,
        mode="transient", failures_left=1,
    )
    with pytest.raises(TransientError):
        simulate(trace, saboteur)
    # The fault fired; the wrapper is transparent afterwards.
    fresh = SaboteurProtocol(
        make_protocol("dir0b", len(trace.pids)), trigger_after=25,
        mode="transient", failures_left=0,
    )
    result = simulate(trace, fresh)
    assert result.total_refs == len(trace)


def test_saboteur_kill_mode_respects_kill_point(trace):
    saboteur = SaboteurProtocol(
        make_protocol("dir0b", len(trace.pids)), trigger_after=25, mode="kill"
    )
    KillPoint.arm()
    try:
        with pytest.raises(KeyboardInterrupt):
            simulate(trace, saboteur)
    finally:
        KillPoint.disarm()


def test_saboteur_survives_pickling(trace):
    saboteur = SaboteurProtocol(
        make_protocol("dir1nb", 4), trigger_after=99, mode="illegal-state"
    )
    clone = pickle.loads(pickle.dumps(saboteur))
    assert clone.trigger_after == 99 and clone.mode == "illegal-state"
    assert clone.num_caches == 4  # delegation works after unpickling


def test_saboteur_matches_plain_protocol_when_disarmed(trace):
    plain = simulate(trace, "dir1nb")
    wrapped = SaboteurProtocol(
        make_protocol("dir1nb", len(trace.pids)),
        trigger_after=10 ** 9,  # never triggers
    )
    sabotaged = simulate(trace, wrapped)
    sabotaged.scheme = plain.scheme
    assert sabotaged == plain
