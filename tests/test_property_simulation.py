"""Property-based tests at the simulation and cost layers."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import simulate
from repro.cost.bus import non_pipelined_bus, pipelined_bus
from repro.cost.timing import BusTiming
from repro.protocols.events import EventType
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace

records_strategy = st.lists(
    st.builds(
        TraceRecord,
        cpu=st.integers(0, 3),
        pid=st.integers(0, 3),
        ref_type=st.sampled_from([RefType.INSTR, RefType.READ, RefType.WRITE]),
        address=st.integers(0, 0x3FF).map(lambda x: x * 4),
    ),
    min_size=1,
    max_size=80,
)

SCHEMES = ("dir1nb", "wti", "dir0b", "dragon", "dirnnb")


@settings(max_examples=50, deadline=None)
@given(records=records_strategy, scheme=st.sampled_from(SCHEMES))
def test_event_counts_partition_the_trace(records, scheme):
    """Every reference is classified into exactly one event."""
    trace = Trace("prop", records)
    result = simulate(trace, scheme, check_invariants=True)
    assert sum(result.event_counts.values()) == len(records)
    assert result.total_refs == len(records)


@settings(max_examples=50, deadline=None)
@given(records=records_strategy, scheme=st.sampled_from(SCHEMES))
def test_costs_are_non_negative_and_ordered(records, scheme):
    """Non-pipelined cycles always >= pipelined cycles (cost dominance)."""
    trace = Trace("prop", records)
    result = simulate(trace, scheme)
    pipe = result.bus_cycles_per_reference(pipelined_bus())
    nonpipe = result.bus_cycles_per_reference(non_pipelined_bus())
    assert 0 <= pipe <= nonpipe


@settings(max_examples=50, deadline=None)
@given(records=records_strategy)
def test_reads_and_writes_rollup_to_trace_mix(records):
    """Frequency roll-ups reproduce the trace's reference mix exactly."""
    trace = Trace("prop", records)
    frequencies = simulate(trace, "dir0b").frequencies()
    reads = sum(1 for r in records if r.ref_type is RefType.READ)
    writes = sum(1 for r in records if r.ref_type is RefType.WRITE)
    assert frequencies.count(EventType.INSTR) == len(records) - reads - writes
    read_events = sum(
        frequencies.count(e)
        for e in (
            EventType.RD_HIT,
            EventType.RM_BLK_CLN,
            EventType.RM_BLK_DRTY,
            EventType.RM_FIRST_REF,
        )
    )
    assert read_events == reads


@settings(max_examples=50, deadline=None)
@given(records=records_strategy, scheme=st.sampled_from(SCHEMES))
def test_merge_of_split_trace_equals_whole(records, scheme):
    """Simulating two halves (fresh state) and merging equals the sum of
    the halves' measurements."""
    half = len(records) // 2
    first = simulate(Trace("a", records[:half]), scheme) if half else None
    second = simulate(Trace("b", records[half:]), scheme)
    results = [r for r in (first, second) if r is not None and r.total_refs]
    if not results:
        return
    merged = merge_results(results, name="whole")
    assert merged.total_refs == sum(r.total_refs for r in results)
    assert merged.bus_transactions == sum(r.bus_transactions for r in results)


@settings(max_examples=50, deadline=None)
@given(
    records=records_strategy,
    words=st.integers(1, 16),
    wait_memory=st.integers(0, 8),
)
def test_cost_monotone_in_timing_parameters(records, words, wait_memory):
    """Raising any Table 1 timing never lowers a scheme's cost."""
    trace = Trace("prop", records)
    result = simulate(trace, "dir0b")
    base = BusTiming()
    slower = BusTiming(
        words_per_block=base.words_per_block + 0,
        wait_memory=base.wait_memory + wait_memory,
        transfer_word=base.transfer_word,
    )
    assert result.bus_cycles_per_reference(
        non_pipelined_bus(slower)
    ) >= result.bus_cycles_per_reference(non_pipelined_bus(base))


@settings(max_examples=30, deadline=None)
@given(records=records_strategy)
def test_sharer_views_agree_when_pid_equals_cpu(records):
    """If every record has pid == cpu, both sharing views coincide."""
    aligned = [r.with_pid(r.cpu) for r in records]
    trace = Trace("prop", aligned)
    by_pid = simulate(trace, "dir0b", sharer_key="pid")
    by_cpu = simulate(trace, "dir0b", sharer_key="cpu")
    assert Counter(by_pid.event_counts) == Counter(by_cpu.event_counts)


@settings(max_examples=30, deadline=None)
@given(records=records_strategy, q=st.floats(0.0, 4.0))
def test_overhead_line_exactness(records, q):
    trace = Trace("prop", records)
    result = simulate(trace, "dragon")
    bus = pipelined_bus()
    expected = (
        result.bus_cycles_per_reference(bus)
        + q * result.transactions_per_reference()
    )
    assert abs(result.cycles_with_overhead(bus, q) - expected) < 1e-12
