"""DiriB / DiriNB limited-pointer protocols (Section 6)."""

from repro.memory.line import LineState
from repro.protocols.directory.diri import DirIBProtocol, DirINBProtocol
from repro.protocols.events import EventType, OpKind

from conftest import drive


def op_units(result, kind):
    return sum(op.count for op in result.ops if op.kind is kind)


class TestDirIB:
    def test_within_capacity_uses_sequential_invalidates(self):
        protocol = DirIBProtocol(4, num_pointers=2)
        results = drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
        final = results[2]
        assert op_units(final, OpKind.INVALIDATE) == 1
        assert op_units(final, OpKind.BROADCAST_INVALIDATE) == 0

    def test_overflow_falls_back_to_broadcast(self):
        protocol = DirIBProtocol(4, num_pointers=1)
        results = drive(
            protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1), (0, "w", 1)]
        )
        final = results[3]
        assert op_units(final, OpKind.BROADCAST_INVALIDATE) == 1
        assert op_units(final, OpKind.INVALIDATE) == 0
        # All other copies are gone regardless of the mechanism.
        assert protocol.holders(1) == {0: LineState.DIRTY}

    def test_no_pointer_evictions_ever(self):
        protocol = DirIBProtocol(4, num_pointers=1)
        results = drive(
            protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1), (3, "r", 1)]
        )
        assert all(result.pointer_evictions == 0 for result in results)
        assert len(protocol.holders(1)) == 4

    def test_scheme_label(self):
        assert DirIBProtocol(4, num_pointers=2).scheme_label == "Dir2B"


class TestDirINB:
    def test_copy_bound_enforced_by_eviction(self):
        protocol = DirINBProtocol(4, num_pointers=2)
        results = drive(
            protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1)]
        )
        final = results[2]
        assert final.pointer_evictions == 1
        assert op_units(final, OpKind.INVALIDATE) == 1
        assert len(protocol.holders(1)) == 2

    def test_fifo_eviction_picks_oldest_sharer(self):
        protocol = DirINBProtocol(4, num_pointers=2)
        drive(protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1)])
        # Cache 0 (oldest pointer) was displaced.
        assert set(protocol.holders(1)) == {1, 2}

    def test_displaced_sharer_remisses(self):
        protocol = DirINBProtocol(4, num_pointers=2)
        results = drive(
            protocol,
            [(0, "r", 1), (1, "r", 1), (2, "r", 1), (0, "r", 1)],
        )
        # Cache 0 must re-miss: the pointer eviction cost it its copy.
        assert results[3].event is EventType.RM_BLK_CLN

    def test_never_broadcasts(self):
        protocol = DirINBProtocol(4, num_pointers=1)
        results = drive(
            protocol,
            [(0, "r", 1), (1, "r", 1), (2, "w", 1), (3, "r", 1), (0, "w", 1)],
        )
        for result in results:
            assert op_units(result, OpKind.BROADCAST_INVALIDATE) == 0

    def test_max_copies_attribute_matches_pointers(self):
        assert DirINBProtocol(4, num_pointers=3).max_copies == 3

    def test_i_equals_n_behaves_like_full_map(self):
        """With i = n the pointer array never overflows."""
        protocol = DirINBProtocol(4, num_pointers=4)
        results = drive(
            protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1), (3, "r", 1)]
        )
        assert all(result.pointer_evictions == 0 for result in results)
        assert len(protocol.holders(1)) == 4

    def test_scheme_label(self):
        assert DirINBProtocol(4, num_pointers=3).scheme_label == "Dir3NB"
