"""Closed-form models vs. the simulator on the regular microbenchmarks.

Where the sharing pattern is exactly regular, the analytical prediction
and the trace-driven measurement must agree — strong end-to-end
validation of protocols, cost models, and workload generators at once.
"""

import pytest

from repro.analysis.analytic import (
    MigratoryPrediction,
    ProducerConsumerPrediction,
    ReadOnlyDir1NBPrediction,
)
from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED as BUS
from repro.protocols.events import EventType
from repro.trace.stats import compute_statistics
from repro.workloads.micro import migratory_trace, producer_consumer_trace, readonly_trace

LENGTH = 20_000


def data_fraction(trace):
    stats = compute_statistics(trace.records, trace.name)
    return stats.read_fraction + stats.write_fraction


class TestMigratory:
    VISIT = 6

    @pytest.fixture(scope="class")
    def trace(self):
        return migratory_trace(length=LENGTH, visit_refs=self.VISIT)

    def test_event_rates(self, trace):
        prediction = MigratoryPrediction(self.VISIT)
        result = simulate(trace, "dir0b")
        freq = result.frequencies()
        scale = data_fraction(trace)
        assert freq.fraction(EventType.RM_BLK_DRTY) == pytest.approx(
            prediction.rm_blk_drty_per_data_ref * scale, rel=0.05
        )
        assert freq.fraction(EventType.WH_BLK_CLN) == pytest.approx(
            prediction.wh_blk_cln_per_data_ref * scale, rel=0.05
        )

    @pytest.mark.parametrize(
        "scheme,method",
        [
            ("dir0b", "dir0b_cycles_per_data_ref"),
            ("dirnnb", "dirnnb_cycles_per_data_ref"),
            ("dragon", "dragon_cycles_per_data_ref"),
        ],
    )
    def test_cycle_costs(self, trace, scheme, method):
        prediction = getattr(MigratoryPrediction(self.VISIT), method)(BUS)
        measured = simulate(trace, scheme).bus_cycles_per_reference(BUS)
        assert measured == pytest.approx(
            prediction * data_fraction(trace), rel=0.06
        )


class TestProducerConsumer:
    CONSUMERS = 3
    READS = 3

    @pytest.fixture(scope="class")
    def trace(self):
        return producer_consumer_trace(
            num_processes=self.CONSUMERS + 1,
            length=LENGTH,
            reads_per_write=self.READS,
        )

    @pytest.mark.parametrize(
        "scheme,method",
        [
            ("dir0b", "dir0b_cycles_per_data_ref"),
            ("dirnnb", "dirnnb_cycles_per_data_ref"),
            ("dragon", "dragon_cycles_per_data_ref"),
        ],
    )
    def test_cycle_costs(self, trace, scheme, method):
        prediction = getattr(
            ProducerConsumerPrediction(self.CONSUMERS, self.READS), method
        )(BUS)
        measured = simulate(trace, scheme).bus_cycles_per_reference(BUS)
        # The model is steady-state; the measurement carries an O(blocks
        # x consumers / length) warm-up term (each consumer's first
        # touch of each buffer slot), hence the wider tolerance.
        assert measured == pytest.approx(
            prediction * data_fraction(trace), rel=0.15
        )

    def test_broadcast_advantage_formula(self):
        """Dir0B beats DirnNB by (consumers - 1) invalidation messages
        per produced slot -- exactly."""
        prediction = ProducerConsumerPrediction(self.CONSUMERS, self.READS)
        gap = prediction.dirnnb_cycles_per_data_ref(
            BUS
        ) - prediction.dir0b_cycles_per_data_ref(BUS)
        expected = (self.CONSUMERS * BUS.invalidate - BUS.broadcast_cost) / (
            prediction.refs_per_cycle
        )
        assert gap == pytest.approx(expected)


class TestReadOnly:
    def test_dir1nb_bouncing(self):
        processes = 4
        trace = readonly_trace(num_processes=processes, length=LENGTH)
        prediction = ReadOnlyDir1NBPrediction(processes)
        measured = simulate(trace, "dir1nb").bus_cycles_per_reference(BUS)
        expected = prediction.cycles_per_data_ref(BUS) * data_fraction(trace)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_miss_probability_grows_with_processes(self):
        assert ReadOnlyDir1NBPrediction(2).miss_probability == pytest.approx(0.5)
        assert ReadOnlyDir1NBPrediction(8).miss_probability == pytest.approx(7 / 8)


class TestValidation:
    def test_migratory_rejects_odd_visits(self):
        with pytest.raises(ValueError):
            MigratoryPrediction(5)

    def test_producer_consumer_rejects_zero(self):
        with pytest.raises(ValueError):
            ProducerConsumerPrediction(0, 3)

    def test_readonly_rejects_zero(self):
        with pytest.raises(ValueError):
            ReadOnlyDir1NBPrediction(0)
