"""Trace statistics (paper Table 3 summaries)."""

import pytest

from repro.trace.record import RefType, TraceRecord
from repro.trace.stats import compute_statistics

from conftest import make_records


def test_counts_by_type():
    records = make_records(
        [(0, 0, "i", 0), (0, 0, "i", 4), (0, 0, "r", 8), (1, 1, "w", 12)]
    )
    stats = compute_statistics(records, "t")
    assert stats.total_refs == 4
    assert stats.instr_refs == 2
    assert stats.data_reads == 1
    assert stats.data_writes == 1
    assert stats.data_refs == 2


def test_fractions_sum_to_one():
    records = make_records([(0, 0, "i", 0), (0, 0, "r", 4), (0, 0, "w", 8)])
    stats = compute_statistics(records, "t")
    total = stats.instr_fraction + stats.read_fraction + stats.write_fraction
    assert total == pytest.approx(1.0)


def test_user_system_split():
    records = [
        TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=0, system=True),
        TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=4),
    ]
    stats = compute_statistics(records, "t")
    assert stats.system_refs == 1
    assert stats.user_refs == 1
    assert stats.system_fraction == pytest.approx(0.5)


def test_lock_and_spin_counting():
    records = [
        TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=0, lock=True),
        TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=0, lock=True, spin=True),
        TraceRecord(cpu=0, pid=0, ref_type=RefType.READ, address=4),
    ]
    stats = compute_statistics(records, "t")
    assert stats.lock_refs == 2
    assert stats.spin_reads == 1
    assert stats.spin_read_fraction_of_reads == pytest.approx(1 / 3)


def test_read_write_ratio_infinite_when_no_writes():
    records = make_records([(0, 0, "r", 0)])
    stats = compute_statistics(records, "t")
    assert stats.read_write_ratio == float("inf")


def test_per_cpu_and_per_pid_counts():
    records = make_records([(0, 5, "r", 0), (0, 6, "r", 4), (1, 5, "w", 8)])
    stats = compute_statistics(records, "t")
    assert stats.refs_per_cpu == {0: 2, 1: 1}
    assert stats.refs_per_pid == {5: 2, 6: 1}


def test_empty_trace_statistics():
    stats = compute_statistics([], "empty")
    assert stats.total_refs == 0
    assert stats.instr_fraction == 0.0
    assert stats.spin_read_fraction_of_reads == 0.0


def test_table_row_units_are_thousands():
    records = make_records([(0, 0, "r", i * 4) for i in range(2000)])
    stats = compute_statistics(records, "big")
    row = stats.as_table_row()
    assert row["refs_k"] == pytest.approx(2.0)
    assert row["drd_k"] == pytest.approx(2.0)


def test_workload_statistics_match_config(pops_small):
    stats = compute_statistics(pops_small.records, pops_small.name)
    # The POPS analogue targets ~52% instructions and a spin-heavy
    # read stream (roughly one-third of reads).
    assert 0.48 < stats.instr_fraction < 0.56
    assert 0.25 < stats.spin_read_fraction_of_reads < 0.45
    assert stats.system_fraction > 0.05
