"""EventFrequencies roll-ups and miss-rate decomposition."""

from collections import Counter

import pytest

from repro.core.frequencies import EventFrequencies
from repro.protocols.events import EventType


def make_frequencies(**counts):
    mapping = {EventType(key.replace("_", "-")): value for key, value in counts.items()}
    total = sum(mapping.values())
    return EventFrequencies(Counter(mapping), total)


def test_percent_and_fraction():
    freq = make_frequencies(instr=50, **{"rd_hit": 49}, **{"rm_blk_cln": 1})
    assert freq.fraction(EventType.INSTR) == pytest.approx(0.5)
    assert freq.percent(EventType.RM_BLK_CLN) == pytest.approx(1.0)
    assert freq.count(EventType.WH_LOCAL) == 0


def test_read_write_rollups():
    freq = make_frequencies(
        instr=40, rd_hit=30, rm_blk_cln=5, rm_first_ref=5,
        wh_blk_drty=10, wm_blk_cln=5, wm_first_ref=5,
    )
    assert freq.read_fraction == pytest.approx(0.40)
    assert freq.write_fraction == pytest.approx(0.20)
    assert freq.read_miss_fraction == pytest.approx(0.05)
    assert freq.write_miss_fraction == pytest.approx(0.05)
    assert freq.write_hit_fraction == pytest.approx(0.10)
    assert freq.first_ref_fraction == pytest.approx(0.10)


def test_first_refs_not_counted_as_coherence_misses():
    freq = make_frequencies(rm_first_ref=10, wm_first_ref=10)
    assert freq.read_miss_fraction == 0.0
    assert freq.write_miss_fraction == 0.0


def test_data_miss_rate_is_relative_to_data_refs():
    freq = make_frequencies(instr=50, rd_hit=40, rm_blk_cln=10)
    # 10 misses over 50 data references.
    assert freq.data_miss_rate() == pytest.approx(0.2)


def test_coherence_miss_fraction_vs_native():
    dir0b = make_frequencies(instr=50, rd_hit=39, rm_blk_cln=11)
    dragon = make_frequencies(instr=50, rd_hit=45, rm_blk_cln=5)
    assert dir0b.coherence_miss_fraction(dragon) == pytest.approx(0.06)
    # Never negative, even if the scheme beats the native baseline.
    assert dragon.coherence_miss_fraction(dir0b) == 0.0


def test_counts_cannot_exceed_total():
    with pytest.raises(ValueError):
        EventFrequencies(Counter({EventType.INSTR: 10}), 5)


def test_empty_frequencies_are_all_zero():
    freq = EventFrequencies(Counter(), 0)
    assert freq.fraction(EventType.INSTR) == 0.0
    assert freq.data_miss_rate() == 0.0


def test_as_percent_dict_contains_rollups():
    freq = make_frequencies(instr=50, rd_hit=50)
    table = freq.as_percent_dict()
    assert table["instr"] == pytest.approx(50.0)
    assert table["read"] == pytest.approx(50.0)
    assert "rd-miss(rm)" in table and "wrt-hit(wh)" in table
