"""Text and binary trace serialization."""

import pytest

from repro.errors import TraceFormatError
from repro.trace.io import (
    DecodeReport,
    LazyTraceFile,
    format_record,
    is_binary_trace,
    load_trace,
    parse_record,
    read_trace_binary,
    read_trace_file,
    write_trace_binary,
    write_trace_file,
)
from repro.trace.record import RefType, TraceRecord


def _sample_records():
    return [
        TraceRecord(cpu=0, pid=12, ref_type=RefType.READ, address=0x00400A10),
        TraceRecord(cpu=1, pid=13, ref_type=RefType.WRITE, address=0x7FFE0040, system=True),
        TraceRecord(
            cpu=2, pid=12, ref_type=RefType.READ, address=0x00500000, lock=True, spin=True
        ),
        TraceRecord(cpu=3, pid=14, ref_type=RefType.INSTR, address=0x00010000),
    ]


def test_format_and_parse_round_trip():
    for record in _sample_records():
        assert parse_record(format_record(record)) == record


def test_text_file_round_trip(tmp_path):
    path = tmp_path / "trace.txt"
    records = _sample_records()
    assert write_trace_file(records, path) == len(records)
    assert list(read_trace_file(path)) == records


def test_text_file_skips_comments_and_blanks(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# header\n\n0 1 r 0x10\n")
    records = list(read_trace_file(path))
    assert len(records) == 1
    assert records[0].address == 0x10


def test_text_parse_errors_carry_location(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("0 1 r 0x10\nbogus line here is bad\n")
    with pytest.raises(TraceFormatError, match="trace.txt:2"):
        list(read_trace_file(path))


def test_parse_rejects_wrong_field_count():
    with pytest.raises(TraceFormatError):
        parse_record("0 1 r")


def test_parse_rejects_bad_type_code():
    with pytest.raises(TraceFormatError):
        parse_record("0 1 z 0x10")


def test_parse_rejects_unknown_flag():
    with pytest.raises(TraceFormatError):
        parse_record("0 1 r 0x10 q")


def test_parse_rejects_spin_without_lock():
    with pytest.raises(TraceFormatError):
        parse_record("0 1 r 0x10 p")


def test_binary_round_trip(tmp_path):
    path = tmp_path / "trace.bin"
    records = _sample_records()
    assert write_trace_binary(records, path) == len(records)
    assert list(read_trace_binary(path)) == records


def test_binary_detects_bad_magic(tmp_path):
    path = tmp_path / "trace.bin"
    path.write_bytes(b"NOPE" + bytes(12))
    with pytest.raises(TraceFormatError, match="magic"):
        list(read_trace_binary(path))


def test_binary_detects_truncation(tmp_path):
    path = tmp_path / "trace.bin"
    write_trace_binary(_sample_records(), path)
    data = path.read_bytes()
    path.write_bytes(data[:-5])
    with pytest.raises(TraceFormatError, match="truncated"):
        list(read_trace_binary(path))


def test_binary_empty_trace(tmp_path):
    path = tmp_path / "empty.bin"
    assert write_trace_binary([], path) == 0
    assert list(read_trace_binary(path)) == []


def test_gzip_text_round_trip(tmp_path):
    path = tmp_path / "trace.txt.gz"
    records = _sample_records()
    assert write_trace_file(records, path) == len(records)
    assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
    assert list(read_trace_file(path)) == records


def test_gzip_binary_round_trip(tmp_path):
    path = tmp_path / "trace.bin.gz"
    records = _sample_records()
    assert write_trace_binary(records, path) == len(records)
    assert list(read_trace_binary(path)) == records


def test_gzip_is_smaller_for_large_traces(tmp_path):
    records = _sample_records() * 500
    plain = tmp_path / "big.trace"
    packed = tmp_path / "big.trace.gz"
    write_trace_file(records, plain)
    write_trace_file(records, packed)
    assert packed.stat().st_size < plain.stat().st_size / 3


# ----------------------------------------------------------------------
# Located errors and lenient decoding
# ----------------------------------------------------------------------

def test_located_error_exposes_path_and_line(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# header\n0 1 r 0x10\n0 1 z 0x20\n")
    with pytest.raises(TraceFormatError) as excinfo:
        list(read_trace_file(path))
    assert excinfo.value.path == str(path)
    assert excinfo.value.line == 3  # 1-based, comments counted


def test_lenient_decode_skips_within_budget(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("0 1 r 0x10\nbogus\n0 1 w 0x20\nalso bogus\n0 1 r 0x30\n")
    report = DecodeReport()
    records = list(read_trace_file(path, lenient=True, report=report))
    assert [record.address for record in records] == [0x10, 0x20, 0x30]
    assert report.records == 3
    assert report.skipped == 2
    assert f"{path}:2" in report.errors[0]
    assert "skipped 2 malformed lines" in report.summary()


def test_lenient_decode_budget_exhaustion_raises(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("junk\n" * 5 + "0 1 r 0x10\n")
    with pytest.raises(TraceFormatError, match="error budget exhausted"):
        list(read_trace_file(path, lenient=True, error_budget=3))
    # A budget of >= 5 tolerates the same file.
    assert len(list(read_trace_file(path, lenient=True, error_budget=5))) == 1


def test_strict_decode_ignores_budget(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("junk\n")
    with pytest.raises(TraceFormatError):
        list(read_trace_file(path, error_budget=1000))


# ----------------------------------------------------------------------
# Auto-detection and lazy file-backed traces
# ----------------------------------------------------------------------

def test_is_binary_trace_sniffs_magic(tmp_path):
    text, binary = tmp_path / "a.trace", tmp_path / "b.bin"
    write_trace_file(_sample_records(), text)
    write_trace_binary(_sample_records(), binary)
    assert not is_binary_trace(text)
    assert is_binary_trace(binary)
    assert not is_binary_trace(tmp_path / "missing.trace")


def test_load_trace_autodetects_format(tmp_path):
    records = _sample_records()
    text, binary = tmp_path / "a.trace", tmp_path / "b.bin"
    write_trace_file(records, text)
    write_trace_binary(records, binary)
    assert list(load_trace(text).records) == records
    assert list(load_trace(binary).records) == records
    assert load_trace(text).name == "a"
    assert load_trace(text, name="custom").name == "custom"


def test_lazy_trace_defers_parse_errors_to_iteration(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("0 1 r 0x10\ngarbage\n")
    trace = load_trace(path, lazy=True)  # must not raise here
    assert isinstance(trace, LazyTraceFile)
    with pytest.raises(TraceFormatError, match="bad.trace:2"):
        list(trace.records)


def test_lazy_trace_is_reiterable_and_sliceable(tmp_path):
    records = _sample_records()
    path = tmp_path / "t.trace"
    write_trace_file(records, path)
    trace = LazyTraceFile(path)
    assert len(trace) == len(records)
    assert list(trace.records) == records
    assert list(trace.records) == records  # second pass re-reads the file
    assert trace.records[1] == records[1]
    assert trace.records[1:3] == records[1:3]
    with pytest.raises(IndexError):
        trace.records[len(records)]


def test_lazy_trace_rejects_backward_access(tmp_path):
    path = tmp_path / "t.trace"
    write_trace_file(_sample_records(), path)
    trace = LazyTraceFile(path)
    with pytest.raises(IndexError):
        trace.records[-1]
    with pytest.raises(TypeError):
        trace.records[::2]
