"""Finite-cache cost decomposition and storage overhead."""

import pytest

from repro.analysis.finite import (
    FiniteCacheDecomposition,
    capacity_sweep,
    decompose_finite_cost,
)
from repro.analysis.scalability import storage_overhead_fraction
from repro.cost.bus import PAPER_PIPELINED
from repro.memory.cache import FiniteCache


def test_decomposition_math():
    decomposition = FiniteCacheDecomposition(
        scheme="s", trace_name="t", infinite_cost=0.05, finite_cost=0.08
    )
    assert decomposition.capacity_component == pytest.approx(0.03)
    assert decomposition.capacity_share == pytest.approx(0.375)


def test_capacity_component_never_negative():
    decomposition = FiniteCacheDecomposition(
        scheme="s", trace_name="t", infinite_cost=0.08, finite_cost=0.05
    )
    assert decomposition.capacity_component == 0.0


def test_measured_decomposition(pops_small):
    decomposition = decompose_finite_cost(
        pops_small,
        "dir0b",
        PAPER_PIPELINED,
        cache_factory=lambda: FiniteCache(num_sets=32, associativity=2),
    )
    assert decomposition.finite_cost > decomposition.infinite_cost
    assert 0 < decomposition.capacity_share < 1


def test_capacity_sweep_shrinks_with_cache_size(pops_small):
    sweep = capacity_sweep(
        pops_small,
        "dir0b",
        PAPER_PIPELINED,
        geometries=[(16, 1), (64, 2), (512, 8)],
    )
    shares = [decomposition.capacity_share for _geometry, decomposition in sweep]
    assert shares[0] > shares[1] > shares[2]
    # The infinite-cache (coherence) component is geometry-independent.
    coherence = {d.infinite_cost for _g, d in sweep}
    assert len(coherence) == 1


def test_storage_overhead_laws():
    # Full map at 1024 caches costs 8x the memory it describes.
    assert storage_overhead_fraction("full-map", 1024) == pytest.approx(
        1025 / 128
    )
    # The coarse vector stays under 17%.
    assert storage_overhead_fraction("coarse-vector", 1024) < 0.17
    # Bigger blocks amortize the directory.
    assert storage_overhead_fraction(
        "full-map", 64, block_bytes=64
    ) < storage_overhead_fraction("full-map", 64, block_bytes=16)


def test_transition_tables_render_for_all_protocols():
    from repro.core.statespace import enumerate_transitions
    from repro.report.transitions import transition_table_text
    from repro.protocols.registry import available_protocols

    for scheme in available_protocols():
        caches = 4 if scheme == "coarse-vector" else 3
        transitions = enumerate_transitions(scheme, num_caches=caches)
        assert transitions, scheme
        # Every transition's event string is a real event value.
        from repro.protocols.events import EventType

        values = {event.value for event in EventType}
        for transition in transitions:
            assert transition.event in values
        text = transition_table_text(scheme, num_caches=caches)
        assert scheme in text


def test_dir0b_transition_table_matches_paper_semantics():
    from repro.core.statespace import enumerate_transitions

    transitions = enumerate_transitions("dir0b", num_caches=3)
    by_key = {
        (t.requester_state, t.others, t.operation, t.first_ref): t
        for t in transitions
    }
    # Write hit on a clean sole copy: directory checked, no broadcast.
    sole = by_key[("clean", (), "w", False)]
    assert sole.event == "wh-blk-cln"
    assert sole.ops == (("dir-check", 1),)
    # Write hit on a shared clean copy: broadcast needed.
    shared = by_key[("clean", ("clean",), "w", False)]
    assert ("broadcast-invalidate", 1) in shared.ops
    # Read miss on a dirty block: write-back supplies the data.
    dirty_read = by_key[(None, ("dirty",), "r", False)]
    assert dirty_read.event == "rm-blk-drty"
    assert ("write-back", 1) in dirty_read.ops
