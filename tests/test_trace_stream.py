"""Trace containers and stream merging."""

import pytest

from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import (
    RoundRobinInterleaver,
    Trace,
    count_records,
    merge_streams,
    take,
)

from conftest import make_records


def _r(cpu, address):
    return TraceRecord(cpu=cpu, pid=cpu, ref_type=RefType.READ, address=address)


def test_trace_basics():
    trace = Trace("t", make_records([(0, 5, "r", 0), (1, 6, "w", 4)]))
    assert len(trace) == 2
    assert trace.cpus == [0, 1]
    assert trace.pids == [5, 6]
    assert trace[0].address == 0
    assert [record.address for record in trace] == [0, 4]


def test_trace_materializes_generators():
    trace = Trace("g", (r for r in make_records([(0, 0, "r", 0)])))
    assert len(trace) == 1
    # Iterating twice works because the generator was materialized.
    assert list(trace) == list(trace)


def test_trace_filtered_and_head():
    trace = Trace("t", make_records([(0, 0, "r", 0), (0, 0, "w", 4), (0, 0, "r", 8)]))
    reads = trace.filtered(lambda record: record.is_read, name="reads")
    assert reads.name == "reads"
    assert len(reads) == 2
    assert len(trace.head(2)) == 2
    assert trace.head(2).name == "t"


def test_count_and_take():
    records = make_records([(0, 0, "r", i * 4) for i in range(10)])
    assert count_records(iter(records)) == 10
    assert len(take(iter(records), 3)) == 3


def test_merge_streams_orders_by_timestamp():
    stream_a = [(0, _r(0, 0)), (2, _r(0, 8))]
    stream_b = [(1, _r(1, 4)), (3, _r(1, 12))]
    merged = list(merge_streams([stream_a, stream_b]))
    assert [record.address for record in merged] == [0, 4, 8, 12]


def test_merge_streams_breaks_ties_by_stream_index():
    stream_a = [(5, _r(0, 0))]
    stream_b = [(5, _r(1, 4))]
    merged = list(merge_streams([stream_b, stream_a]))
    assert [record.cpu for record in merged] == [1, 0]


def test_round_robin_interleaver_quantum():
    streams = [
        [_r(0, 0), _r(0, 4), _r(0, 8), _r(0, 12)],
        [_r(1, 100), _r(1, 104)],
    ]
    interleaver = RoundRobinInterleaver(quantum=2)
    merged = list(interleaver.interleave(streams))
    assert [record.address for record in merged] == [0, 4, 100, 104, 8, 12]


def test_round_robin_interleaver_rejects_bad_quantum():
    with pytest.raises(ValueError):
        RoundRobinInterleaver(quantum=0)
