"""Seed-robustness analysis."""

import pytest

from repro.analysis.robustness import MetricDistribution, seed_sensitivity
from repro.cost.bus import PAPER_PIPELINED


class TestMetricDistribution:
    def test_statistics(self):
        dist = MetricDistribution("s", (1.0, 2.0, 3.0))
        assert dist.mean == pytest.approx(2.0)
        assert dist.std == pytest.approx(1.0)
        assert dist.coefficient_of_variation == pytest.approx(0.5)
        assert dist.min == 1.0 and dist.max == 3.0

    def test_single_sample(self):
        dist = MetricDistribution("s", (2.0,))
        assert dist.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricDistribution("s", ())

    def test_dominates(self):
        high = MetricDistribution("a", (3.0, 4.0))
        low = MetricDistribution("b", (1.0, 2.0))
        assert high.dominates(low)
        assert not low.dominates(high)
        overlapping = MetricDistribution("c", (2.5, 3.5))
        assert not high.dominates(overlapping)


@pytest.mark.slow
def test_paper_ordering_is_seed_robust():
    """The headline ordering must hold with non-overlapping ranges
    across independently seeded workload draws."""
    distributions = seed_sensitivity(
        schemes=("dir1nb", "wti", "dir0b", "dragon"),
        bus=PAPER_PIPELINED,
        seeds=(1, 2, 3),
        length=15_000,
        workloads=("pops", "pero"),
    )
    assert distributions["dir1nb"].dominates(distributions["wti"])
    assert distributions["wti"].dominates(distributions["dir0b"])
    assert distributions["dir0b"].dominates(distributions["dragon"])
    # And the metric itself is reasonably stable (CV under 25%).
    for distribution in distributions.values():
        assert distribution.coefficient_of_variation < 0.25
