"""Chunked store corruption semantics: every fault is a TraceFormatError.

The contract under test (docs/TRACESTORE.md): any damage to a ``.ctrc``
file — truncation, bad magic, version skew, index damage, chunk
payload damage — surfaces as :class:`~repro.errors.TraceFormatError`
naming the file (and for chunk faults, the chunk index and byte
offset).  A bare ``struct.error`` / ``zlib.error`` / ``JSONDecodeError``
escaping the reader is a bug.  Lenient mode skips corrupt chunks
within an error budget and quarantines their stored bytes beside the
file, mirroring the text decoder's lenient mode.
"""

import json
import struct
import zlib
from pathlib import Path

import pytest

from repro.errors import TraceFormatError
from repro.store import ChunkedTrace, is_chunked_trace, pack_trace
from repro.store.format import FOOTER, HEADER, STORE_END_MAGIC, STORE_MAGIC
from repro.trace.io import DecodeReport
from repro.workloads.registry import make_trace

CHUNK_RECORDS = 500


@pytest.fixture(scope="module")
def trace():
    return make_trace("pops", length=4000, seed=11)


@pytest.fixture
def store(trace, tmp_path) -> Path:
    path = tmp_path / "trace.ctrc"
    pack_trace(trace, path, codec="zlib", chunk_records=CHUNK_RECORDS)
    return path


def rewrite_index(path: Path, mutate) -> None:
    """Apply *mutate* to the parsed index JSON and re-seal the footer.

    Keeps the crc32 consistent, so the reader's *semantic* validation
    (not the checksum) is what trips.
    """
    blob = path.read_bytes()
    offset, length, _crc, reserved, magic = FOOTER.unpack(blob[-FOOTER.size:])
    meta = json.loads(blob[offset:offset + length].decode("utf-8"))
    mutate(meta)
    index = json.dumps(meta, sort_keys=True).encode("utf-8")
    path.write_bytes(
        blob[:offset]
        + index
        + FOOTER.pack(offset, len(index), zlib.crc32(index) & 0xFFFFFFFF,
                      reserved, magic)
    )


# ----------------------------------------------------------------------
# Structural damage
# ----------------------------------------------------------------------

def test_magic_sniff(store, tmp_path):
    assert is_chunked_trace(store)
    text = tmp_path / "trace.txt"
    text.write_text("not a store\n")
    assert not is_chunked_trace(text)
    assert not is_chunked_trace(tmp_path / "absent.ctrc")


def test_empty_file(tmp_path):
    path = tmp_path / "empty.ctrc"
    path.write_bytes(b"")
    with pytest.raises(TraceFormatError, match="empty"):
        ChunkedTrace(path)


def test_bad_magic(store):
    blob = store.read_bytes()
    store.write_bytes(b"NOTMAGIC" + blob[8:])
    with pytest.raises(TraceFormatError, match="magic"):
        ChunkedTrace(store)


def test_version_skew(store):
    blob = bytearray(store.read_bytes())
    blob[8:10] = struct.pack("<H", 99)
    store.write_bytes(bytes(blob))
    with pytest.raises(TraceFormatError, match="version"):
        ChunkedTrace(store)


def test_truncation_every_prefix_is_diagnosed(store):
    """No truncation point may leak a bare struct/zlib/JSON error."""
    blob = store.read_bytes()
    # A spread of cut points: inside the header, chunks, index, footer.
    cuts = {1, 8, HEADER.size, HEADER.size + 3, len(blob) // 2,
            len(blob) - FOOTER.size - 1, len(blob) - FOOTER.size // 2,
            len(blob) - 1}
    for cut in sorted(cuts):
        store.write_bytes(blob[:cut])
        with pytest.raises(TraceFormatError):
            ChunkedTrace(store)


def test_truncation_names_the_missing_end_magic(store):
    blob = store.read_bytes()
    store.write_bytes(blob[: len(blob) - FOOTER.size])
    with pytest.raises(TraceFormatError, match="end magic"):
        ChunkedTrace(store)


def test_index_crc_corruption(store):
    blob = bytearray(store.read_bytes())
    offset, _, _, _, magic = FOOTER.unpack(bytes(blob[-FOOTER.size:]))
    assert magic == STORE_END_MAGIC
    blob[offset] ^= 0xFF  # first byte of the JSON index
    store.write_bytes(bytes(blob))
    with pytest.raises(TraceFormatError, match="crc32"):
        ChunkedTrace(store)


def test_unknown_codec_in_index(store):
    rewrite_index(
        store,
        lambda meta: meta["chunks"][0].__setitem__("codec", "lzma"),
    )
    with pytest.raises(TraceFormatError, match="codec"):
        ChunkedTrace(store)


def test_record_count_mismatch_in_index(store):
    def bump(meta):
        meta["records"] += 7

    rewrite_index(store, bump)
    with pytest.raises(TraceFormatError, match="record"):
        ChunkedTrace(store)


def test_chunk_out_of_bounds_offset(store):
    rewrite_index(
        store,
        lambda meta: meta["chunks"][-1].__setitem__("offset", 1 << 40),
    )
    with pytest.raises(TraceFormatError):
        ChunkedTrace(store)


# ----------------------------------------------------------------------
# Chunk payload damage
# ----------------------------------------------------------------------

def corrupt_chunk(path: Path, index: int) -> None:
    """Flip one byte inside chunk *index*'s stored bytes."""
    with ChunkedTrace(path) as trace:
        info = trace.chunks[index]
    blob = bytearray(path.read_bytes())
    blob[info.offset + info.length // 2] ^= 0xFF
    path.write_bytes(bytes(blob))


def test_chunk_crc_names_index_and_byte_offset(store):
    corrupt_chunk(store, 2)
    trace = ChunkedTrace(store)  # open is index-only: no error yet
    offset = trace.chunks[2].offset
    with pytest.raises(
        TraceFormatError, match=rf"chunk 2 at byte offset {offset}"
    ) as excinfo:
        list(trace.iter_chunks())
    assert excinfo.value.path == str(store)
    # The undamaged prefix still decodes.
    assert len(trace.chunk(0)) == CHUNK_RECORDS
    assert len(trace.chunk(1)) == CHUNK_RECORDS


def test_zlib_garbage_is_wrapped_not_raised_bare(store):
    """A chunk whose bytes pass crc but are not valid zlib."""
    with ChunkedTrace(store) as trace:
        info = trace.chunks[1]
    blob = bytearray(store.read_bytes())
    garbage = bytes((b ^ 0x5A) for b in blob[info.offset:info.offset + info.length])
    blob[info.offset:info.offset + info.length] = garbage
    store.write_bytes(bytes(blob))
    # Re-seal this chunk's crc in the index so only decompression fails.
    rewrite_index(
        store,
        lambda meta: meta["chunks"][1].__setitem__(
            "crc32", zlib.crc32(garbage) & 0xFFFFFFFF
        ),
    )
    trace = ChunkedTrace(store)
    with pytest.raises(TraceFormatError, match="chunk 1"):
        trace.chunk(1)


# ----------------------------------------------------------------------
# Lenient mode: skip, quarantine, budget
# ----------------------------------------------------------------------

def test_lenient_skips_and_quarantines(store, trace):
    corrupt_chunk(store, 1)
    report = DecodeReport()
    lenient = ChunkedTrace(store, lenient=True, report=report)
    records = sum(len(chunk) for chunk in lenient.iter_chunks())
    assert records == len(trace) - CHUNK_RECORDS  # exactly one chunk lost
    assert report.skipped == 1
    sidecar = Path(f"{store}.quarantine") / "chunk-0001.bin"
    assert sidecar.exists()
    # The quarantined bytes are the damaged stored bytes, verbatim.
    assert len(sidecar.read_bytes()) == lenient.chunks[1].length


def test_lenient_error_budget_exhaustion(store):
    for index in range(4):
        corrupt_chunk(store, index)
    lenient = ChunkedTrace(store, lenient=True, error_budget=2)
    with pytest.raises(TraceFormatError, match="error budget exhausted"):
        list(lenient.iter_chunks())


def test_strict_mode_raises_on_first_corrupt_chunk(store):
    corrupt_chunk(store, 0)
    with pytest.raises(TraceFormatError, match="chunk 0"):
        list(ChunkedTrace(store).iter_chunks())
