"""Trace windowing and phase analysis."""

import pytest

from repro.cost.bus import PAPER_PIPELINED
from repro.errors import ConfigurationError
from repro.trace.stream import Trace
from repro.trace.windows import (
    sparkline,
    window_costs,
    window_statistics,
    windows,
)

from conftest import make_records


def test_windows_split_evenly():
    trace = Trace("t", make_records([(0, 0, "r", i * 16) for i in range(10)]))
    parts = list(windows(trace, 3))
    assert [len(part) for part in parts] == [3, 3, 3, 1]
    assert parts[0].name == "t[0:3]"
    # Concatenation reproduces the original.
    merged = [record for part in parts for record in part.records]
    assert merged == list(trace.records)


def test_windows_reject_bad_size():
    trace = Trace("t", make_records([(0, 0, "r", 0)]))
    with pytest.raises(ConfigurationError):
        list(windows(trace, 0))


def test_window_statistics(pops_small):
    stats = window_statistics(pops_small, 10_000)
    assert len(stats) == 3
    assert sum(s.total_refs for s in stats) == len(pops_small)


def test_window_costs_carry_cache_state(pops_small):
    costs = window_costs(pops_small, "dir0b", PAPER_PIPELINED, 10_000)
    assert len(costs) == 3
    assert costs[0].start == 0 and costs[-1].end == len(pops_small)
    # Warm-up: the first window carries the first-reference burst, so
    # later windows (with persistent caches) have no higher miss rates
    # from cold starts.
    assert costs[0].data_miss_fraction >= 0
    # Continuity check: total per-window cost ~ whole-trace cost.
    from repro.core.simulator import simulate

    whole = simulate(pops_small, "dir0b").bus_cycles_per_reference(PAPER_PIPELINED)
    weighted = sum(
        c.bus_cycles_per_reference * (c.end - c.start) for c in costs
    ) / len(pops_small)
    assert weighted == pytest.approx(whole, rel=1e-9)


def test_window_costs_track_spin_phases(pops_small):
    costs = window_costs(pops_small, "dir1nb", PAPER_PIPELINED, 5_000)
    spins = [c.spin_fraction for c in costs]
    assert max(spins) > 0  # the workload does spin


def test_sparkline_basic():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == " "
    assert line[2] == "@"


def test_sparkline_downsamples():
    line = sparkline(list(range(200)), width=50)
    assert len(line) == 50
    # Monotone input -> non-decreasing glyph levels.
    glyphs = " .:-=+*#@"
    levels = [glyphs.index(char) for char in line]
    assert levels == sorted(levels)


def test_sparkline_edge_cases():
    assert sparkline([]) == ""
    assert sparkline([0.0, 0.0]) == "  "
