"""Dragon: the write-update snoopy protocol."""

from repro.memory.line import DragonLineState
from repro.protocols.snoopy.dragon import DragonProtocol
from repro.protocols.events import EventType, OpKind

from conftest import drive


def kinds_of(result):
    return [op.kind for op in result.ops]


def test_first_read_installs_exclusive():
    protocol = DragonProtocol(4)
    drive(protocol, [(0, "r", 1)])
    assert protocol.holders(1) == {0: DragonLineState.VALID_EXCLUSIVE}


def test_local_write_to_unshared_block_is_free():
    protocol = DragonProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1)])
    assert results[1].event is EventType.WH_LOCAL
    assert results[1].ops == ()
    assert protocol.holders(1) == {0: DragonLineState.DIRTY}


def test_write_to_shared_block_broadcasts_update():
    protocol = DragonProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
    final = results[2]
    assert final.event is EventType.WH_DISTRIB
    assert kinds_of(final) == [OpKind.WRITE_WORD]
    # Nobody is invalidated: both copies remain, writer owns.
    holders = protocol.holders(1)
    assert holders[0] is DragonLineState.SHARED_DIRTY
    assert holders[1] is DragonLineState.SHARED_CLEAN


def test_copies_never_leave_infinite_caches():
    protocol = DragonProtocol(4)
    drive(
        protocol,
        [(0, "r", 1), (1, "r", 1), (2, "r", 1), (0, "w", 1), (1, "w", 1)],
    )
    assert set(protocol.holders(1)) == {0, 1, 2}


def test_owner_supplies_on_read_miss():
    protocol = DragonProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1), (1, "r", 1)])
    final = results[2]
    assert final.event is EventType.RM_BLK_DRTY
    assert kinds_of(final) == [OpKind.CACHE_ACCESS]
    # The owner keeps ownership (shared-dirty); memory stays stale.
    assert protocol.holders(1)[0] is DragonLineState.SHARED_DIRTY


def test_memory_supplies_clean_shared_block():
    protocol = DragonProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1)])
    assert results[1].event is EventType.RM_BLK_CLN
    assert kinds_of(results[1]) == [OpKind.MEM_ACCESS]


def test_write_miss_fetches_and_updates():
    protocol = DragonProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "w", 1)])
    final = results[1]
    assert final.event is EventType.WM_BLK_CLN
    assert OpKind.MEM_ACCESS in kinds_of(final)
    assert OpKind.WRITE_WORD in kinds_of(final)
    holders = protocol.holders(1)
    assert holders[1] is DragonLineState.SHARED_DIRTY
    assert holders[0] is DragonLineState.SHARED_CLEAN


def test_write_miss_to_owned_block():
    protocol = DragonProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "w", 1)])
    final = results[1]
    assert final.event is EventType.WM_BLK_DRTY
    assert OpKind.CACHE_ACCESS in kinds_of(final)
    # Ownership transfers to the most recent writer.
    holders = protocol.holders(1)
    assert holders[1] is DragonLineState.SHARED_DIRTY
    assert holders[0] is DragonLineState.SHARED_CLEAN


def test_ownership_transfers_between_writers():
    protocol = DragonProtocol(4)
    drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1), (1, "w", 1)])
    holders = protocol.holders(1)
    owners = [cache for cache, state in holders.items() if state.is_owner]
    assert owners == [1]


def test_update_protocol_has_no_invalidation_ops():
    protocol = DragonProtocol(4)
    results = drive(
        protocol,
        [(0, "r", 1), (1, "r", 1), (0, "w", 1), (2, "w", 1), (3, "r", 1)],
    )
    for result in results:
        for op in result.ops:
            assert op.kind not in (OpKind.INVALIDATE, OpKind.BROADCAST_INVALIDATE)


def test_miss_rate_is_native(standard_small):
    """Dragon never invalidates: per-process first touches only."""
    from repro.core.simulator import Simulator

    result = Simulator().run(standard_small[2], "dragon")
    frequencies = result.frequencies()
    # Each (process, block) pair misses at most once; with 4 processes
    # the total data misses cannot exceed 4x the first references.
    assert frequencies.data_miss_fraction <= 4 * frequencies.first_ref_fraction
