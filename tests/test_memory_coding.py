"""Coarse-vector ternary coding (Section 6), incl. property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.coding import BOTH, CoarseVector


def test_empty_vector():
    vector = CoarseVector.empty(8)
    assert vector.is_empty
    assert vector.denoted_count == 0
    assert list(vector.decode()) == []
    assert not vector.contains(3)


def test_single_is_exact():
    vector = CoarseVector.single(8, 5)
    assert vector.is_exact_single
    assert vector.denoted_count == 1
    assert list(vector.decode()) == [5]
    assert vector.contains(5)
    assert not vector.contains(4)


def test_digits_of_single():
    # 6 = 0b110 with 8 caches -> digits (1, 1, 0), MSB first.
    assert CoarseVector.single(8, 6).digits == (1, 1, 0)


def test_add_widens_disagreeing_digits():
    vector = CoarseVector.single(8, 0b000).add(0b001)
    assert vector.digits == (0, 0, BOTH)
    assert vector.denoted_count == 2
    assert list(vector.decode()) == [0, 1]


def test_add_distant_indices_denotes_superset():
    vector = CoarseVector.single(8, 0b000).add(0b111)
    assert vector.digits == (BOTH, BOTH, BOTH)
    assert vector.denoted_count == 8


def test_decode_is_increasing():
    vector = CoarseVector.encode(16, [3, 9, 12])
    decoded = list(vector.decode())
    assert decoded == sorted(decoded)


def test_storage_bits_is_2_log_n():
    assert CoarseVector.empty(4).storage_bits == 4
    assert CoarseVector.empty(64).storage_bits == 12
    assert CoarseVector.empty(1024).storage_bits == 20


def test_rejects_non_power_of_two_cache_count():
    with pytest.raises(ValueError):
        CoarseVector.empty(6)
    with pytest.raises(ValueError):
        CoarseVector.empty(1)


def test_rejects_out_of_range_cache():
    with pytest.raises(ValueError):
        CoarseVector.single(8, 8)


def test_rejects_bad_digit_values():
    with pytest.raises(ValueError):
        CoarseVector(4, (0, 3))
    with pytest.raises(ValueError):
        CoarseVector(4, (0,))  # wrong width


@given(
    num_caches=st.sampled_from([2, 4, 8, 16, 32]),
    data=st.data(),
)
def test_encode_is_superset_of_sharers(num_caches, data):
    sharers = data.draw(
        st.lists(st.integers(0, num_caches - 1), min_size=0, max_size=6)
    )
    vector = CoarseVector.encode(num_caches, sharers)
    decoded = set(vector.decode())
    assert set(sharers) <= decoded
    for cache in sharers:
        assert vector.contains(cache)


@given(
    num_caches=st.sampled_from([2, 4, 8, 16]),
    data=st.data(),
)
def test_denoted_count_matches_decode(num_caches, data):
    sharers = data.draw(
        st.lists(st.integers(0, num_caches - 1), min_size=1, max_size=6)
    )
    vector = CoarseVector.encode(num_caches, sharers)
    assert vector.denoted_count == len(list(vector.decode()))


@given(
    num_caches=st.sampled_from([2, 4, 8, 16]),
    data=st.data(),
)
def test_add_is_monotone(num_caches, data):
    """Adding a sharer never shrinks the denoted set."""
    sharers = data.draw(
        st.lists(st.integers(0, num_caches - 1), min_size=1, max_size=6)
    )
    vector = CoarseVector.empty(num_caches)
    previous: set[int] = set()
    for cache in sharers:
        vector = vector.add(cache)
        current = set(vector.decode())
        assert previous <= current
        previous = current


@given(num_caches=st.sampled_from([2, 4, 8, 16, 32]), cache=st.data())
def test_single_sharer_is_always_exact(num_caches, cache):
    index = cache.draw(st.integers(0, num_caches - 1))
    vector = CoarseVector.encode(num_caches, [index, index, index])
    assert vector.is_exact_single
    assert list(vector.decode()) == [index]
