"""The trace-driven simulator."""

import pytest

from repro.core.simulator import Simulator, simulate
from repro.errors import ConfigurationError
from repro.memory.address import BlockMapper
from repro.protocols.events import EventType
from repro.protocols.registry import make_protocol
from repro.trace.stream import Trace

from conftest import make_records, tiny_trace


def test_instructions_bypass_the_protocol(trace_tiny):
    result = simulate(trace_tiny, "dir0b")
    assert result.event_counts[EventType.INSTR] == 1
    assert result.total_refs == len(trace_tiny)


def test_tiny_trace_dir0b_classification(trace_tiny):
    result = simulate(trace_tiny, "dir0b")
    counts = result.event_counts
    assert counts[EventType.RM_FIRST_REF] == 2  # blocks A and C first reads
    assert counts[EventType.WM_FIRST_REF] == 1  # block B first write
    assert counts[EventType.RM_BLK_CLN] == 1  # P1 reads A while clean at P0
    assert counts[EventType.RM_BLK_DRTY] == 2  # A after write; B dirty at P1
    assert counts[EventType.WH_BLK_CLN] == 2  # P0 writes A, P0 writes C
    # One clean write had one other sharer, one had none -> mixed buckets.
    assert result.clean_write_histogram[1] == 1
    assert result.clean_write_histogram[0] == 1


def test_first_reference_detection_is_global(trace_tiny):
    """The first touch by ANY process counts; later processes miss normally."""
    result = simulate(trace_tiny, "dir1nb")
    assert result.event_counts[EventType.RM_FIRST_REF] == 2  # blocks A and C
    assert result.event_counts[EventType.WM_FIRST_REF] == 1  # block B


def test_same_block_addresses_share_first_ref():
    records = make_records([(0, 0, "r", 0x100), (1, 1, "r", 0x10C)])
    result = simulate(Trace("t", records), "dir0b")
    # 0x100 and 0x10C are in the same 16-byte block.
    assert result.event_counts[EventType.RM_FIRST_REF] == 1
    assert result.event_counts[EventType.RM_BLK_CLN] == 1


def test_block_mapper_granularity():
    records = make_records([(0, 0, "r", 0x100), (1, 1, "r", 0x110)])
    coarse = simulate(Trace("t", records), "dir0b", block_mapper=BlockMapper(64))
    fine = simulate(Trace("t", records), "dir0b", block_mapper=BlockMapper(16))
    assert coarse.event_counts[EventType.RM_BLK_CLN] == 1  # same 64B block
    assert fine.event_counts[EventType.RM_FIRST_REF] == 2  # different 16B blocks


def test_sharer_key_pid_vs_cpu():
    # Same pid migrates across CPUs: under pid-sharing there is one
    # cache, under cpu-sharing two.
    records = make_records([(0, 7, "r", 0x100), (1, 7, "r", 0x100)])
    by_pid = simulate(Trace("t", records), "dir0b", sharer_key="pid")
    by_cpu = simulate(Trace("t", records), "dir0b", sharer_key="cpu")
    assert by_pid.event_counts[EventType.RD_HIT] == 1
    assert by_cpu.event_counts[EventType.RM_BLK_CLN] == 1


def test_rejects_unknown_sharer_key():
    with pytest.raises(ConfigurationError):
        Simulator(sharer_key="thread")


def test_num_caches_inferred_from_trace(trace_tiny):
    result = simulate(trace_tiny, "dir0b")
    assert result.scheme == "dir0b"


def test_raw_stream_requires_num_caches(trace_tiny):
    with pytest.raises(ConfigurationError):
        simulate(iter(trace_tiny.records), "dir0b")
    result = simulate(iter(trace_tiny.records), "dir0b", num_caches=2)
    assert result.total_refs == len(trace_tiny)


def test_too_many_sharers_rejected():
    records = make_records([(i, i, "r", 0x100 * i) for i in range(4)])
    with pytest.raises(ConfigurationError):
        simulate(iter(records), "dir0b", num_caches=2)


def test_prebuilt_protocol_accepted(trace_tiny):
    protocol = make_protocol("dragon", 2)
    result = simulate(trace_tiny, protocol)
    assert result.scheme == "dragon"


def test_prebuilt_protocol_rejects_extra_options(trace_tiny):
    protocol = make_protocol("dragon", 2)
    with pytest.raises(ConfigurationError):
        simulate(trace_tiny, protocol, num_pointers=2)


def test_invariant_checking_runs(trace_tiny):
    # With checking on every reference, a correct protocol still passes.
    result = simulate(trace_tiny, "dirnnb", check_invariants=True)
    assert result.total_refs == len(trace_tiny)


def test_invariant_interval_validation():
    with pytest.raises(ConfigurationError):
        Simulator(check_invariants=-1)


def test_deterministic_across_runs(pops_small):
    a = simulate(pops_small, "dir0b")
    b = simulate(pops_small, "dir0b")
    assert a.event_counts == b.event_counts
    assert a.op_units == b.op_units
    assert a.clean_write_histogram == b.clean_write_histogram


def test_trace_name_override(trace_tiny):
    result = simulate(trace_tiny, "wti", trace_name="renamed")
    assert result.trace_name == "renamed"
