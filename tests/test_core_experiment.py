"""Experiment runner (schemes x traces)."""

import pytest

from repro.core.experiment import Experiment, run_experiment
from repro.cost.bus import PAPER_PIPELINED
from repro.errors import ConfigurationError

from conftest import tiny_trace


def two_traces():
    return [tiny_trace("alpha"), tiny_trace("beta")]


def test_runs_all_scheme_trace_pairs():
    outcome = Experiment(traces=two_traces(), schemes=["dir0b", "dragon"]).run()
    assert set(outcome.schemes) == {"dir0b", "dragon"}
    assert outcome.trace_names == ["alpha", "beta"]
    assert outcome.result("dir0b", "alpha").total_refs == len(tiny_trace())


def test_combined_pools_traces():
    outcome = Experiment(traces=two_traces(), schemes=["dir0b"]).run()
    combined = outcome.combined("dir0b")
    assert combined.total_refs == 2 * len(tiny_trace())


def test_bus_cycles_table():
    outcome = Experiment(traces=two_traces(), schemes=["dir0b", "dragon"]).run()
    table = outcome.bus_cycles_table(PAPER_PIPELINED)
    assert set(table) == {"dir0b", "dragon"}
    assert all(value >= 0 for value in table.values())


def test_per_trace_bus_cycles():
    outcome = Experiment(traces=two_traces(), schemes=["dir0b"]).run()
    per_trace = outcome.per_trace_bus_cycles(PAPER_PIPELINED)
    assert set(per_trace["dir0b"]) == {"alpha", "beta"}
    # Identical traces => identical costs.
    assert per_trace["dir0b"]["alpha"] == per_trace["dir0b"]["beta"]


def test_parameterized_schemes_get_distinct_keys():
    outcome = Experiment(
        traces=two_traces(),
        schemes=[("dirib", {"num_pointers": 1}), ("dirib", {"num_pointers": 2})],
    ).run()
    assert set(outcome.schemes) == {"dir1b", "dir2b"}


def test_missing_result_raises():
    outcome = Experiment(traces=two_traces(), schemes=["dir0b"]).run()
    with pytest.raises(ConfigurationError):
        outcome.result("dragon", "alpha")
    with pytest.raises(ConfigurationError):
        outcome.combined("dragon")


def test_empty_configuration_rejected():
    with pytest.raises(ConfigurationError):
        Experiment(traces=[], schemes=["dir0b"]).run()
    with pytest.raises(ConfigurationError):
        Experiment(traces=two_traces(), schemes=[]).run()


def test_progress_callback_invoked():
    calls = []
    Experiment(traces=two_traces(), schemes=["dir0b"]).run(
        progress=lambda scheme, trace: calls.append((scheme, trace))
    )
    assert calls == [("dir0b", "alpha"), ("dir0b", "beta")]


def test_run_experiment_defaults_to_paper_schemes():
    outcome = run_experiment(two_traces())
    assert set(outcome.schemes) == {"dir1nb", "wti", "dir0b", "dragon"}


def test_run_experiment_forwards_simulator_options():
    outcome = run_experiment(two_traces(), schemes=["dir0b"], sharer_key="cpu")
    assert outcome.combined("dir0b").total_refs > 0
