"""The coherence invariant checker must actually catch violations."""

import pytest

from repro.core.invariants import InvariantChecker
from repro.errors import InvariantViolation
from repro.memory.line import DragonLineState, LineState
from repro.protocols.registry import make_protocol

from conftest import drive


def test_clean_run_passes_check_all():
    protocol = make_protocol("dirnnb", 4)
    drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 2), (1, "w", 1)])
    InvariantChecker(protocol).check_all()


def test_detects_two_dirty_copies():
    protocol = make_protocol("dir0b", 4)
    drive(protocol, [(0, "w", 1)])
    # Corrupt the state behind the protocol's back.
    protocol._caches[1].put(1, LineState.DIRTY)
    with pytest.raises(InvariantViolation, match="multiple dirty"):
        InvariantChecker(protocol).check_block(1)


def test_detects_dirty_alongside_clean_copy():
    protocol = make_protocol("dir0b", 4)
    drive(protocol, [(0, "w", 1)])
    protocol._caches[1].put(1, LineState.CLEAN)
    with pytest.raises(InvariantViolation):
        InvariantChecker(protocol).check_block(1)


def test_dragon_allows_owner_with_other_copies():
    protocol = make_protocol("dragon", 4)
    drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
    InvariantChecker(protocol).check_block(1)  # must not raise


def test_dragon_detects_two_owners():
    protocol = make_protocol("dragon", 4)
    drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
    protocol._caches[1].put(1, DragonLineState.SHARED_DIRTY)
    with pytest.raises(InvariantViolation, match="multiple dirty"):
        InvariantChecker(protocol).check_block(1)


def test_detects_copy_bound_violation():
    protocol = make_protocol("dir1nb", 4)
    drive(protocol, [(0, "r", 1)])
    protocol._caches[1].put(1, LineState.CLEAN)
    with pytest.raises(InvariantViolation, match="exceed"):
        InvariantChecker(protocol).check_block(1)


def test_detects_dirty_line_in_write_through_cache():
    protocol = make_protocol("wti", 4)
    drive(protocol, [(0, "w", 1)])
    protocol._caches[0].put(1, LineState.DIRTY)
    with pytest.raises(InvariantViolation, match="write-through"):
        InvariantChecker(protocol).check_block(1)


def test_detects_directory_cache_disagreement():
    protocol = make_protocol("dirnnb", 4)
    drive(protocol, [(0, "r", 1), (1, "r", 1)])
    protocol._caches[1].evict(1)  # directory still lists cache 1
    with pytest.raises(InvariantViolation, match="sharers"):
        InvariantChecker(protocol).check_block(1)


def test_detects_stale_dirty_bit_in_directory():
    protocol = make_protocol("dirnnb", 4)
    drive(protocol, [(0, "w", 1)])
    protocol._caches[0].put(1, LineState.CLEAN)
    with pytest.raises(InvariantViolation):
        InvariantChecker(protocol).check_block(1)


def test_detects_coarse_vector_coverage_gap():
    protocol = make_protocol("coarse-vector", 8)
    drive(protocol, [(0, "r", 1)])
    protocol._caches[7].put(1, LineState.CLEAN)  # not in the code
    with pytest.raises(InvariantViolation, match="coarse vector"):
        InvariantChecker(protocol).check_block(1)


def test_detects_two_bit_count_mismatch():
    protocol = make_protocol("dir0b", 4)
    drive(protocol, [(0, "r", 1)])  # directory says CLEAN_ONE
    protocol._caches[1].put(1, LineState.CLEAN)
    with pytest.raises(InvariantViolation, match="CLEAN_ONE"):
        InvariantChecker(protocol).check_block(1)


def test_check_all_covers_every_tracked_block():
    protocol = make_protocol("dir0b", 4)
    drive(protocol, [(0, "r", 1), (1, "r", 2)])
    protocol._caches[0].put(2, LineState.DIRTY)  # corrupt block 2 only
    with pytest.raises(InvariantViolation):
        InvariantChecker(protocol).check_all()
