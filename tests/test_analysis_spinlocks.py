"""Section 5.2: spin-lock impact experiment."""

import pytest

from repro.analysis.spinlocks import SpinLockImpact, spin_lock_impact, strip_spins
from repro.cost.bus import PAPER_PIPELINED


def test_strip_spins_removes_only_spin_reads(pops_small):
    stripped = strip_spins(pops_small)
    spins = sum(1 for record in pops_small.records if record.spin)
    assert len(stripped) == len(pops_small) - spins
    assert all(not record.spin for record in stripped)
    assert stripped.name == pops_small.name


def test_impact_dataclass_math():
    impact = SpinLockImpact(scheme="dir1nb", with_spins=0.32, without_spins=0.12)
    assert impact.absolute_drop == pytest.approx(0.20)
    assert impact.relative_drop == pytest.approx(0.625)


def test_zero_cost_edge_case():
    impact = SpinLockImpact(scheme="s", with_spins=0.0, without_spins=0.0)
    assert impact.relative_drop == 0.0


def test_dir1nb_improves_dramatically_dir0b_barely(standard_small):
    """The paper's §5.2 result, qualitatively."""
    dir1nb = spin_lock_impact(standard_small, "dir1nb", PAPER_PIPELINED)
    dir0b = spin_lock_impact(standard_small, "dir0b", PAPER_PIPELINED)
    # Dir1NB loses most of its cost (paper: 0.32 -> 0.12, a 62% drop).
    assert dir1nb.relative_drop > 0.4
    # Dir0B barely moves (spins hit in the cache).
    assert abs(dir0b.relative_drop) < 0.15
    # And Dir1NB remains the more expensive scheme even without spins.
    assert dir1nb.without_spins > dir0b.without_spins
