"""The unified engine: plans, policies, backends, observers.

These tests pin the engine's contracts directly — the entry-point
suites (``test_runner_resilient``, ``test_runner_parallel``,
``test_service_scheduler``, ``test_cli``) exercise the same machinery
through its public facades.
"""

import pytest

from repro.core.simulator import Simulator
from repro.engine import (
    NULL_OBSERVER,
    CellOutcome,
    CellTask,
    Engine,
    EngineMetrics,
    EngineObserver,
    ExecutionPlan,
    InlineBackend,
    ObserverGroup,
    ProcessPoolBackend,
    RetryPolicy,
    backend_for,
    rehydrate_failure,
    run_cell,
    run_with_retry,
)
from repro.errors import ConfigurationError, InvariantViolation, TransientError
from repro.runner.cache import ResultCache
from repro.runner.faults import FlakyTrace
from repro.workloads.registry import make_trace


def no_sleep_policy(**kwargs) -> RetryPolicy:
    kwargs.setdefault("sleep", lambda _delay: None)
    return RetryPolicy(**kwargs)


@pytest.fixture
def traces():
    return [
        make_trace("pops", length=1200, seed=1),
        make_trace("thor", length=1200, seed=2),
    ]


# ----------------------------------------------------------------------
# ExecutionPlan
# ----------------------------------------------------------------------

def test_plan_cells_are_scheme_major_with_sequential_indexes(traces):
    plan = ExecutionPlan(traces=traces, schemes=["dir0b", "wti"])
    cells = plan.cells()
    assert [(c.scheme_key, c.trace_name) for c in cells] == [
        ("dir0b", "pops"),
        ("dir0b", "thor"),
        ("wti", "pops"),
        ("wti", "thor"),
    ]
    assert [c.index for c in cells] == [0, 1, 2, 3]


def test_plan_rejects_empty_axes(traces):
    with pytest.raises(ConfigurationError):
        ExecutionPlan(traces=[], schemes=["dir0b"]).validate()
    with pytest.raises(ConfigurationError):
        ExecutionPlan(traces=traces, schemes=[]).validate()


def test_plan_fingerprint_matches_manifest_identity(traces):
    plan = ExecutionPlan(
        traces=traces,
        schemes=["dir1nb", ("dirinb", {"num_pointers": 2})],
        simulator=Simulator(sharer_key="cpu"),
    )
    assert plan.fingerprint() == {
        "schemes": ["dir1nb", "dir2nb"],
        "traces": ["pops", "thor"],
        "sharer_key": "cpu",
    }


def test_trace_fingerprint_computed_once_per_plan(traces, monkeypatch):
    """The expensive half of the cache key is memoized per plan.

    Four schemes referencing the same trace must hash its records once,
    not once per (scheme x trace) cell.
    """
    import repro.engine.plan as plan_module

    calls = []
    real = plan_module.trace_fingerprint

    def counting(trace):
        calls.append(trace)
        return real(trace)

    monkeypatch.setattr(plan_module, "trace_fingerprint", counting)
    plan = ExecutionPlan(
        traces=[traces[0]], schemes=["dir0b", "dir1nb", "wti", "dragon"]
    )
    ids = [plan.cache_id(spec, traces[0]) for spec in plan.schemes]
    assert len(calls) == 1
    assert len(set(ids)) == len(ids)  # distinct schemes, distinct keys


def test_uncacheable_cell_yields_none_cache_id(traces):
    """A trace whose fingerprint blows up disables caching, quietly."""

    class ExplodingTrace:
        name = "boom"

        @property
        def records(self):
            raise OSError("disk on fire")

        def __len__(self):
            return 0

    plan = ExecutionPlan(traces=[ExplodingTrace()], schemes=["dir0b"])
    assert plan.cache_id("dir0b", plan.traces[0]) is None


# ----------------------------------------------------------------------
# CellOutcome transport payloads
# ----------------------------------------------------------------------

def test_outcome_payload_round_trip_ok(traces):
    task = ExecutionPlan(traces=[traces[0]], schemes=["dir0b"]).cells()[0]
    outcome = run_cell(Simulator(), task)
    assert outcome.ok and outcome.attempts == 1
    payload = outcome.to_payload()
    assert payload["status"] == "ok"
    rebuilt = CellOutcome.from_payload(task, payload, source="checkpoint")
    assert rebuilt.live_result() == outcome.result
    assert rebuilt.source == "checkpoint"


def test_outcome_payload_round_trip_error(traces):
    task = ExecutionPlan(traces=[traces[0]], schemes=["dir0b"]).cells()[0]
    outcome = CellOutcome(
        task=task,
        status="error",
        category="TraceFormatError",
        message="garbage",
        attempts=2,
    )
    rebuilt = CellOutcome.from_payload(task, outcome.to_payload())
    assert not rebuilt.ok
    assert (rebuilt.category, rebuilt.message, rebuilt.attempts) == (
        "TraceFormatError", "garbage", 2,
    )


def test_rehydrate_failure_maps_category_to_exception_class():
    exc = rehydrate_failure({"category": "InvariantViolation", "message": "bad"})
    assert isinstance(exc, InvariantViolation) and str(exc) == "bad"
    exc = rehydrate_failure({"category": "ValueError", "message": "builtin"})
    assert isinstance(exc, ValueError)
    exc = rehydrate_failure({"category": "NoSuchThing", "message": "?"})
    from repro.errors import ReproError

    assert isinstance(exc, ReproError)


# ----------------------------------------------------------------------
# run_with_retry / run_cell
# ----------------------------------------------------------------------

def test_run_with_retry_attempt_accounting():
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        if attempts["n"] < 3:
            raise TransientError("hiccup")
        return "done"

    result, error, made = run_with_retry(flaky, no_sleep_policy(max_attempts=5))
    assert (result, error, made) == ("done", None, 3)

    def permanent():
        raise ValueError("no")

    result, error, made = run_with_retry(permanent, no_sleep_policy(max_attempts=5))
    assert result is None and isinstance(error, ValueError) and made == 1


def test_run_cell_fires_retry_and_finish_events(traces):
    class Recorder(EngineObserver):
        def __init__(self):
            self.retries = []
            self.finished = []

        def cell_retry(self, task, failed_attempts, error, delay):
            self.retries.append((failed_attempts, type(error).__name__, delay))

        def cell_finished(self, task, outcome):
            self.finished.append(outcome)

    recorder = Recorder()
    task = CellTask(
        spec="dir0b",
        scheme_key="dir0b",
        trace=FlakyTrace(traces[0], fail_after=5, fail_times=2),
        trace_name="pops",
    )
    outcome = run_cell(
        Simulator(),
        task,
        retry=no_sleep_policy(max_attempts=3),
        observer=recorder,
    )
    assert outcome.ok and outcome.attempts == 3
    assert [r[0] for r in recorder.retries] == [1, 2]
    assert len(recorder.finished) == 1  # exactly once per cell
    assert recorder.finished[0] is outcome


# ----------------------------------------------------------------------
# Engine configuration and observers
# ----------------------------------------------------------------------

def test_engine_configuration_validation():
    with pytest.raises(ConfigurationError):
        Engine(checkpoint_every=0)
    with pytest.raises(ConfigurationError):
        Engine(resume=True)
    with pytest.raises(ConfigurationError):
        Engine(jobs=0)
    with pytest.raises(ConfigurationError):
        ProcessPoolBackend(jobs=0)
    with pytest.raises(ConfigurationError):
        backend_for(0, RetryPolicy())


def test_backend_for_selects_by_jobs():
    assert isinstance(backend_for(1, RetryPolicy()), InlineBackend)
    assert isinstance(backend_for(3, RetryPolicy()), ProcessPoolBackend)


def test_metrics_observe_serial_run_and_cache_round_trip(tmp_path, traces):
    cache = ResultCache(tmp_path / "cache")
    plan = ExecutionPlan(traces=traces, schemes=["dir0b", "wti"])

    cold = EngineMetrics()
    first = Engine(result_cache=cache, observer=cold).run(plan)
    assert first.ok
    snapshot = cold.snapshot()
    assert snapshot["cells_started"] == 4
    assert snapshot["cells_ok"] == 4
    assert snapshot["cache_misses"] == 4
    assert "cache_hits" not in snapshot
    assert snapshot["sim_seconds"] > 0

    warm = EngineMetrics()
    second = Engine(result_cache=cache, observer=warm).run(
        ExecutionPlan(traces=traces, schemes=["dir0b", "wti"])
    )
    assert warm.get("cache_hits") == 4
    assert warm.get("cells_ok") == 0  # nothing simulated
    for scheme in ("dir0b", "wti"):
        for trace in traces:
            assert second.results[scheme][trace.name] == (
                first.results[scheme][trace.name]
            )


def test_observer_group_fans_out_and_null_observer_is_silent(traces):
    seen = []

    class Tap(EngineObserver):
        def __init__(self, tag):
            self.tag = tag

        def plan_started(self, plan):
            seen.append((self.tag, "start"))

        def plan_finished(self, plan, result):
            seen.append((self.tag, "finish"))

    plan = ExecutionPlan(traces=[traces[0]], schemes=["dir0b"])
    Engine(observer=ObserverGroup([Tap("a"), Tap("b")])).run(plan)
    assert seen == [("a", "start"), ("b", "start"), ("a", "finish"), ("b", "finish")]
    # NULL_OBSERVER accepts every event silently.
    NULL_OBSERVER.cell_started(None)
    NULL_OBSERVER.cell_finished(None, None)


def test_metrics_observe_pooled_run(traces):
    metrics = EngineMetrics()
    plan = ExecutionPlan(traces=traces, schemes=["dir0b", "wti"])
    outcome = Engine(jobs=2, observer=metrics).run(plan)
    assert outcome.ok
    assert metrics.get("cells_started") == 4
    assert metrics.get("cells_ok") == 4


def test_strict_serial_reraises_original_exception_object(traces):
    sentinel = InvariantViolation("the very one")

    def bad_factory(num_caches):
        raise sentinel

    bad_factory.scheme_key = "broken"
    plan = ExecutionPlan(traces=[traces[0]], schemes=[bad_factory])
    with pytest.raises(InvariantViolation) as excinfo:
        Engine(strict=True).run(plan)
    assert excinfo.value is sentinel


def test_inline_backend_matches_pool_backend(traces):
    plan = ExecutionPlan(traces=traces, schemes=["dir0b", "wti"])
    cells = plan.cells()
    simulator = Simulator()
    inline = InlineBackend().run(simulator, cells)
    pooled = ProcessPoolBackend(jobs=2).run(simulator, cells)
    assert inline == pooled
