"""Chunk-streamed simulation: bit-for-bit parity with the in-memory path.

The claims under test (docs/TRACESTORE.md):

* simulating a ``.ctrc`` chunk by chunk produces a result identical to
  simulating the same references in memory — for **every** registered
  protocol (the table-kernel protocols carry state across chunk
  boundaries in a resident session; the rest accumulate per chunk
  through a shared context);
* the parity survives pooled dispatch (chunk handles across the pickle
  boundary) and a checkpoint/resume cycle whose snapshot lands
  mid-chunk;
* streaming workload generation emits exactly the records the
  in-memory builder produces.
"""

import pytest

from repro.core.simulator import Simulator
from repro.errors import CheckpointError
from repro.protocols.registry import available_protocols
from repro.runner.checkpoint import CheckpointManager, result_to_json
from repro.runner.faults import KillPoint, SaboteurProtocol
from repro.runner.resilient import run_resilient_sweep
from repro.store import ChunkedTrace, pack_trace
from repro.trace.columnar import ColumnarTrace
from repro.trace.io import load_trace
from repro.workloads.registry import make_trace, stream_trace

LENGTH = 4000
CHUNK_RECORDS = 997  # prime: every chunk boundary is "awkward"


@pytest.fixture(scope="module")
def trace():
    return make_trace("pops", length=LENGTH, seed=7)


@pytest.fixture(scope="module")
def chunked(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "pops.ctrc"
    pack_trace(trace, path, chunk_records=CHUNK_RECORDS)
    with ChunkedTrace(path) as opened:
        yield opened


# ----------------------------------------------------------------------
# Serial parity, every protocol
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheme", available_protocols())
def test_chunked_equals_columnar_per_protocol(trace, chunked, scheme):
    simulator = Simulator()
    columnar = ColumnarTrace.from_trace(trace)
    streamed = simulator.run(chunked, scheme)
    in_memory = simulator.run(columnar, scheme)
    assert result_to_json(streamed) == result_to_json(in_memory)


def test_chunked_repeat_runs_are_stable(chunked):
    """madvise page release must not disturb a second pass."""
    simulator = Simulator()
    first = simulator.run(chunked, "dir0b")
    second = simulator.run(chunked, "dir0b")
    assert result_to_json(first) == result_to_json(second)


def test_resolve_protocol_sizes_from_index(chunked):
    """Machine sizing comes from the index, not a full scan."""
    simulator = Simulator()
    result = simulator.run(chunked, "dir1nb")
    assert result.total_refs == LENGTH
    assert chunked.pids == sorted(chunked.meta["pids"])


# ----------------------------------------------------------------------
# Pooled dispatch: handles across the pickle boundary
# ----------------------------------------------------------------------

def test_pooled_sweep_parity(trace, chunked):
    outcome = run_resilient_sweep(
        [chunked], ["dir0b", "dragon"], jobs=2
    )
    assert outcome.ok
    simulator = Simulator()
    columnar = ColumnarTrace.from_trace(trace)
    for scheme in ("dir0b", "dragon"):
        pooled = outcome.result(scheme, chunked.name)
        serial = simulator.run(columnar, scheme)
        serial.scheme = scheme
        assert result_to_json(pooled) == result_to_json(serial)


# ----------------------------------------------------------------------
# Mid-chunk checkpoint/resume
# ----------------------------------------------------------------------

def _killer(scheme: str, trigger_after: int):
    from repro.protocols.registry import make_protocol

    def factory(num_caches):
        return SaboteurProtocol(
            make_protocol(scheme, num_caches),
            trigger_after=trigger_after,
            mode="kill",
        )

    factory.scheme_key = scheme
    return factory


def test_midchunk_kill_and_resume_parity(trace, chunked, tmp_path):
    ckpt = str(tmp_path / "ckpt")
    checkpoint_every = 600  # never a multiple of the 997-record chunks
    factory = _killer("dir1nb", 900)

    KillPoint.arm()
    try:
        with pytest.raises(KeyboardInterrupt):
            run_resilient_sweep(
                [chunked], [factory],
                checkpoint_dir=ckpt, checkpoint_every=checkpoint_every,
            )
    finally:
        KillPoint.disarm()

    state = CheckpointManager(ckpt).load_cell_state()
    assert state is not None
    chunk_index, offset = state["chunk_position"]
    assert offset != 0, "snapshot must land mid-chunk"
    assert state["records_done"] == chunk_index * CHUNK_RECORDS + offset

    resumed = run_resilient_sweep(
        [chunked], [factory],
        checkpoint_dir=ckpt, checkpoint_every=checkpoint_every, resume=True,
    )
    assert resumed.ok
    plain = Simulator().run(ColumnarTrace.from_trace(trace), "dir1nb")
    plain.scheme = "dir1nb"
    assert result_to_json(resumed.result("dir1nb", chunked.name)) == \
        result_to_json(plain)


def test_resume_rejects_rechunked_file(trace, chunked, tmp_path):
    """A snapshot must not resume against a re-chunked store."""
    ckpt = str(tmp_path / "ckpt")
    factory = _killer("dir0b", 900)
    KillPoint.arm()
    try:
        with pytest.raises(KeyboardInterrupt):
            run_resilient_sweep(
                [chunked], [factory], checkpoint_dir=ckpt, checkpoint_every=600
            )
    finally:
        KillPoint.disarm()

    # Same records, different chunk geometry -> same fingerprint but a
    # different (chunk, offset) mapping for the snapshot position.
    repacked_path = tmp_path / "repacked.ctrc"
    pack_trace(trace, repacked_path, chunk_records=CHUNK_RECORDS - 100)
    with ChunkedTrace(repacked_path) as repacked:
        outcome = run_resilient_sweep(
            [repacked], [factory],
            checkpoint_dir=ckpt, checkpoint_every=600, resume=True,
            strict=False,
        )
    failures = outcome.all_failures()
    assert failures and any(
        "chunk position" in failure.message or "snapshot" in failure.message
        for failure in failures
    )


# ----------------------------------------------------------------------
# Streaming generation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("workload", ["pops", "thor", "pero"])
def test_stream_trace_matches_build(workload):
    streamed = list(stream_trace(workload, length=3000))
    built = make_trace(workload, length=3000).records
    assert streamed == built


def test_load_trace_sniffs_ctrc(trace, tmp_path):
    path = tmp_path / "sniff.ctrc"
    pack_trace(trace, path, chunk_records=512)
    loaded = load_trace(path)
    assert isinstance(loaded, ChunkedTrace)
    assert len(loaded) == len(trace)
    assert list(loaded[:10]) == trace.records[:10]
    loaded.close()
