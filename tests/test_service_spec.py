"""Job-spec parsing, validation, and identity (repro.service.spec)."""

import pytest

from repro.errors import JobSpecError
from repro.service.spec import JobSpec, TraceSpec, known_workloads, parse_job_spec

pytestmark = pytest.mark.service


def minimal(**overrides):
    payload = {
        "schemes": ["dir0b"],
        "traces": [{"workload": "pops", "length": 500}],
    }
    payload.update(overrides)
    return payload


def test_parse_minimal_spec():
    spec = parse_job_spec(minimal())
    assert spec.scheme_keys() == ["dir0b"]
    assert spec.scheme_specs() == ["dir0b"]
    assert spec.traces == (TraceSpec(workload="pops", length=500),)
    assert spec.sharer_key == "pid"
    assert spec.cell_count() == 1


def test_parse_scheme_with_options_gets_derived_key():
    spec = parse_job_spec(
        minimal(schemes=[{"name": "dirinb", "options": {"num_pointers": 2}}])
    )
    assert spec.scheme_keys() == ["dir2nb"]
    assert spec.scheme_specs() == [("dirinb", {"num_pointers": 2})]


def test_trace_entry_as_bare_string():
    spec = parse_job_spec(minimal(traces=["thor"]))
    assert spec.traces[0].workload == "thor"


def test_micro_workloads_are_known():
    assert any(name.startswith("micro-") for name in known_workloads())
    spec = parse_job_spec(minimal(traces=[{"workload": "micro-migratory"}]))
    trace = spec.traces[0].build()
    assert len(trace) > 0


def test_path_trace_entry():
    spec = parse_job_spec(minimal(traces=[{"path": "some/file.trace"}]))
    assert spec.traces[0].path == "some/file.trace"


@pytest.mark.parametrize(
    "bad",
    [
        {"schemes": ["nonsense"], "traces": ["pops"]},
        {"schemes": ["dir0b"], "traces": ["not-a-workload"]},
        {"schemes": [], "traces": ["pops"]},
        {"schemes": ["dir0b"], "traces": []},
        {"schemes": ["dir0b"]},
        {"traces": ["pops"]},
        {"schemes": ["dir0b"], "traces": ["pops"], "sharer_key": "node"},
        {"schemes": ["dir0b"], "traces": ["pops"], "priority": "high"},
        {"schemes": ["dir0b"], "traces": ["pops"], "unexpected": 1},
        {"schemes": ["dir0b"], "traces": [{"workload": "pops", "length": 0}]},
        {"schemes": ["dir0b"], "traces": [{"workload": "pops", "path": "x"}]},
        {"schemes": ["dir0b"], "traces": [{}]},
        {"schemes": [{"name": "dir0b", "bogus": 1}], "traces": ["pops"]},
        "not an object",
        42,
    ],
)
def test_invalid_specs_rejected(bad):
    with pytest.raises(JobSpecError):
        parse_job_spec(bad)


def test_spec_hash_is_stable_and_content_sensitive():
    a = parse_job_spec(minimal())
    b = parse_job_spec(minimal())
    assert a.spec_hash() == b.spec_hash()
    c = parse_job_spec(minimal(schemes=["dragon"]))
    assert a.spec_hash() != c.spec_hash()
    d = parse_job_spec(minimal(tags={"study": "x"}))
    assert a.spec_hash() != d.spec_hash()


def test_canonical_roundtrips_through_parse():
    spec = parse_job_spec(
        minimal(
            schemes=["dir0b", {"name": "dirinb", "options": {"num_pointers": 3}}],
            priority=5,
            dedup=True,
            tags={"k": "v"},
        )
    )
    again = parse_job_spec(spec.canonical())
    assert again == spec
    assert again.spec_hash() == spec.spec_hash()


def test_workload_trace_build_is_deterministic():
    spec = parse_job_spec(minimal(traces=[{"workload": "pops", "length": 400, "seed": 2}]))
    t1 = spec.traces[0].build()
    t2 = spec.traces[0].build()
    assert [r.address for r in t1.records] == [r.address for r in t2.records]
