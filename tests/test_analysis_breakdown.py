"""Table 5 / Figure 4 breakdown analyses."""

import pytest

from repro.analysis.breakdown import TABLE5_ROWS, breakdown_fractions, breakdown_table
from repro.core.simulator import simulate
from repro.cost.accounting import CostCategory
from repro.cost.bus import PAPER_PIPELINED

from conftest import tiny_trace


@pytest.fixture(scope="module")
def results():
    trace = tiny_trace()
    return {
        scheme: simulate(trace, scheme)
        for scheme in ("dir1nb", "wti", "dir0b", "dragon")
    }


def test_table_has_all_rows_and_schemes(results):
    table = breakdown_table(results, PAPER_PIPELINED)
    assert set(table) == set(results)
    for row in table.values():
        assert set(row) == set(TABLE5_ROWS)


def test_row_sums_match_total_cost(results):
    table = breakdown_table(results, PAPER_PIPELINED)
    for scheme, result in results.items():
        assert sum(table[scheme].values()) == pytest.approx(
            result.bus_cycles_per_reference(PAPER_PIPELINED)
        )


def test_scheme_specific_categories(results):
    table = breakdown_table(results, PAPER_PIPELINED)
    # Only WTI and Dragon use the "wt or wup" row.
    assert table["wti"][CostCategory.WRITE_THROUGH_OR_UPDATE] > 0
    assert table["dragon"][CostCategory.WRITE_THROUGH_OR_UPDATE] > 0
    assert table["dir0b"][CostCategory.WRITE_THROUGH_OR_UPDATE] == 0
    # Only Dir0B pays standalone directory checks.
    assert table["dir0b"][CostCategory.DIR_ACCESS] > 0
    assert table["dir1nb"][CostCategory.DIR_ACCESS] == 0
    # WTI never writes back.
    assert table["wti"][CostCategory.WRITE_BACK] == 0


def test_accepts_sequence_of_results(results):
    table = breakdown_table(list(results.values()), PAPER_PIPELINED)
    assert set(table) == set(results)


def test_fractions_sum_to_one_for_nonzero_schemes(results):
    fractions = breakdown_fractions(results, PAPER_PIPELINED)
    for scheme, row in fractions.items():
        total = sum(row.values())
        if results[scheme].bus_cycles_per_reference(PAPER_PIPELINED) > 0:
            assert total == pytest.approx(1.0)
