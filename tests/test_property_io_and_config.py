"""Property tests: serialization round-trips and configuration fuzzing."""

from hypothesis import given, settings, strategies as st

from repro.trace.io import (
    format_record,
    parse_record,
    read_trace_binary,
    read_trace_file,
    write_trace_binary,
    write_trace_file,
)
from repro.trace.record import RefType, TraceRecord

record_strategy = st.builds(
    lambda cpu, pid, ref_type, address, system, lock, spin: TraceRecord(
        cpu=cpu,
        pid=pid,
        ref_type=ref_type,
        address=address,
        system=system,
        lock=lock or spin,  # spin implies lock
        spin=spin,
    ),
    cpu=st.integers(0, 65_535),
    pid=st.integers(0, 65_535),
    ref_type=st.sampled_from(list(RefType)),
    address=st.integers(0, 2**40 - 1),
    system=st.booleans(),
    lock=st.booleans(),
    spin=st.booleans(),
)


@settings(max_examples=200, deadline=None)
@given(record=record_strategy)
def test_text_line_round_trips(record):
    assert parse_record(format_record(record)) == record


@settings(max_examples=30, deadline=None)
@given(records=st.lists(record_strategy, max_size=50))
def test_text_file_round_trips(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("io") / "t.trace"
    write_trace_file(records, path)
    assert list(read_trace_file(path)) == records


@settings(max_examples=30, deadline=None)
@given(records=st.lists(record_strategy, max_size=50))
def test_binary_file_round_trips(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("io") / "t.bin"
    write_trace_binary(records, path)
    assert list(read_trace_binary(path)) == records


@settings(max_examples=25, deadline=None)
@given(
    instr_fraction=st.floats(0.0, 0.8),
    write_fraction=st.floats(0.0, 1.0),
    length=st.integers(200, 3_000),
    seed=st.integers(0, 2**31),
    quantum=st.integers(1, 12),
)
def test_any_valid_workload_config_generates(instr_fraction, write_fraction, length, seed, quantum):
    """Every accepted configuration must produce a full-length,
    simulatable trace."""
    from repro.core.simulator import simulate
    from repro.workloads.base import SyntheticWorkload, WorkloadConfig

    config = WorkloadConfig(
        length=length,
        seed=seed,
        quantum=quantum,
        instr_fraction=instr_fraction,
        write_fraction_private=write_fraction,
    )
    trace = SyntheticWorkload(config).build()
    assert len(trace) == length
    result = simulate(trace, "dir0b")
    assert result.total_refs == length


@settings(max_examples=50, deadline=None)
@given(
    send_address=st.integers(0, 4),
    transfer_word=st.integers(1, 4),
    invalidate=st.integers(0, 4),
    wait_memory=st.integers(0, 6),
    words=st.integers(1, 16),
)
def test_any_valid_timing_yields_consistent_buses(
    send_address, transfer_word, invalidate, wait_memory, words
):
    """Derived bus models never price below the pipelined floor."""
    from repro.cost.bus import non_pipelined_bus, pipelined_bus
    from repro.cost.timing import BusTiming
    from repro.protocols.events import OpKind, BusOp

    timing = BusTiming(
        send_address=send_address,
        transfer_word=transfer_word,
        invalidate=invalidate,
        wait_memory=wait_memory,
        words_per_block=words,
    )
    pipe, nonpipe = pipelined_bus(timing), non_pipelined_bus(timing)
    for kind in OpKind:
        op = BusOp(kind, 1)
        assert 0 <= pipe.charge(op) <= nonpipe.charge(op) + 1e-9
