"""Lease lifecycle of the durable cell queue, against a real db file.

Every test here runs on an on-disk SQLite database (``tmp_path``), not
``:memory:`` — WAL mode, ``BEGIN IMMEDIATE`` lock retries, and the
cross-connection visibility the fleet depends on only exist with a real
file.  Time-dependent transitions (expiry, backoff gates) are driven
through the explicit ``now=`` parameters, so nothing here sleeps.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.fabric.queue import (
    DEAD,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    DurableCellQueue,
    expand_spec,
)
from repro.service.spec import parse_job_spec

SPEC = {
    "schemes": ["dir0b", "wti"],
    "traces": [{"workload": "pops", "length": 500, "seed": 1}],
}


def make_queue(tmp_path, **kwargs) -> DurableCellQueue:
    return DurableCellQueue(tmp_path / "fabric.db", **kwargs)


def submit(queue, job_id="job-1", payload=SPEC, **kwargs):
    spec = parse_job_spec(dict(payload))
    queue.submit(spec, job_id, **kwargs)
    return spec


OK = {"status": "ok", "result": {"answer": 1}, "attempts": 1}


class TestExpansion:
    def test_expand_spec_is_scheme_major_sweep_order(self):
        spec = parse_job_spec(
            {
                "schemes": ["dir0b", "wti"],
                "traces": [
                    {"workload": "pops", "length": 500},
                    {"path": "traces/pero.bin"},
                ],
            }
        )
        cells = expand_spec(spec)
        assert [cell["idx"] for cell in cells] == [0, 1, 2, 3]
        assert [cell["scheme_key"] for cell in cells] == [
            "dir0b", "dir0b", "wti", "wti",
        ]
        assert [cell["trace_label"] for cell in cells] == [
            "pops", "pero.bin", "pops", "pero.bin",
        ]

    def test_spec_max_attempts_flows_into_cells(self, tmp_path):
        queue = make_queue(tmp_path)
        spec = parse_job_spec({**SPEC, "max_attempts": 1})
        queue.submit(spec, "job-1")
        cell = queue.lease("w0", lease_s=30.0, now=100.0)
        assert cell.max_attempts == 1
        assert cell.last_attempt

    def test_submit_and_add_cells_are_idempotent(self, tmp_path):
        queue = make_queue(tmp_path)
        spec = submit(queue)
        assert queue.stats()["cells"][PENDING] == spec.cell_count()
        # A second identical submit inserts no new rows.
        queue.submit(spec, "job-1")
        assert queue.add_cells("job-1", expand_spec(spec)) == 0
        assert queue.stats()["cells"][PENDING] == spec.cell_count()


class TestLeasing:
    def test_lease_charges_an_attempt(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", lease_s=30.0, now=100.0)
        assert cell.attempts == 1
        assert cell.lease_deadline == 130.0
        assert queue.stats()["cells"][LEASED] == 1

    def test_priority_orders_ready_cells(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue, "low", {**SPEC, "priority": 0})
        submit(queue, "high", {**SPEC, "priority": 5})
        assert queue.lease("w0", now=100.0).job_id == "high"

    def test_heartbeat_renews_and_prevents_reassignment(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", lease_s=10.0, now=100.0)
        assert queue.heartbeat(cell.id, "w0", lease_s=10.0, now=105.0)
        # The original deadline (110) has passed, but the renewal moved
        # it to 115: nothing to reap.
        assert queue.reap(now=112.0) == []
        assert queue.stats()["reassignments"] == 0

    def test_heartbeat_by_non_holder_is_refused(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", lease_s=10.0, now=100.0)
        assert not queue.heartbeat(cell.id, "w1", lease_s=10.0, now=101.0)


class TestExpiryAndReassignment:
    def test_expired_lease_is_requeued_and_counted(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", lease_s=10.0, now=100.0)
        assert queue.reap(now=111.0) == [(cell.id, PENDING)]
        stats = queue.stats()
        assert stats["reassignments"] == 1
        assert stats["lease_expirations"] == 1
        # The presumed-dead holder has lost the lease for good.
        assert not queue.heartbeat(cell.id, "w0", lease_s=10.0, now=111.5)
        # A survivor picks the cell up; the attempt counter continued.
        again = queue.lease("w1", now=112.0)
        assert again.id == cell.id
        assert again.attempts == 2

    def test_exhausted_expiry_dead_letters(self, tmp_path):
        queue = make_queue(tmp_path, default_max_attempts=1)
        submit(queue)
        cell = queue.lease("w0", lease_s=10.0, now=100.0)
        assert queue.reap(now=120.0) == [(cell.id, DEAD)]
        stats = queue.stats()
        assert stats["dead_letters"] == 1
        assert stats["cells"][DEAD] == 1
        (entry,) = queue.dead_letters()
        assert entry["last_category"] == "LeaseExpired"
        # A dead cell never comes back out of the queue.
        assert queue.lease("w1", now=121.0).id != cell.id


class TestSettlement:
    def test_double_completion_is_idempotent(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", lease_s=10.0, now=100.0)
        queue.reap(now=111.0)
        twin = queue.lease("w1", now=112.0)
        assert twin.id == cell.id
        # The reassigned twin settles first; the original worker was
        # alive after all and settles late — exactly one result wins.
        assert queue.settle(twin.id, "w1", OK, now=113.0)
        assert not queue.settle(cell.id, "w0", OK, now=114.0)
        stats = queue.stats()
        assert stats["duplicate_completions"] == 1
        assert stats["cells"][DONE] == 1

    def test_error_payload_settles_failed(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", now=100.0)
        queue.settle(
            cell.id, "w0",
            {"status": "error", "category": "ProtocolError",
             "message": "boom", "attempts": 1},
            now=101.0,
        )
        outcome = queue.cell_outcomes("job-1")[cell.index]
        assert outcome["state"] == FAILED
        assert outcome["last_category"] == "ProtocolError"

    def test_cache_settles_count_as_dedup_hits(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", now=100.0)
        queue.settle(cell.id, "w0", OK, source="cache", now=101.0)
        assert queue.stats()["dedup_hits"] == 1


class TestRetryAndDeadLetter:
    def test_retry_gates_behind_backoff(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", now=100.0)
        state = queue.retry_cell(
            cell.id, "w0", category="TransientError", message="flaky",
            backoff_s=5.0, now=101.0,
        )
        assert state == PENDING
        # Not ready until the gate passes; the other cell still leases.
        assert queue.lease("w1", now=103.0).id != cell.id
        assert queue.lease("w1", now=104.0) is None
        # ...then the gate passes and the cell comes back.
        again = queue.lease("w1", now=106.5)
        assert again is not None and again.id == cell.id

    def test_dead_letter_after_max_attempts(self, tmp_path):
        queue = make_queue(tmp_path, default_max_attempts=2)
        submit(queue)
        now = 100.0
        cell = queue.lease("w0", now=now)
        assert queue.retry_cell(
            cell.id, "w0", category="TransientError", message="1",
            now=now + 1,
        ) == PENDING
        cell = queue.lease("w0", now=now + 2)
        assert cell.attempts == 2
        assert queue.retry_cell(
            cell.id, "w0", category="TransientError", message="2",
            now=now + 3,
        ) == DEAD
        assert queue.stats()["dead_letters"] == 1
        (entry,) = queue.dead_letters()
        assert entry["attempts"] == 2
        assert entry["last_error"] == "2"

    def test_retry_after_lease_loss_is_a_noop(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        cell = queue.lease("w0", lease_s=10.0, now=100.0)
        queue.reap(now=111.0)
        state = queue.retry_cell(
            cell.id, "w0", category="TransientError", message="late",
            now=112.0,
        )
        assert state == PENDING  # unchanged, not re-gated by the loser
        assert queue.stats()["dead_letters"] == 0

    def test_bad_max_attempts_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            make_queue(tmp_path, default_max_attempts=0)


class TestJobLifecycle:
    def test_job_flips_done_when_last_cell_settles(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        assert queue.job_state("job-1") == "pending"
        first = queue.lease("w0", now=100.0)
        assert queue.job_state("job-1") == "running"
        queue.settle(first.id, "w0", OK, now=101.0)
        assert queue.job_state("job-1") == "running"
        second = queue.lease("w0", now=102.0)
        queue.settle(second.id, "w0", OK, now=103.0)
        assert queue.job_state("job-1") == "done"
        assert queue.pending_jobs() == []

    def test_job_with_dead_cell_fails(self, tmp_path):
        queue = make_queue(tmp_path, default_max_attempts=1)
        submit(queue)
        first = queue.lease("w0", now=100.0)
        queue.settle(first.id, "w0", OK, now=101.0)
        second = queue.lease("w0", lease_s=1.0, now=102.0)
        queue.reap(now=104.0)  # dead-letters the exhausted cell
        assert queue.job_state("job-1") == "failed"
        assembled = queue.assemble("job-1")
        assert len(assembled["failures"]) == 1
        assert assembled["failures"][0]["state"] == DEAD
        assert second.id not in [
            c["cell_id"]
            for c in queue.cell_outcomes("job-1")
            if c["state"] == DONE
        ]

    def test_finish_job_forces_terminal_once(self, tmp_path):
        queue = make_queue(tmp_path)
        submit(queue)
        queue.finish_job("job-1", "failed", now=100.0)
        assert queue.job_state("job-1") == "failed"
        # Already terminal: a later "done" does not overwrite it.
        queue.finish_job("job-1", "done", now=101.0)
        assert queue.job_state("job-1") == "failed"


class TestConcurrentWriters:
    def test_thread_fleet_settles_every_cell_exactly_once(self, tmp_path):
        """8 threads race lease/settle on one db file; no cell is lost,
        none is double-counted, all counters reconcile."""
        path = tmp_path / "fabric.db"
        spec = parse_job_spec(
            {
                "schemes": ["dir0b", "wti", "dragon", "berkeley"],
                "traces": [
                    {"workload": "pops", "length": 500, "seed": s}
                    for s in range(4)
                ],
            }
        )
        DurableCellQueue(path).submit(spec, "job-1")
        settled: list[int] = []
        lock = threading.Lock()

        def worker(worker_id: str) -> None:
            queue = DurableCellQueue(path)  # own connection pool
            while True:
                cell = queue.lease(worker_id, lease_s=30.0)
                if cell is None:
                    if queue.unfinished_cells() == 0:
                        return
                    continue
                assert queue.settle(cell.id, worker_id, OK)
                with lock:
                    settled.append(cell.id)

        threads = [
            threading.Thread(target=worker, args=(f"w{n}",)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(settled) == spec.cell_count()
        assert len(set(settled)) == spec.cell_count()
        queue = DurableCellQueue(path)
        stats = queue.stats()
        assert stats["cells"][DONE] == spec.cell_count()
        assert stats["duplicate_completions"] == 0
        assert queue.job_state("job-1") == "done"
