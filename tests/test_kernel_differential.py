"""Differential tests for the state-table kernels.

``repro.protocols.kernels`` reimplements the dir0b/dir1nb/wti/dragon
inner loops as table lookups over a compact state encoding.  The
contract is strict bit-identity with the object model plus a guarantee
that the kernel *refuses* (returns None, state untouched) whenever the
protocol, caches, or live state fall outside its verified encoding —
so wrappers, finite caches, and mutation-tested variants always
exercise the real state machines.
"""

import pytest

from repro.core.simulator import SimulationContext, Simulator
from repro.core.result import merge_results
from repro.errors import ConfigurationError
from repro.memory.cache import FiniteCache
from repro.protocols.kernels import has_kernel, kernel_run
from repro.protocols.registry import make_protocol
from repro.trace.columnar import ColumnarTrace
from repro.workloads.registry import make_trace

KERNEL_SCHEMES = ("dir0b", "dir1nb", "wti", "dragon")
TRACE_LENGTH = 6000


def _snapshot(protocol):
    """Every cache's visible line states, for state-equality checks."""
    return [
        protocol.cache_contents(index) for index in range(protocol.num_caches)
    ]


@pytest.fixture(scope="module")
def trace():
    return make_trace("pops", length=TRACE_LENGTH, seed=7)


@pytest.fixture(scope="module")
def columnar(trace):
    return ColumnarTrace.from_trace(trace)


@pytest.fixture(scope="module")
def write_heavy():
    # Migratory workloads drive the dirty-owner transitions hardest.
    return ColumnarTrace.from_trace(
        make_trace("thor", length=TRACE_LENGTH, seed=11)
    )


# ----------------------------------------------------------------------
# Engagement: the kernels actually run for the stock protocols
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_engages_for_stock_protocol(columnar, scheme):
    simulator = Simulator()
    protocol = make_protocol(scheme, num_caches=len(columnar.pids))
    assert has_kernel(protocol)
    from repro.core.result import SimulationResult

    result = SimulationResult(scheme=protocol.name, trace_name=columnar.name)
    ran = kernel_run(simulator, columnar, protocol, result, SimulationContext())
    assert ran is result  # did not bail to the generic path


def test_no_kernel_for_other_protocols(columnar):
    for scheme in ("dirnnb", "dirib", "coarse-vector", "write-once", "illinois"):
        protocol = make_protocol(scheme, num_caches=4)
        assert not has_kernel(protocol)
        assert (
            kernel_run(
                Simulator(),
                columnar,
                protocol,
                object(),
                SimulationContext(),
            )
            is None
        )


# ----------------------------------------------------------------------
# Bit-identity with the record path and the generic columnar loop
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_matches_record_path(trace, columnar, scheme):
    simulator = Simulator()
    assert simulator.run(columnar, scheme) == simulator.run(trace, scheme)


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_matches_generic_columnar_loop(columnar, scheme):
    """Same trace, same protocol type: kernel == _run_columnar."""
    from repro.core.result import SimulationResult

    simulator = Simulator()
    num_caches = len(columnar.pids)

    kernel_result = simulator.run(columnar, scheme)

    protocol = make_protocol(scheme, num_caches=num_caches)
    generic = simulator._run_columnar(
        columnar,
        protocol,
        SimulationResult(scheme=protocol.name, trace_name=columnar.name),
        SimulationContext(),
    )
    assert kernel_result == generic


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_matches_on_write_heavy_trace(write_heavy, scheme):
    simulator = Simulator()
    assert simulator.run(write_heavy, scheme) == simulator.run(
        write_heavy.to_trace(), scheme
    )


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_matches_with_cpu_sharers(trace, columnar, scheme):
    simulator = Simulator(sharer_key="cpu")
    assert simulator.run(columnar, scheme) == simulator.run(trace, scheme)


# ----------------------------------------------------------------------
# Import/export round trips (segmented simulation)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_segmented_run_matches_continuous(trace, columnar, scheme):
    """Checkpoint-shaped execution: one protocol + context, many windows.

    Every window after the first imports live state the previous
    window's kernel exported, so this round-trips the full encoding
    (dirty owners, shared masks, directory entries) at odd boundaries.
    """
    simulator = Simulator()
    whole = simulator.run(trace, scheme)

    protocol = make_protocol(scheme, num_caches=len(columnar.pids))
    context = SimulationContext()
    parts = []
    for start in range(0, len(columnar), 777):
        segment = columnar.records[start : start + 777]
        parts.append(
            simulator.run(segment, protocol, trace_name=trace.name, context=context)
        )
    total = merge_results(parts, name=trace.name)
    total.scheme = whole.scheme
    assert total == whole


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_export_matches_object_model_state(columnar, scheme):
    """After a run, the kernel-exported caches equal the generic path's."""
    from repro.core.result import SimulationResult

    simulator = Simulator()
    num_caches = len(columnar.pids)

    via_kernel = make_protocol(scheme, num_caches=num_caches)
    ran = kernel_run(
        simulator,
        columnar,
        via_kernel,
        SimulationResult(scheme=via_kernel.name, trace_name=columnar.name),
        SimulationContext(),
    )
    assert ran is not None

    via_generic = make_protocol(scheme, num_caches=num_caches)
    simulator._run_columnar(
        columnar,
        via_generic,
        SimulationResult(scheme=via_generic.name, trace_name=columnar.name),
        SimulationContext(),
    )
    assert _snapshot(via_kernel) == _snapshot(via_generic)


# ----------------------------------------------------------------------
# Refusal: anything outside the verified encoding falls back
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_finite_kernel_engages_for_uniform_geometry(columnar, scheme):
    """Exact FiniteCaches of one geometry run the capacity-aware kernel."""
    from repro.core.result import SimulationResult

    simulator = Simulator()
    protocol = make_protocol(
        scheme,
        num_caches=len(columnar.pids),
        cache_factory=lambda: FiniteCache(num_sets=4, associativity=1),
    )
    assert has_kernel(protocol)
    result = SimulationResult(scheme=protocol.name, trace_name=columnar.name)
    ran = kernel_run(simulator, columnar, protocol, result, SimulationContext())
    assert ran is result


def test_kernel_bails_on_subclassed_finite_cache(columnar):
    """A FiniteCache subclass is outside both kernels' verified model."""

    class TracingFiniteCache(FiniteCache):
        pass

    simulator = Simulator()
    protocol = make_protocol(
        "dir0b",
        num_caches=len(columnar.pids),
        cache_factory=lambda: TracingFiniteCache(num_sets=4, associativity=1),
    )
    before = _snapshot(protocol)
    assert (
        kernel_run(simulator, columnar, protocol, object(), SimulationContext())
        is None
    )
    assert _snapshot(protocol) == before  # refusal leaves state untouched


def test_kernel_bails_on_mixed_geometry(columnar):
    """Caches of different shapes fall back to the generic loop."""
    geometries = iter([(4, 1), (8, 2), (4, 1), (8, 2), (4, 1), (8, 2)])
    simulator = Simulator()
    protocol = make_protocol(
        "dir0b",
        num_caches=len(columnar.pids),
        cache_factory=lambda: FiniteCache(*next(geometries)),
    )
    assert (
        kernel_run(simulator, columnar, protocol, object(), SimulationContext())
        is None
    )


def test_finite_cache_columnar_run_still_correct(trace, columnar):
    """Finite kernel and generic record path agree on finite caches."""
    simulator = Simulator()

    def factory():
        return FiniteCache(num_sets=4, associativity=1)

    num_caches = len(columnar.pids)
    fast = simulator.run(
        columnar, make_protocol("dir0b", num_caches, cache_factory=factory)
    )
    slow = simulator.run(
        trace, make_protocol("dir0b", num_caches, cache_factory=factory)
    )
    assert fast == slow


def test_kernel_bails_on_unseen_held_block(columnar):
    """A context that has never seen a held block is outside the model."""
    simulator = Simulator()
    protocol = make_protocol("dir0b", num_caches=len(columnar.pids))
    warm_context = SimulationContext()
    simulator.run(columnar, protocol, context=warm_context)

    cold_context = SimulationContext()  # empty seen_blocks, caches warm
    assert (
        kernel_run(simulator, columnar, protocol, object(), cold_context) is None
    )


def test_kernel_bails_on_wrapped_protocol(columnar):
    from repro.runner.faults import SaboteurProtocol

    inner = make_protocol("dir0b", num_caches=len(columnar.pids))
    wrapped = SaboteurProtocol(inner, trigger_after=10**9)
    assert not has_kernel(wrapped)


def test_invariant_checking_bypasses_kernel(trace, columnar):
    """check_invariants forces the record path; results still match."""
    checked = Simulator(check_invariants=100)
    plain = Simulator()
    assert checked.run(columnar, "dir0b") == plain.run(columnar, "dir0b")


# ----------------------------------------------------------------------
# Error parity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scheme", KERNEL_SCHEMES)
def test_kernel_sharer_overflow_error_matches_generic(columnar, scheme):
    """Too many sharers raises the same ConfigurationError text."""
    from repro.core.result import SimulationResult

    simulator = Simulator()

    with pytest.raises(ConfigurationError) as via_kernel:
        simulator.run(columnar, make_protocol(scheme, num_caches=1))

    protocol = make_protocol(scheme, num_caches=1)
    with pytest.raises(ConfigurationError) as via_generic:
        simulator._run_columnar(
            columnar,
            protocol,
            SimulationResult(scheme=protocol.name, trace_name=columnar.name),
            SimulationContext(),
        )
    assert str(via_kernel.value) == str(via_generic.value)
