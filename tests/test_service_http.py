"""The HTTP API and client, end to end over a real socket."""

import json
import threading

import pytest

from repro.core.simulator import Simulator
from repro.errors import JobNotFoundError, JobSpecError, ServiceUnavailableError
from repro.runner.checkpoint import result_to_json
from repro.engine.backends import ProcessPoolBackend
from repro.service import Scheduler, ServiceClient, ServiceServer
from repro.workloads.registry import make_trace

SPEC = {
    "schemes": ["dir0b", "dragon"],
    "traces": [{"workload": "pops", "length": 1500, "seed": 3}],
}


pytestmark = pytest.mark.service


@pytest.fixture
def server():
    instance = ServiceServer(Scheduler(workers=2, sim_jobs=1), port=0)
    instance.start()
    yield instance
    instance.stop(mode="drain", timeout=30.0)


@pytest.fixture
def client(server):
    return ServiceClient(server.url, timeout=15.0)


def test_healthz_and_stats(client):
    health = client.health()
    assert health["status"] == "ok"
    stats = client.stats()
    assert stats["jobs"]["total"] == 0
    assert stats["cells"]["simulated"] == 0


def test_submit_wait_and_results_roundtrip(client):
    job = client.submit(SPEC)
    assert job["state"] in ("queued", "running", "done")
    assert not job["deduplicated"]
    final = client.wait(job["id"])
    assert final["state"] == "done"
    assert final["cells"]["completed"] == 2

    # The client can decode results into real SimulationResult objects,
    # bit-identical to a local simulation.
    results = client.results(job["id"])
    trace = make_trace("pops", length=1500, seed=3)
    simulator = Simulator()
    for scheme in ("dir0b", "dragon"):
        direct = simulator.run(trace, scheme, trace_name=trace.name)
        direct.scheme = scheme
        assert result_to_json(results[scheme][trace.name]) == result_to_json(direct)


def test_event_stream_is_ordered_ndjson(client):
    job = client.submit(SPEC)
    events = list(client.stream_events(job["id"]))
    assert [event["seq"] for event in events] == list(range(len(events)))
    cell_events = [event for event in events if event["type"] == "cell"]
    assert {event["scheme"] for event in cell_events} == {"dir0b", "dragon"}
    assert all(event["status"] == "ok" for event in cell_events)
    assert events[-1]["type"] == "job" and events[-1]["state"] == "done"


def test_invalid_spec_maps_to_400(client):
    with pytest.raises(JobSpecError):
        client.submit({"schemes": ["nope"], "traces": ["pops"]})
    with pytest.raises(JobSpecError):
        client.submit({"schemes": ["dir0b"]})


def test_unknown_job_maps_to_404(client):
    with pytest.raises(JobNotFoundError):
        client.job("doesnotexist")
    with pytest.raises(JobNotFoundError):
        list(client.stream_events("doesnotexist"))


def test_unknown_route_maps_to_404(client):
    with pytest.raises(JobNotFoundError):
        client._request("GET", "/frobnicate")


def test_unreachable_server_raises_service_unavailable():
    dead = ServiceClient("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(ServiceUnavailableError):
        dead.health()


def test_priority_order_respected_with_single_worker():
    server = ServiceServer(Scheduler(workers=1, sim_jobs=1), port=0)
    server.start()
    try:
        client = ServiceClient(server.url, timeout=15.0)
        # Occupy the single worker, then queue low before high.
        blocker = client.submit(dict(SPEC, tags={"n": "blocker"}))
        low = client.submit(dict(SPEC, priority=0, tags={"n": "low"}))
        high = client.submit(dict(SPEC, priority=10, tags={"n": "high"}))
        client.wait(low["id"])
        client.wait(high["id"])
        client.wait(blocker["id"])
        stats = client.stats()
        assert stats["jobs"]["done"] == 3
    finally:
        server.stop(mode="drain", timeout=30.0)


def test_acceptance_concurrent_identical_jobs_zero_duplicate_simulation(server):
    """ISSUE acceptance: two identical jobs submitted concurrently both
    complete with results bit-identical to a direct ProcessPoolBackend
    run, and /stats shows the second job's cells came from
    cache/coalescing — zero duplicate simulations."""
    client = ServiceClient(server.url, timeout=30.0)
    spec = {
        "schemes": ["dir1nb", "wti", "dir0b", "dragon"],
        "traces": [{"workload": "thor", "length": 2000, "seed": 7}],
    }

    finals = {}
    barrier = threading.Barrier(2)

    def submit_and_wait(tag):
        barrier.wait()
        job = client.submit(spec)
        finals[tag] = client.wait(job["id"])

    threads = [
        threading.Thread(target=submit_and_wait, args=(i,)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not any(thread.is_alive() for thread in threads)

    first, second = finals[0], finals[1]
    assert first["id"] != second["id"]
    assert first["state"] == "done" and second["state"] == "done"

    # Bit-identical to a direct ProcessPoolBackend run of the same cells.
    trace = make_trace("thor", length=2000, seed=7)
    cells = [(scheme, scheme, trace) for scheme in spec["schemes"]]
    outcomes = ProcessPoolBackend(jobs=2).run(Simulator(), cells)
    expected = {
        spec["schemes"][index]: {trace.name: outcome["result"]}
        for index, outcome in outcomes.items()
    }
    assert first["results"] == expected
    assert second["results"] == expected

    # Zero duplicate simulations: every unique cell simulated exactly
    # once; the second job's cells all came from coalescing or cache.
    stats = client.stats()
    assert stats["cells"]["simulated"] == len(spec["schemes"])
    assert stats["cells"]["coalesced"] + stats["cells"]["cache"] == len(
        spec["schemes"]
    )
    totals = [finals[i]["cells"] for i in range(2)]
    for cells_summary in totals:
        assert cells_summary["completed"] == len(spec["schemes"])
        assert cells_summary["errors"] == 0
    assert sum(summary["simulated"] for summary in totals) == len(spec["schemes"])


def test_shutdown_endpoint_requests_stop(server, client):
    response = client.shutdown(mode="drain")
    assert response == {"stopping": True, "mode": "drain"}
    assert server.stop_event.is_set()
    assert server.requested_shutdown_mode == "drain"


def test_http_submit_body_matches_cli_json_registry(client, capsys):
    """`repro list --json` names validate against the live service."""
    from repro.cli import main

    assert main(["list", "--json"]) == 0
    registry = json.loads(capsys.readouterr().out)
    job = client.submit(
        {
            "schemes": registry["protocols"][:2],
            "traces": [
                {"workload": registry["workloads"][0], "length": 500}
            ],
        }
    )
    final = client.wait(job["id"])
    assert final["state"] == "done"
