"""Scheduler behaviour: execution, dedup layers, shutdown, resume."""

import json
import time

import pytest

from repro.core.simulator import Simulator
from repro.runner.checkpoint import result_to_json
from repro.service.jobs import CANCELLED, DONE, QUEUED
from repro.service.scheduler import Scheduler
from repro.service.spec import parse_job_spec
from repro.workloads.registry import make_trace

pytestmark = pytest.mark.service

SCHEMES = ["dir1nb", "wti", "dir0b", "dragon"]


def make_spec(**overrides):
    payload = {
        "schemes": ["dir0b", "dragon"],
        "traces": [{"workload": "pops", "length": 1500, "seed": 3}],
    }
    payload.update(overrides)
    return parse_job_spec(payload)


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def direct_results(schemes, workload="pops", length=1500, seed=3):
    """Reference results straight from the simulator, as JSON payloads."""
    trace = make_trace(workload, length=length, seed=seed)
    simulator = Simulator()
    expected = {}
    for scheme in schemes:
        result = simulator.run(trace, scheme, trace_name=trace.name)
        result.scheme = scheme
        expected[scheme] = {trace.name: result_to_json(result)}
    return expected


@pytest.fixture
def scheduler():
    instance = Scheduler(workers=2, sim_jobs=1)
    instance.start()
    yield instance
    instance.shutdown(mode="drain", timeout=30.0)


def test_job_runs_bit_identical_to_direct_simulation(scheduler):
    job, deduplicated = scheduler.submit(make_spec())
    assert not deduplicated
    assert wait_for(lambda: job.finished)
    assert job.state == DONE
    assert job.results == direct_results(["dir0b", "dragon"])


def test_resubmission_served_from_result_memo(scheduler):
    first, _ = scheduler.submit(make_spec())
    assert wait_for(lambda: first.finished)
    second, _ = scheduler.submit(make_spec())
    assert wait_for(lambda: second.finished)
    assert second.results == first.results
    assert second.cell_sources["cache"] == 2
    assert second.cell_sources["simulated"] == 0
    assert scheduler.stats()["cells"]["simulated"] == 2


def test_disk_cache_survives_scheduler_restart(tmp_path):
    first = Scheduler(workers=1, state_dir=tmp_path / "state")
    first.start()
    job, _ = first.submit(make_spec())
    assert wait_for(lambda: job.finished)
    first.shutdown(mode="drain", timeout=30.0)

    second = Scheduler(workers=1, state_dir=tmp_path / "state")
    second.start()
    try:
        resubmit, _ = second.submit(make_spec(tags={"round": "two"}))
        assert wait_for(lambda: resubmit.finished)
        assert resubmit.cell_sources["cache"] == 2
        assert resubmit.cell_sources["simulated"] == 0
        assert resubmit.results == job.results
    finally:
        second.shutdown(mode="drain", timeout=30.0)


def test_job_level_dedup_returns_same_job(scheduler):
    spec = make_spec(dedup=True, traces=[{"workload": "thor", "length": 2000}])
    first, dedup_first = scheduler.submit(spec)
    second, dedup_second = scheduler.submit(spec)
    assert not dedup_first and second is first and dedup_second
    assert wait_for(lambda: first.finished)
    assert scheduler.stats()["jobs"]["deduplicated"] == 1


def test_trace_build_failure_poisons_only_its_cells(scheduler):
    spec = make_spec(
        traces=[
            {"workload": "pops", "length": 1500, "seed": 3},
            {"path": "/nonexistent/trace.file"},
        ]
    )
    job, _ = scheduler.submit(spec)
    assert wait_for(lambda: job.finished)
    assert job.state == DONE
    assert job.cell_errors == 2  # one per scheme for the bad trace
    assert job.results == direct_results(["dir0b", "dragon"])


def test_checkpoint_shutdown_parks_job_and_resume_is_bit_identical(tmp_path):
    state = tmp_path / "state"
    # Long enough per cell (~hundreds of ms) that the checkpoint
    # shutdown reliably lands while later cells are still pending, even
    # on a fast machine — the test needs a partially-complete job.
    spec = make_spec(
        schemes=SCHEMES, traces=[{"workload": "pops", "length": 60000, "seed": 9}]
    )

    first = Scheduler(workers=1, state_dir=state)
    first.start()
    job, _ = first.submit(spec)
    assert wait_for(lambda: job.completed_cells() >= 1)
    first.shutdown(mode="checkpoint")
    assert job.state == QUEUED
    done_before = job.completed_cells()
    assert 1 <= done_before < len(SCHEMES)

    manifest = json.loads(
        (state / "jobs" / job.id / "manifest.json").read_text("utf-8")
    )
    assert sum(len(v) for v in manifest["completed"].values()) == done_before

    second = Scheduler(workers=1, state_dir=state)
    second.start()
    try:
        resumed = second.jobs.get(job.id)
        assert wait_for(lambda: resumed.finished)
        assert resumed.state == DONE
        assert resumed.cell_sources["checkpoint"] == done_before
        assert resumed.results == direct_results(SCHEMES, length=60000, seed=9)
    finally:
        second.shutdown(mode="drain", timeout=30.0)


def test_recovery_restores_terminal_job_results(tmp_path):
    state = tmp_path / "state"
    first = Scheduler(workers=1, state_dir=state)
    first.start()
    job, _ = first.submit(make_spec())
    assert wait_for(lambda: job.finished)
    first.shutdown(mode="drain", timeout=30.0)

    second = Scheduler(workers=1, state_dir=state)
    second.start()
    try:
        restored = second.jobs.get(job.id)
        assert restored.state == DONE
        assert restored.results == job.results
    finally:
        second.shutdown(mode="drain", timeout=30.0)


def test_recovery_requeues_unstarted_jobs(tmp_path):
    state = tmp_path / "state"
    first = Scheduler(workers=1, state_dir=state)
    # Workers never started: both jobs stay queued, persisted on disk.
    a, _ = first.submit(make_spec(dedup=True))
    b, dedup = first.submit(make_spec(dedup=True))
    assert b is a and dedup  # dedup'd copy is not persisted twice
    c, _ = first.submit(make_spec(tags={"copy": "distinct"}))

    second = Scheduler(workers=1, state_dir=state)
    second.start()
    try:
        restored_a = second.jobs.get(a.id)
        restored_c = second.jobs.get(c.id)
        assert wait_for(lambda: restored_a.finished and restored_c.finished)
        assert restored_a.state == DONE and restored_c.state == DONE
        assert CANCELLED not in {restored_a.state, restored_c.state}
    finally:
        second.shutdown(mode="drain", timeout=30.0)


def test_parallel_sim_jobs_produce_identical_results():
    scheduler = Scheduler(workers=1, sim_jobs=2)
    scheduler.start()
    try:
        spec = make_spec(schemes=SCHEMES)
        job, _ = scheduler.submit(spec)
        assert wait_for(lambda: job.finished, timeout=120.0)
        assert job.state == DONE
        assert job.results == direct_results(SCHEMES)
    finally:
        scheduler.shutdown(mode="drain", timeout=30.0)


def test_stats_shape(scheduler):
    stats = scheduler.stats()
    assert {"uptime_s", "jobs", "cells", "queue_depth", "workers"} <= set(stats)
    assert stats["jobs"]["total"] == 0
    assert stats["cells"]["simulated"] == 0
