"""The finite-cache extension (beyond the paper's infinite caches)."""

import pytest

from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED
from repro.memory.cache import FiniteCache
from repro.protocols.registry import make_protocol

from conftest import drive


def tiny_finite_cache():
    return FiniteCache(num_sets=4, associativity=1)


def test_dir0b_with_finite_caches_evicts_and_stays_consistent():
    protocol = make_protocol("dir0b", 2, cache_factory=tiny_finite_cache)
    # Touch more blocks than one cache can hold: sets are block % 4, so
    # blocks 0 and 4 collide, forcing eviction of a dirty line.
    results = drive(
        protocol,
        [(0, "w", 0), (0, "w", 4), (0, "r", 0)],
        check=False,  # the two-bit CLEAN_MANY check assumes infinite caches
    )
    # Block 0 was silently evicted by the write to block 4; the re-read
    # misses even though no other cache ever touched it.
    assert results[2].event.is_read_miss


def test_dirty_victim_forces_writeback_op():
    from repro.protocols.events import OpKind

    protocol = make_protocol("dirnnb", 2, cache_factory=tiny_finite_cache)
    results = drive(protocol, [(0, "w", 0), (0, "w", 4)], check=False)
    # The second write's result carries the victim write-back.
    kinds = [op.kind for op in results[1].ops]
    assert OpKind.WRITE_BACK in kinds


def test_dir1nb_finite_cache_miss_on_uncached_block():
    protocol = make_protocol("dir1nb", 2, cache_factory=tiny_finite_cache)
    results = drive(protocol, [(0, "r", 0), (0, "r", 4), (1, "r", 0)], check=False)
    # Cache 0 lost block 0 to the set conflict; cache 1's miss finds no
    # holder and is served from (current) memory.
    assert results[2].event.is_read_miss


def test_finite_caches_cost_more_than_infinite(pops_small):
    infinite = simulate(pops_small, "dir0b")
    finite = simulate(
        pops_small,
        "dir0b",
        cache_factory=lambda: FiniteCache(num_sets=16, associativity=1),
    )
    assert finite.bus_cycles_per_reference(
        PAPER_PIPELINED
    ) > infinite.bus_cycles_per_reference(PAPER_PIPELINED)
    # Capacity/conflict misses add to the coherence misses.
    assert (
        finite.frequencies().data_miss_fraction
        > infinite.frequencies().data_miss_fraction
    )


def test_larger_finite_cache_approaches_infinite(pops_small):
    small = simulate(
        pops_small,
        "dir0b",
        cache_factory=lambda: FiniteCache(num_sets=16, associativity=1),
    )
    # The workload's region bases are mutually aligned, so several hot
    # blocks share set 0; 8-way associativity absorbs that conflict.
    big = simulate(
        pops_small,
        "dir0b",
        cache_factory=lambda: FiniteCache(num_sets=1024, associativity=8),
    )
    infinite = simulate(pops_small, "dir0b")
    bus = PAPER_PIPELINED
    assert (
        infinite.bus_cycles_per_reference(bus)
        <= big.bus_cycles_per_reference(bus)
        <= small.bus_cycles_per_reference(bus)
    )
    # A 4K-block cache behaves nearly infinitely on this working set.
    assert big.bus_cycles_per_reference(bus) == pytest.approx(
        infinite.bus_cycles_per_reference(bus), rel=0.05
    )
