"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.core.invariants import InvariantChecker
from repro.protocols.base import CoherenceProtocol
from repro.protocols.events import ProtocolResult
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace
from repro.workloads.registry import make_trace

# Property tests run derandomized by default: CI and local runs replay
# the same fixed example streams, so a red build is always reproducible
# and never depends on which seed the scheduler happened to draw.
# Passing ``--hypothesis-seed=<n|random>`` opts back into seeded
# exploration (the "dev" profile) for local bug hunting.
settings.register_profile("ci", derandomize=True)
settings.register_profile("dev", derandomize=False)


def pytest_configure(config: pytest.Config) -> None:
    explicit_seed = config.getoption("--hypothesis-seed", default=None)
    settings.load_profile("dev" if explicit_seed is not None else "ci")


def drive(
    protocol: CoherenceProtocol,
    refs,
    check: bool = True,
) -> list[ProtocolResult]:
    """Feed ``(cache, "r"|"w", block)`` triples to a protocol.

    First references are detected automatically, and (by default) the
    invariant checker runs on the touched block after every reference.
    """
    seen: set[int] = set()
    checker = InvariantChecker(protocol)
    results = []
    for cache, op, block in refs:
        first = block not in seen
        seen.add(block)
        if op == "r":
            results.append(protocol.on_read(cache, block, first))
        elif op == "w":
            results.append(protocol.on_write(cache, block, first))
        else:
            raise ValueError(f"op must be 'r' or 'w', got {op!r}")
        if check:
            checker.check_block(block)
    return results


def make_records(spec) -> list[TraceRecord]:
    """Build records from ``(cpu, pid, "i"|"r"|"w", address)`` tuples."""
    types = {"i": RefType.INSTR, "r": RefType.READ, "w": RefType.WRITE}
    return [
        TraceRecord(cpu=cpu, pid=pid, ref_type=types[op], address=address)
        for cpu, pid, op, address in spec
    ]


def tiny_trace(name: str = "tiny") -> Trace:
    """A deterministic hand-written 2-process trace touching 3 blocks."""
    return Trace(
        name,
        make_records(
            [
                (0, 0, "i", 0x1000),
                (0, 0, "r", 0x2000),  # P0 first-ref read block A
                (1, 1, "r", 0x2000),  # P1 reads A (shared)
                (0, 0, "w", 0x2000),  # P0 writes A (invalidate P1)
                (1, 1, "r", 0x2000),  # P1 re-reads A (dirty at P0)
                (1, 1, "w", 0x3000),  # P1 first-ref write block B
                (0, 0, "r", 0x3000),  # P0 reads B (dirty at P1)
                (0, 0, "r", 0x4000),  # P0 first-ref read block C
                (0, 0, "w", 0x4000),  # P0 writes its own clean block
            ]
        ),
    )


@pytest.fixture
def trace_tiny() -> Trace:
    return tiny_trace()


@pytest.fixture(scope="session")
def pops_small() -> Trace:
    """A small POPS-analogue trace shared across the session."""
    return make_trace("pops", length=30_000)


@pytest.fixture(scope="session")
def standard_small() -> list[Trace]:
    """Small versions of the three standard traces."""
    return [make_trace(name, length=30_000) for name in ("pops", "thor", "pero")]
