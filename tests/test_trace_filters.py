"""Reference filters (Section 5.2 spin exclusion, sharing views)."""

from repro.trace.filters import (
    exclude_all_lock_refs,
    exclude_lock_spins,
    relabel_sharers_by_cpu,
    relabel_sharers_by_process,
    split_user_system,
)
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace


def _records():
    return [
        TraceRecord(cpu=0, pid=5, ref_type=RefType.READ, address=0),
        TraceRecord(cpu=0, pid=5, ref_type=RefType.READ, address=0, lock=True),
        TraceRecord(
            cpu=1, pid=6, ref_type=RefType.READ, address=0, lock=True, spin=True
        ),
        TraceRecord(cpu=1, pid=6, ref_type=RefType.WRITE, address=0, lock=True),
        TraceRecord(cpu=1, pid=6, ref_type=RefType.READ, address=8, system=True),
    ]


def test_exclude_lock_spins_removes_only_spins():
    kept = list(exclude_lock_spins(_records()))
    assert len(kept) == 4
    assert all(not record.spin for record in kept)
    # Non-spin lock references (successful test, TAS write) remain.
    assert sum(1 for record in kept if record.lock) == 2


def test_exclude_all_lock_refs():
    kept = list(exclude_all_lock_refs(_records()))
    assert len(kept) == 2
    assert all(not record.lock for record in kept)


def test_relabel_by_process_copies_pid_into_cpu():
    relabeled = list(relabel_sharers_by_process(_records()))
    assert all(record.cpu == record.pid for record in relabeled)


def test_relabel_by_cpu_is_identity():
    records = _records()
    assert list(relabel_sharers_by_cpu(records)) == records


def test_split_user_system():
    trace = Trace("t", _records())
    user, system = split_user_system(trace)
    assert len(user) == 4
    assert len(system) == 1
    assert user.name == "t-user"
    assert system.name == "t-sys"
    assert all(record.system for record in system)


def test_spin_exclusion_on_synthetic_trace(pops_small):
    kept = list(exclude_lock_spins(pops_small.records))
    removed = len(pops_small) - len(kept)
    spins = sum(1 for record in pops_small.records if record.spin)
    assert removed == spins > 0
