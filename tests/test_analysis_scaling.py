"""Machine-size scaling study (the paper's future work, implemented)."""

import pytest

from repro.analysis.scaling import by_scheme, run_scaling_study
from repro.cost.bus import PAPER_PIPELINED


@pytest.fixture(scope="module")
def points():
    return run_scaling_study(
        PAPER_PIPELINED,
        schemes=("dir1nb", "dir0b", "dragon"),
        process_counts=(2, 4, 8),
        length=20_000,
        workloads=("pops", "pero"),
    )


def test_full_grid_produced(points):
    assert len(points) == 9
    grouped = by_scheme(points)
    assert set(grouped) == {"dir1nb", "dir0b", "dragon"}
    for series in grouped.values():
        assert [p.num_processes for p in series] == [2, 4, 8]


def test_costs_positive_and_ordered_within_size(points):
    grouped = by_scheme(points)
    for size_index in range(3):
        dir1nb = grouped["dir1nb"][size_index]
        dir0b = grouped["dir0b"][size_index]
        dragon = grouped["dragon"][size_index]
        assert dir1nb.bus_cycles_per_reference > dir0b.bus_cycles_per_reference
        assert dir0b.bus_cycles_per_reference > dragon.bus_cycles_per_reference


def test_invalidation_sizes_grow_with_machine(points):
    """More processes can hold more copies: the mean invalidation size
    for Dir0B's clean writes must not shrink as the machine grows."""
    series = by_scheme(points)["dir0b"]
    assert series[-1].mean_invalidations >= series[0].mean_invalidations * 0.8


def test_single_invalidation_property_degrades_gracefully(points):
    """Even at 8 processes, small invalidation sets dominate — the
    observation that justifies limited-pointer directories at scale."""
    series = by_scheme(points)["dir0b"]
    for point in series:
        assert point.single_or_none_invalidation_fraction > 0.55
