"""SimulationResult accumulation, pricing, and merging."""

import pytest

from repro.core.result import SimulationResult, merge_results
from repro.cost.accounting import CostCategory
from repro.cost.bus import PAPER_NON_PIPELINED, PAPER_PIPELINED
from repro.protocols.events import (
    EventType,
    ProtocolResult,
    dir_check,
    invalidate,
    mem_access,
    write_back,
)


def build_result():
    result = SimulationResult(scheme="test", trace_name="t")
    result.record_instruction()
    result.record(ProtocolResult(EventType.RD_HIT))
    result.record(
        ProtocolResult(EventType.RM_BLK_CLN, (mem_access(),))
    )
    result.record(
        ProtocolResult(
            EventType.WH_BLK_CLN,
            (dir_check(), invalidate(2)),
            clean_write_sharers=2,
        )
    )
    result.record(
        ProtocolResult(EventType.RM_BLK_DRTY, (write_back(),))
    )
    return result


def test_totals_and_transactions():
    result = build_result()
    assert result.total_refs == 5
    assert result.bus_transactions == 3  # hit and instruction do not count
    assert result.transactions_per_reference() == pytest.approx(0.6)


def test_bus_cycles_per_reference():
    result = build_result()
    # mem 5 + dir 1 + inv 2 + wb 4 = 12 cycles over 5 refs
    assert result.bus_cycles_per_reference(PAPER_PIPELINED) == pytest.approx(2.4)
    # non-pipelined: mem 7 + dir 3 + inv 2 + wb 4 = 16 over 5
    assert result.bus_cycles_per_reference(PAPER_NON_PIPELINED) == pytest.approx(3.2)


def test_breakdown_by_category():
    breakdown = build_result().breakdown_per_reference(PAPER_PIPELINED)
    assert breakdown.get(CostCategory.MEM_ACCESS) == pytest.approx(1.0)
    assert breakdown.get(CostCategory.INVALIDATION) == pytest.approx(0.4)
    assert breakdown.get(CostCategory.DIR_ACCESS) == pytest.approx(0.2)
    assert breakdown.get(CostCategory.WRITE_BACK) == pytest.approx(0.8)


def test_cycles_per_transaction():
    result = build_result()
    assert result.cycles_per_transaction(PAPER_PIPELINED) == pytest.approx(12 / 3)


def test_overhead_q_adds_per_transaction():
    result = build_result()
    base = result.bus_cycles_per_reference(PAPER_PIPELINED)
    with_q = result.cycles_with_overhead(PAPER_PIPELINED, q=1.0)
    assert with_q == pytest.approx(base + 0.6)
    with pytest.raises(ValueError):
        result.cycles_with_overhead(PAPER_PIPELINED, q=-1)


def test_event_cycles_attribution():
    per_event = build_result().event_cycles_per_reference(PAPER_PIPELINED)
    assert per_event[EventType.RM_BLK_CLN] == pytest.approx(1.0)
    assert per_event[EventType.WH_BLK_CLN] == pytest.approx(0.6)
    assert EventType.RD_HIT not in per_event


def test_invalidation_histogram_and_single_fraction():
    result = SimulationResult(scheme="s", trace_name="t")
    for sharers in (0, 0, 1, 3):
        result.record(
            ProtocolResult(EventType.WH_BLK_CLN, (dir_check(),), clean_write_sharers=sharers)
        )
    distribution = result.invalidation_distribution()
    assert distribution[0] == pytest.approx(0.5)
    assert distribution[3] == pytest.approx(0.25)
    assert result.single_invalidation_fraction() == pytest.approx(0.75)


def test_empty_result_edge_cases():
    result = SimulationResult(scheme="s", trace_name="t")
    assert result.bus_cycles_per_reference(PAPER_PIPELINED) == 0.0
    assert result.transactions_per_reference() == 0.0
    assert result.cycles_per_transaction(PAPER_PIPELINED) == 0.0
    assert result.invalidation_distribution() == {}
    assert result.single_invalidation_fraction() == 0.0


def test_merge_pools_counts():
    a, b = build_result(), build_result()
    b.trace_name = "u"
    merged = merge_results([a, b], name="both")
    assert merged.total_refs == 10
    assert merged.bus_transactions == 6
    assert merged.trace_name == "both"
    assert merged.bus_cycles_per_reference(PAPER_PIPELINED) == pytest.approx(2.4)


def test_merge_rejects_mixed_schemes():
    a = SimulationResult(scheme="a", trace_name="t")
    b = SimulationResult(scheme="b", trace_name="t")
    with pytest.raises(ValueError):
        merge_results([a, b])
    with pytest.raises(ValueError):
        merge_results([])


def test_merge_is_reference_weighted():
    small = SimulationResult(scheme="s", trace_name="small")
    small.record(ProtocolResult(EventType.RM_BLK_CLN, (mem_access(),)))
    big = SimulationResult(scheme="s", trace_name="big")
    for _ in range(9):
        big.record(ProtocolResult(EventType.RD_HIT))
    merged = merge_results([small, big])
    # 5 cycles over 10 refs, not the mean of per-trace costs (5 and 0).
    assert merged.bus_cycles_per_reference(PAPER_PIPELINED) == pytest.approx(0.5)
