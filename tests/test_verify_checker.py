"""ConformanceChecker: the unified oracle + invariant + differential gate."""

import pickle

import pytest

from repro.errors import ConfigurationError, ConformanceError
from repro.memory.line import LineState
from repro.protocols.directory.dirnnb import DirNNBProtocol
from repro.protocols.registry import _REGISTRY, available_protocols
from repro.verify import (
    ConformanceChecker,
    ConformanceSpec,
    TraceFuzzer,
)
from repro.verify.checker import summarize_events

from conftest import tiny_trace


class LeakyProtocol(DirNNBProtocol):
    """DirNNB that 'forgets' to invalidate one sharer on every write.

    The surviving clean copy violates single-writer (and directory
    agreement) the moment the write completes — a deliberate coherence
    bug for exercising the detection and shrinking pipeline.
    """

    def on_write(self, cache, block, first_ref):
        result = super().on_write(cache, block, first_ref)
        other = (cache + 1) % self.num_caches
        if other != cache:
            self._caches[other].put(block, LineState.CLEAN)
        return result


@pytest.fixture
def leaky_registry(monkeypatch):
    monkeypatch.setitem(_REGISTRY, "leaky", LeakyProtocol)
    return "leaky"


def fuzz_traces(count=4, seed=0):
    return list(TraceFuzzer(seed=seed).traces(count))


def test_all_registered_protocols_pass_a_fuzz_sweep():
    report = ConformanceChecker().check(fuzz_traces(6))
    assert report.clean, [str(f) for f in report.findings]
    assert report.cells == 6 * len(available_protocols())
    # Every clean cell contributed a differential summary.
    assert len(report.summaries) == 6
    for per_scheme in report.summaries.values():
        assert len(per_scheme) == len(available_protocols())


def test_reports_digest_identically_across_runs_and_backends():
    traces = fuzz_traces(4, seed=9)
    serial = ConformanceChecker(schemes=["dir1nb", "dragon"]).check(traces)
    again = ConformanceChecker(schemes=["dir1nb", "dragon"]).check(
        fuzz_traces(4, seed=9)
    )
    pooled = ConformanceChecker(schemes=["dir1nb", "dragon"], jobs=2).check(traces)
    assert serial.digest() == again.digest() == pooled.digest()
    # Digest is content-sensitive, not just shape-sensitive.
    other = ConformanceChecker(schemes=["dir1nb", "dragon"]).check(
        fuzz_traces(4, seed=10)
    )
    assert other.digest() != serial.digest()


def test_buggy_protocol_is_flagged_with_invariant_findings(leaky_registry):
    checker = ConformanceChecker(schemes=[leaky_registry, "dirnnb"])
    report = checker.check([tiny_trace()])
    assert not report.clean
    kinds = {f.kind for f in report.findings if f.scheme == leaky_registry}
    assert "invariant" in kinds
    # The correct sibling stays clean.
    assert not [f for f in report.findings if f.scheme == "dirnnb"]
    with pytest.raises(ConformanceError, match="conformance failure"):
        report.raise_on_failure()


def test_saboteur_specs_surface_as_findings():
    checker = ConformanceChecker()
    specs = [
        ConformanceSpec("dir1nb", saboteur_trigger=3, saboteur_mode="illegal-state"),
        ConformanceSpec("dir1nb", saboteur_trigger=3, saboteur_mode="transient"),
    ]
    report = checker.check([tiny_trace()], specs=specs, differential=False)
    by_scheme = {f.scheme: f for f in report.findings}
    assert by_scheme["dir1nb+illegal-state@3"].kind == "invariant"
    assert by_scheme["dir1nb+transient@3"].kind == "fault"


def test_differentials_catch_event_count_disagreement():
    summaries = {
        "t": {
            "a": {"total-refs": 10, "instructions": 2, "reads": 5,
                  "writes": 3, "first-references": 1},
            "b": {"total-refs": 10, "instructions": 2, "reads": 4,
                  "writes": 4, "first-references": 1},
        }
    }
    findings = ConformanceChecker._differentials(summaries)
    measures = {f.message.split(" ")[0] for f in findings}
    assert measures == {"reads", "writes"}
    assert all(f.scheme == "*" and f.kind == "differential" for f in findings)


def test_differentials_need_two_schemes_to_compare():
    summaries = {"t": {"a": {"total-refs": 1, "instructions": 0, "reads": 1,
                             "writes": 0, "first-references": 1}}}
    assert ConformanceChecker._differentials(summaries) == []


def test_summarize_events_rolls_up_result_json():
    summary = summarize_events(
        {
            "total_refs": 9,
            "event_counts": {"instr": 2, "rd-hit": 3, "wm-first-ref": 1,
                             "wh-blk-cln": 2, "rm-first-ref": 1},
        }
    )
    assert summary == {
        "total-refs": 9,
        "instructions": 2,
        "reads": 4,
        "writes": 3,
        "first-references": 2,
    }


def test_spec_is_picklable_and_builds_instrumented_stack():
    spec = ConformanceSpec("dir0b", saboteur_trigger=5, saboteur_mode="transient")
    clone = pickle.loads(pickle.dumps(spec))
    oracle = clone(4)
    assert oracle.name == "dir0b"
    assert oracle.protocol.mode == "transient"
    assert clone.scheme_key == "dir0b+transient@5"
    assert ConformanceSpec("dir0b").scheme_key == "dir0b"


def test_coarse_vector_machine_size_rounds_up():
    # 3 sharers would be an illegal coarse-vector machine; the spec
    # rounds up to 4 and the cell simulates cleanly.
    report = ConformanceChecker(schemes=["coarse-vector"]).check([tiny_trace()])
    oracle = ConformanceSpec("coarse-vector")(3)
    assert oracle.num_caches == 4
    assert report.clean, [str(f) for f in report.findings]


def test_statespace_leg_folds_into_the_same_report_shape():
    report = ConformanceChecker(schemes=["dir1nb", "coarse-vector"]).check_statespace()
    assert report.clean
    assert report.cells == 2


def test_empty_inputs_yield_an_empty_clean_report():
    report = ConformanceChecker(schemes=["dir1nb"]).check([])
    assert report.clean and report.cells == 0
    assert report.digest() == ConformanceChecker(schemes=["dir1nb"]).check([]).digest()


def test_check_interval_is_validated():
    with pytest.raises(ConfigurationError):
        ConformanceChecker(check_interval=0)


def test_unknown_schemes_are_rejected_as_configuration_errors():
    # A typo'd scheme is a configuration problem (CLI exit 5), not a
    # conformance finding (exit 7).
    with pytest.raises(ConfigurationError, match="nosuch"):
        ConformanceChecker(schemes=["dir1nb", "nosuch"])
