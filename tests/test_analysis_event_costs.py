"""Per-event cost decomposition (§4.1's worked example, recovered)."""

import pytest

from repro.analysis.event_costs import event_cost_table, verify_decomposition
from repro.core.result import SimulationResult
from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED
from repro.protocols.events import EventType

from conftest import tiny_trace


def test_decomposition_sums_to_headline_metric(pops_small):
    for scheme in ("dir1nb", "wti", "dir0b", "dragon"):
        result = simulate(pops_small, scheme)
        assert verify_decomposition(result, PAPER_PIPELINED) == pytest.approx(
            result.bus_cycles_per_reference(PAPER_PIPELINED)
        )


def test_free_events_cost_zero():
    from repro.trace.stream import Trace
    from conftest import make_records

    trace = Trace(
        "hits",
        make_records([(0, 0, "i", 0x100), (0, 0, "r", 0x200), (0, 0, "r", 0x200)]),
    )
    result = simulate(trace, "dir0b")
    table = event_cost_table(result, PAPER_PIPELINED)
    assert table[EventType.RD_HIT].cycles_per_occurrence == 0.0
    assert table[EventType.INSTR].cycles_per_occurrence == 0.0
    assert table[EventType.RM_FIRST_REF].cycles_per_occurrence == 0.0


def test_paper_worked_example_memory_miss_costs_five():
    """§4.1: 'a cache miss event might require 5 bus cycles ... 1 cycle
    to send the address, and 4 cycles to get 4 words of data back'."""
    result = simulate(tiny_trace(), "wti")
    table = event_cost_table(result, PAPER_PIPELINED)
    assert table[EventType.RM_BLK_CLN].cycles_per_occurrence == pytest.approx(5.0)


def test_frequencies_match_event_counts():
    result = simulate(tiny_trace(), "dir0b")
    table = event_cost_table(result, PAPER_PIPELINED)
    for event, cost in table.items():
        assert cost.frequency == pytest.approx(
            result.event_counts[event] / result.total_refs
        )


def test_empty_result():
    assert event_cost_table(
        SimulationResult(scheme="s", trace_name="t"), PAPER_PIPELINED
    ) == {}
