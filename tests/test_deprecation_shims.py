"""Back-compat shims: old runner.parallel names warn but keep working."""

import warnings

import pytest

import repro.runner
import repro.runner.parallel as parallel_shim
from repro.engine.backends import Cell, ProcessPoolBackend, execute_cell


def test_parallel_executor_alias_warns_and_resolves():
    with pytest.warns(DeprecationWarning, match="ProcessPoolBackend"):
        alias = parallel_shim.ParallelExecutor
    assert alias is ProcessPoolBackend


def test_deprecation_warning_points_at_the_caller():
    """The warning lands on this file, not importlib or the runner shim.

    Both access paths thread through frames the user never wrote (the
    frozen import machinery; the ``repro.runner`` lazy-export shim), so
    the shim computes the stacklevel dynamically.
    """
    with pytest.warns(DeprecationWarning) as caught:
        parallel_shim.ParallelExecutor
    assert caught[0].filename == __file__

    with pytest.warns(DeprecationWarning) as caught:
        repro.runner.ParallelExecutor
    assert caught[0].filename == __file__


def test_fromlist_import_warning_points_at_the_caller():
    with pytest.warns(DeprecationWarning) as caught:
        exec("from repro.runner.parallel import ParallelExecutor", {})
    assert not any("importlib" in w.filename for w in caught)


def test_execute_cell_and_cell_aliases_warn_and_resolve():
    with pytest.warns(DeprecationWarning, match="execute_cell"):
        assert parallel_shim.execute_cell is execute_cell
    with pytest.warns(DeprecationWarning):
        assert parallel_shim.Cell is Cell


def test_package_level_alias_warns_every_access():
    """repro.runner.ParallelExecutor stays warm — it warns on each use."""
    for _ in range(2):
        with pytest.warns(DeprecationWarning):
            assert repro.runner.ParallelExecutor is ProcessPoolBackend


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        parallel_shim.NoSuchThing
    with pytest.raises(AttributeError):
        repro.runner.no_such_export


def test_shim_dir_lists_moved_names():
    names = dir(parallel_shim)
    assert {"Cell", "ParallelExecutor", "execute_cell"} <= set(names)
    assert "ParallelExecutor" in dir(repro.runner)


def test_aliased_executor_still_runs_a_sweep():
    """The deprecated name is the real backend, not a husk."""
    from repro.core.simulator import Simulator
    from repro.runner.checkpoint import result_to_json
    from repro.workloads.registry import make_trace

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        # The alias is the modern backend: batched dispatch included.
        executor = parallel_shim.ParallelExecutor(jobs=2, batch=1)

    trace = make_trace("pops", length=800, seed=5)
    outcomes = executor.run(
        Simulator(), [("dir0b", "dir0b", trace), ("wti", "wti", trace)]
    )
    assert set(outcomes) == {0, 1}
    simulator = Simulator()
    for index, scheme in enumerate(["dir0b", "wti"]):
        expected = simulator.run(trace, scheme, trace_name=trace.name)
        expected.scheme = scheme
        assert outcomes[index] == {
            "status": "ok",
            "result": result_to_json(expected),
            "attempts": 1,
        }
