"""DirnNB: Censier–Feautrier full map with sequential invalidations."""

import pytest

from repro.memory.directory import FullMapDirectory, TangDirectory
from repro.protocols.directory.dirnnb import DirNNBProtocol
from repro.protocols.events import EventType, OpKind

from conftest import drive


def op_units(result, kind):
    return sum(op.count for op in result.ops if op.kind is kind)


def test_never_broadcasts():
    protocol = DirNNBProtocol(4)
    results = drive(
        protocol,
        [(0, "r", 1), (1, "r", 1), (2, "r", 1), (3, "w", 1), (0, "w", 1), (1, "r", 1)],
    )
    for result in results:
        assert op_units(result, OpKind.BROADCAST_INVALIDATE) == 0


def test_sequential_invalidations_count_sharers():
    protocol = DirNNBProtocol(4)
    results = drive(
        protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1), (0, "w", 1)]
    )
    final = results[3]
    assert final.event is EventType.WH_BLK_CLN
    # Two other caches hold the block: exactly two messages.
    assert op_units(final, OpKind.INVALIDATE) == 2


def test_write_hit_with_no_other_sharers_sends_no_invalidation():
    protocol = DirNNBProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1)])
    assert op_units(results[1], OpKind.INVALIDATE) == 0
    # But the directory must still be probed.
    assert op_units(results[1], OpKind.DIR_CHECK) == 1


def test_write_miss_dirty_sends_single_invalidation():
    protocol = DirNNBProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "w", 1)])
    final = results[1]
    assert final.event is EventType.WM_BLK_DRTY
    assert op_units(final, OpKind.INVALIDATE) == 1
    assert op_units(final, OpKind.WRITE_BACK) == 1


def test_directory_tracks_exact_sharers():
    protocol = DirNNBProtocol(4)
    drive(protocol, [(0, "r", 1), (2, "r", 1)])
    entry = protocol.directory.entry(1)
    assert entry.sharers == {0, 2}


def test_full_map_storage_grows_with_caches():
    assert DirNNBProtocol(4).directory_bits_per_block() == 5
    assert DirNNBProtocol(256).directory_bits_per_block() == 257


def test_tang_organization_variant():
    protocol = DirNNBProtocol(4, organization="tang")
    assert isinstance(protocol.directory, TangDirectory)
    drive(protocol, [(0, "r", 1), (1, "r", 1), (0, "w", 1)])
    assert protocol.directory.entry(1).sharers == {0}


def test_default_organization_is_full_map():
    assert isinstance(DirNNBProtocol(4).directory, FullMapDirectory)


def test_unknown_organization_rejected():
    with pytest.raises(ValueError):
        DirNNBProtocol(4, organization="hash-table")


def test_event_frequencies_match_dir0b():
    """Same state-change model => identical event classification."""
    from repro.protocols.directory.dir0b import Dir0BProtocol

    refs = [
        (0, "r", 1), (1, "r", 1), (0, "w", 1), (2, "r", 1), (2, "w", 1),
        (3, "w", 2), (0, "r", 2), (1, "w", 2), (1, "w", 2), (0, "r", 3),
    ]
    events_nnb = [r.event for r in drive(DirNNBProtocol(4), refs)]
    events_d0b = [r.event for r in drive(Dir0BProtocol(4), refs)]
    assert events_nnb == events_d0b
