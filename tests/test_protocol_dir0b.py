"""Dir0B: the Archibald–Baer two-bit broadcast directory protocol."""

from repro.memory.directory import TwoBitState
from repro.memory.line import LineState
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols.events import EventType, OpKind

from conftest import drive


def kinds_of(result):
    return [op.kind for op in result.ops]


def test_multiple_clean_copies_coexist():
    protocol = Dir0BProtocol(4)
    drive(protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1)])
    assert set(protocol.holders(1)) == {0, 1, 2}
    assert all(state is LineState.CLEAN for state in protocol.holders(1).values())


def test_read_miss_clean_costs_memory_access():
    protocol = Dir0BProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1)])
    assert results[1].event is EventType.RM_BLK_CLN
    assert OpKind.MEM_ACCESS in kinds_of(results[1])
    assert OpKind.INVALIDATE not in kinds_of(results[1])


def test_read_miss_dirty_forces_flush_owner_keeps_clean_copy():
    protocol = Dir0BProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "r", 1)])
    assert results[1].event is EventType.RM_BLK_DRTY
    assert OpKind.WRITE_BACK in kinds_of(results[1])
    holders = protocol.holders(1)
    assert holders == {0: LineState.CLEAN, 1: LineState.CLEAN}


def test_write_hit_clean_single_holder_needs_no_broadcast():
    protocol = Dir0BProtocol(4)
    results = drive(protocol, [(0, "r", 1), (0, "w", 1)])
    assert results[1].event is EventType.WH_BLK_CLN
    assert kinds_of(results[1]) == [OpKind.DIR_CHECK]
    assert results[1].clean_write_sharers == 0


def test_write_hit_clean_shared_broadcasts():
    protocol = Dir0BProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "r", 1), (2, "r", 1), (0, "w", 1)])
    final = results[3]
    assert final.event is EventType.WH_BLK_CLN
    assert OpKind.DIR_CHECK in kinds_of(final)
    assert OpKind.BROADCAST_INVALIDATE in kinds_of(final)
    assert final.clean_write_sharers == 2
    assert protocol.holders(1) == {0: LineState.DIRTY}


def test_write_hit_dirty_is_free():
    protocol = Dir0BProtocol(4)
    results = drive(protocol, [(0, "w", 1), (0, "w", 1)])
    assert results[1].event is EventType.WH_BLK_DRTY
    assert results[1].ops == ()


def test_write_miss_clean_broadcasts_and_fetches():
    protocol = Dir0BProtocol(4)
    results = drive(protocol, [(0, "r", 1), (1, "w", 1)])
    final = results[1]
    assert final.event is EventType.WM_BLK_CLN
    assert OpKind.MEM_ACCESS in kinds_of(final)
    assert OpKind.BROADCAST_INVALIDATE in kinds_of(final)
    assert final.clean_write_sharers == 1


def test_write_miss_dirty_flushes_and_invalidates_owner():
    protocol = Dir0BProtocol(4)
    results = drive(protocol, [(0, "w", 1), (1, "w", 1)])
    final = results[1]
    assert final.event is EventType.WM_BLK_DRTY
    assert OpKind.WRITE_BACK in kinds_of(final)
    assert OpKind.BROADCAST_INVALIDATE in kinds_of(final)
    assert protocol.holders(1) == {1: LineState.DIRTY}


def test_directory_states_track_the_paper_model():
    protocol = Dir0BProtocol(4)
    directory = protocol.directory
    drive(protocol, [(0, "r", 1)])
    assert directory.state_of(1) is TwoBitState.CLEAN_ONE
    drive(protocol, [(1, "r", 1)], check=False)
    assert directory.state_of(1) is TwoBitState.CLEAN_MANY
    drive(protocol, [(1, "w", 1)], check=False)
    assert directory.state_of(1) is TwoBitState.DIRTY_ONE


def test_two_bits_regardless_of_machine_size():
    assert Dir0BProtocol(1024).directory_bits_per_block() == 2


def test_clean_write_histogram_population():
    protocol = Dir0BProtocol(4)
    results = drive(
        protocol,
        [(0, "r", 1), (1, "r", 1), (2, "r", 1), (3, "w", 1), (3, "w", 2)],
    )
    # write to a 3-sharer clean block -> bucket 3; first-ref write -> no bucket
    assert results[3].clean_write_sharers == 3
    assert results[4].clean_write_sharers is None
