"""Section 6 scalability analyses."""

import pytest

from repro.analysis.scalability import (
    broadcast_cost_model,
    directory_storage_table,
    pointer_sweep,
    wasted_invalidation_rate,
)
from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import Simulator, simulate
from repro.cost.bus import PAPER_PIPELINED

from conftest import tiny_trace


def test_broadcast_model_is_exact(standard_small):
    simulator = Simulator()
    merged = merge_results([simulator.run(t, "dir1b") for t in standard_small])
    model = broadcast_cost_model(merged, PAPER_PIPELINED)
    for b in (0.0, 1.0, 4.0, 32.0):
        direct = merged.bus_cycles_per_reference(
            PAPER_PIPELINED.with_broadcast_cost(b)
        )
        assert model.cycles(b) == pytest.approx(direct)
    assert model.rate > 0  # some broadcasts do occur


def test_broadcast_model_rejects_negative_cost():
    model = broadcast_cost_model(
        SimulationResult(scheme="s", trace_name="t"), PAPER_PIPELINED
    )
    with pytest.raises(ValueError):
        model.cycles(-1.0)


def test_pointer_sweep_shapes(standard_small):
    points = pointer_sweep(
        standard_small, PAPER_PIPELINED, pointer_counts=(1, 2), num_caches=4
    )
    assert len(points) == 4  # 2 pointer counts x {B, NB}
    by_label = {point.label: point for point in points}
    assert set(by_label) == {"Dir1B", "Dir1NB", "Dir2B", "Dir2NB"}
    # B variants never evict pointers; NB variants never broadcast.
    for point in points:
        if point.broadcast:
            assert point.pointer_evictions_per_reference == 0
        else:
            assert point.broadcasts_per_reference == 0
    # More pointers monotonically reduce NB miss rates.
    assert (
        by_label["Dir2NB"].data_miss_fraction
        <= by_label["Dir1NB"].data_miss_fraction
    )
    # B variants' broadcast frequency falls with more pointers.
    assert (
        by_label["Dir2B"].broadcasts_per_reference
        <= by_label["Dir1B"].broadcasts_per_reference
    )


def test_wasted_invalidation_rate():
    result = simulate(tiny_trace(), "coarse-vector")
    assert wasted_invalidation_rate(result) >= 0
    empty = SimulationResult(scheme="s", trace_name="t")
    assert wasted_invalidation_rate(empty) == 0.0


def test_storage_table_growth_laws():
    table = directory_storage_table(cache_counts=(4, 64, 1024))
    # Two-bit constant; full map linear; coarse vector logarithmic.
    assert table[4]["two-bit"] == table[1024]["two-bit"] == 2
    assert table[64]["full-map"] == 65
    assert table[1024]["full-map"] == 1025
    assert table[1024]["coarse-vector"] == 21
    # Limited pointers grow with log n.
    assert table[1024]["dir1b"] == 12
    # For large machines the coarse vector beats the full map by orders
    # of magnitude while the two-bit scheme still needs broadcasts.
    assert table[1024]["coarse-vector"] < table[1024]["full-map"] / 40
