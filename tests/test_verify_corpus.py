"""The golden corpus: content-addressed reproducers that replay forever."""

import json
from pathlib import Path

from repro.trace.io import format_record
from repro.verify import ConformanceChecker, Corpus
from repro.verify.mutation import mutation_trace

from conftest import tiny_trace


def test_save_and_load_roundtrip_preserves_records(tmp_path):
    corpus = Corpus(tmp_path / "corpus")
    trace = tiny_trace("repro-case")
    path = corpus.save(trace, {"scheme": "dir1nb", "kind": "invariant"})
    assert path is not None and path.exists()
    (entry,) = corpus.entries()
    loaded = entry.load()
    assert [format_record(r) for r in loaded.records] == [
        format_record(r) for r in trace.records
    ]
    assert entry.meta["scheme"] == "dir1nb"
    assert entry.meta["refs"] == len(trace.records)


def test_saving_identical_records_deduplicates(tmp_path):
    corpus = Corpus(tmp_path)
    assert corpus.save(tiny_trace("first")) is not None
    # Same records under a different name: still one entry.
    assert corpus.save(tiny_trace("second")) is None
    assert len(corpus) == 1


def test_distinct_reproducers_coexist_in_sorted_order(tmp_path):
    corpus = Corpus(tmp_path)
    corpus.save(tiny_trace("b-case"))
    corpus.save(mutation_trace(1))
    names = [entry.name for entry in corpus.entries()]
    assert len(names) == 2
    assert names == sorted(names)


def test_sidecar_metadata_is_canonical_json(tmp_path):
    corpus = Corpus(tmp_path)
    path = corpus.save(tiny_trace(), {"seed": 3, "kind": "oracle"})
    sidecar = path.with_suffix(".json")
    meta = json.loads(sidecar.read_text("ascii"))
    assert meta["seed"] == 3
    assert meta["kind"] == "oracle"
    assert meta["content_key"] in path.name


def test_header_provenance_comments_do_not_disturb_replay(tmp_path):
    corpus = Corpus(tmp_path)
    path = corpus.save(tiny_trace(), {"kind": "invariant"})
    text = path.read_text("ascii")
    assert text.startswith("# golden reproducer")
    report = corpus.replay(ConformanceChecker(schemes=["dir1nb", "dragon"]))
    assert report.clean, [str(f) for f in report.findings]
    assert report.cells == 2


def test_empty_or_missing_corpus_replays_clean(tmp_path):
    corpus = Corpus(tmp_path / "nonexistent")
    assert corpus.entries() == []
    report = corpus.replay(ConformanceChecker(schemes=["dir1nb"]))
    assert report.clean and report.cells == 0


def test_committed_corpus_replays_clean_on_every_protocol():
    """The tier-1 regression gate: every golden reproducer in the
    repository must pass every registered protocol."""
    corpus = Corpus(Path(__file__).parent / "corpus")
    assert len(corpus) >= 7  # seeded by tools/seed_corpus.py
    report = corpus.replay(ConformanceChecker())
    assert report.clean, [str(f) for f in report.findings]
