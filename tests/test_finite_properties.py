"""Property-based tests for the finite-capacity machinery.

Hypothesis drives random operation sequences through the pieces the
finite↔infinite differential harness relies on:

* :class:`~repro.memory.cache.FiniteCache` obeys set-associative LRU
  exactly (checked against a brute-force reference model);
* directory-capacity protocols keep their sharer bookkeeping
  consistent through evictions and recalls (every reference is
  invariant-checked, and the LRU book never exceeds the bound);
* the capacity-aware state-table kernels remain bit-identical to the
  generic object model — results *and* end state — after arbitrary
  reference prefixes, not just the curated workload traces.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.invariants import InvariantChecker
from repro.core.simulator import SimulationContext, Simulator
from repro.memory.cache import FiniteCache
from repro.protocols.registry import make_protocol
from repro.trace.columnar import ColumnarTrace
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace

NUM_CACHES = 4
NUM_BLOCKS = 12
KERNEL_SCHEMES = ("dir0b", "dir1nb", "wti", "dragon")


# ----------------------------------------------------------------------
# FiniteCache vs a brute-force LRU reference model
# ----------------------------------------------------------------------

cache_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "get", "touch", "evict"]),
        st.integers(0, 31),
    ),
    min_size=1,
    max_size=120,
)


class _LRUModel:
    """Reference model: per-set python lists, LRU first."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets: list[list[int]] = [[] for _ in range(num_sets)]

    def _set(self, block: int) -> list[int]:
        return self.sets[block & (self.num_sets - 1)]

    def put(self, block: int) -> int | None:
        order = self._set(block)
        victim = None
        if block in order:
            order.remove(block)
        elif len(order) >= self.assoc:
            victim = order.pop(0)
        order.append(block)
        return victim

    def touch(self, block: int) -> None:
        order = self._set(block)
        if block in order:
            order.remove(block)
            order.append(block)

    def evict(self, block: int) -> None:
        order = self._set(block)
        if block in order:
            order.remove(block)


@settings(max_examples=80, deadline=None)
@given(ops=cache_ops, num_sets=st.sampled_from([1, 2, 4]), assoc=st.integers(1, 3))
def test_finite_cache_is_exact_set_associative_lru(ops, num_sets, assoc):
    cache: FiniteCache = FiniteCache(num_sets=num_sets, associativity=assoc)
    model = _LRUModel(num_sets, assoc)
    for op, block in ops:
        if op == "put":
            victim = cache.put(block, "state")
            expected = model.put(block)
            assert (victim[0] if victim else None) == expected
        elif op == "get":
            # get() reads without touching (replacement order unchanged).
            assert (cache.get(block) is not None) == any(
                block in order for order in model.sets
            )
        elif op == "touch":
            cache.touch(block)
            model.touch(block)
        else:
            cache.evict(block)
            model.evict(block)
        # Residency and LRU order agree set by set, at every step.
        assert [list(s) for s in cache._sets] == model.sets
        assert len(cache) <= cache.capacity_blocks


# ----------------------------------------------------------------------
# Directory consistency under finite caches and finite directories
# ----------------------------------------------------------------------

refs_strategy = st.lists(
    st.tuples(
        st.integers(0, NUM_CACHES - 1),
        st.sampled_from(["r", "w"]),
        st.integers(0, NUM_BLOCKS - 1),
    ),
    min_size=1,
    max_size=80,
)


def _drive_checked(protocol, refs):
    checker = InvariantChecker(protocol)
    seen: set[int] = set()
    for cache, op, block in refs:
        first = block not in seen
        seen.add(block)
        if op == "r":
            protocol.on_read(cache, block, first)
        else:
            protocol.on_write(cache, block, first)
        checker.check_block(block)
    checker.check_all()


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy, scheme=st.sampled_from(KERNEL_SCHEMES))
def test_invariants_hold_with_finite_caches(refs, scheme):
    """Silent evictions never desynchronize caches and directory."""
    protocol = make_protocol(
        scheme,
        NUM_CACHES,
        cache_factory=lambda: FiniteCache(num_sets=2, associativity=2),
    )
    _drive_checked(protocol, refs)


@settings(max_examples=60, deadline=None)
@given(refs=refs_strategy, scheme=st.sampled_from(["dir0b", "dir1nb", "dirnnb"]))
def test_invariants_hold_with_bounded_directory(refs, scheme):
    """Eviction/recall keeps sharer sets exact and the LRU book bounded."""
    protocol = make_protocol(
        scheme,
        NUM_CACHES,
        cache_factory=lambda: FiniteCache(num_sets=2, associativity=2),
        dir_capacity=4,
    )
    _drive_checked(protocol, refs)
    assert len(protocol._dir_lru) <= protocol.dir_capacity
    # Inclusion: every block any cache still holds is directory-tracked.
    held = {
        block
        for index in range(NUM_CACHES)
        for block in protocol.cache_contents(index)
    }
    assert held <= set(protocol._dir_lru)


# ----------------------------------------------------------------------
# Kernel vs generic object model on random finite prefixes
# ----------------------------------------------------------------------


def _records_from(refs) -> list[TraceRecord]:
    types = {"r": RefType.READ, "w": RefType.WRITE}
    return [
        TraceRecord(cpu=cache, pid=cache, ref_type=types[op], address=block << 4)
        for cache, op, block in refs
    ]


def _snapshot(protocol):
    return [
        protocol.cache_contents(index) for index in range(protocol.num_caches)
    ]


@settings(max_examples=40, deadline=None)
@given(refs=refs_strategy, scheme=st.sampled_from(KERNEL_SCHEMES))
def test_finite_kernel_matches_generic_on_random_prefixes(refs, scheme):
    from repro.core.result import SimulationResult
    from repro.protocols.kernels import kernel_run

    trace = Trace("prefix", _records_from(refs))
    columnar = ColumnarTrace.from_trace(trace)
    simulator = Simulator()

    def factory():
        return FiniteCache(num_sets=2, associativity=2)

    via_kernel = make_protocol(scheme, NUM_CACHES, cache_factory=factory)
    kernel_result = SimulationResult(scheme=via_kernel.name, trace_name="prefix")
    ran = kernel_run(
        simulator, columnar, via_kernel, kernel_result, SimulationContext()
    )
    assert ran is kernel_result  # the finite kernel engaged

    via_generic = make_protocol(scheme, NUM_CACHES, cache_factory=factory)
    generic_result = simulator._run_columnar(
        columnar,
        via_generic,
        SimulationResult(scheme=via_generic.name, trace_name="prefix"),
        SimulationContext(),
    )
    assert kernel_result == generic_result
    assert _snapshot(via_kernel) == _snapshot(via_generic)
