"""Microbenchmark workloads and their protocol signatures."""

import pytest

from repro.core.simulator import simulate
from repro.cost.bus import PAPER_PIPELINED as BUS
from repro.protocols.events import EventType
from repro.trace.stats import compute_statistics
from repro.workloads.micro import (
    MICRO_GENERATORS,
    false_sharing_trace,
    micro_traces,
    migratory_trace,
    private_trace,
    producer_consumer_trace,
    readonly_trace,
    spinlock_trace,
)

LENGTH = 8_000


@pytest.fixture(scope="module")
def traces():
    return {trace.name: trace for trace in micro_traces(length=LENGTH)}


def cost(trace, scheme):
    return simulate(trace, scheme).bus_cycles_per_reference(BUS)


def test_generators_registry_complete():
    assert set(MICRO_GENERATORS) == {
        "private", "readonly", "migratory", "producer-consumer",
        "spinlock", "false-sharing",
    }
    for trace in micro_traces(length=2_000):
        assert len(trace) == 2_000


def test_traces_are_deterministic():
    a = migratory_trace(length=3_000)
    b = migratory_trace(length=3_000)
    assert a.records == b.records


def test_instruction_mix_close_to_half(traces):
    for trace in traces.values():
        stats = compute_statistics(trace.records, trace.name)
        assert 0.4 < stats.instr_fraction < 0.6, trace.name


def test_private_is_the_zero_coherence_control():
    trace = private_trace(length=LENGTH)
    assert cost(trace, "dir1nb") == 0.0
    assert cost(trace, "dragon") == 0.0
    # Dir0B pays only the bounded warm-up of first clean->dirty writes.
    result = simulate(trace, "dir0b")
    freq = result.frequencies()
    assert freq.data_miss_fraction == 0.0
    # WTI pays for every write, even private ones.
    assert cost(trace, "wti") > 0.05


def test_readonly_is_free_for_multicopy_pathological_for_dir1nb():
    trace = readonly_trace(length=LENGTH)
    assert cost(trace, "dir0b") < 0.1
    assert cost(trace, "dragon") < 0.1
    # Dir1NB bounces the table blocks between all readers.
    assert cost(trace, "dir1nb") > 10 * cost(trace, "dir0b")


def test_migratory_favors_single_copy_over_broadcast():
    """For purely migratory data the Dir1NB policy is *right*: the
    next user always takes the block exclusively anyway."""
    trace = migratory_trace(length=LENGTH)
    assert cost(trace, "dir1nb") < cost(trace, "dir0b")
    # And update protocols win outright (one word per write).
    assert cost(trace, "dragon") < cost(trace, "dir1nb")


def test_migratory_signature_events():
    trace = migratory_trace(length=LENGTH)
    freq = simulate(trace, "dir0b").frequencies()
    # The signature pair: dirty read misses matched by clean write hits.
    assert freq.count(EventType.RM_BLK_DRTY) > 0
    assert freq.count(EventType.WH_BLK_CLN) > 0
    ratio = freq.count(EventType.WH_BLK_CLN) / freq.count(EventType.RM_BLK_DRTY)
    assert 0.8 < ratio < 1.3


def test_producer_consumer_is_dragons_best_case():
    trace = producer_consumer_trace(length=LENGTH)
    dragon = cost(trace, "dragon")
    dir0b = cost(trace, "dir0b")
    assert dragon < 0.25 * dir0b
    # Broadcast beats sequential invalidation here: every write must
    # reach several consumers.
    dirnnb = cost(trace, "dirnnb")
    assert dirnnb > dir0b


def test_producer_consumer_invalidation_sizes():
    trace = producer_consumer_trace(num_processes=4, length=LENGTH)
    result = simulate(trace, "dir0b")
    # The producer's writes invalidate all three consumers.
    distribution = result.invalidation_distribution()
    assert distribution.get(3, 0) > 0.5


def test_spinlock_trace_marks_spins():
    trace = spinlock_trace(length=LENGTH)
    stats = compute_statistics(trace.records, trace.name)
    assert stats.spin_reads > 0
    assert stats.lock_refs > stats.spin_reads  # handoffs are lock refs too


def test_spinlock_punishes_dir1nb_only():
    trace = spinlock_trace(length=LENGTH)
    assert cost(trace, "dir1nb") > 2 * cost(trace, "dir0b")
    assert cost(trace, "dragon") < cost(trace, "dir0b")


def test_false_sharing_hurts_invalidation_not_update():
    trace = false_sharing_trace(length=LENGTH)
    # No true sharing, yet invalidation protocols thrash ...
    assert cost(trace, "dir0b") > 1.0
    # ... while the update protocol just distributes words.
    assert cost(trace, "dragon") < 0.35 * cost(trace, "dir0b")


def test_false_sharing_uses_one_block():
    from repro.memory.address import BlockMapper

    trace = false_sharing_trace(length=LENGTH)
    mapper = BlockMapper()
    data_blocks = {
        mapper.block_of(r.address) for r in trace.records if r.is_data
    }
    assert len(data_blocks) == 1
