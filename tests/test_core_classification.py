"""The Dir_iX taxonomy (Section 2)."""

import pytest

from repro.core.classification import (
    LITERATURE_CLASSIFICATION,
    DirClass,
    classify,
    scheme_label,
)
from repro.errors import ConfigurationError
from repro.protocols.registry import make_protocol


def test_labels():
    assert DirClass(1, False).label == "Dir1NB"
    assert DirClass(0, True).label == "Dir0B"
    assert DirClass(None, False).label == "DirnNB"
    assert DirClass(4, True).label == "Dir4B"


def test_dir0nb_does_not_exist():
    with pytest.raises(ConfigurationError):
        DirClass(0, False)


def test_storage_bits():
    assert DirClass(None, False).storage_bits_per_block(64) == 65
    assert DirClass(0, True).storage_bits_per_block(64) == 2
    assert DirClass(1, True).storage_bits_per_block(64) == 8
    assert DirClass(1, False).storage_bits_per_block(64) == 7
    assert DirClass(2, False).storage_bits_per_block(64) == 13


def test_max_copies():
    assert DirClass(2, False).max_copies(64) == 2
    assert DirClass(2, True).max_copies(64) == 64
    assert DirClass(None, False).max_copies(64) == 64


def test_classify_evaluated_schemes():
    assert classify(make_protocol("dir1nb", 4)) == DirClass(1, False)
    assert classify(make_protocol("dir0b", 4)) == DirClass(0, True)
    assert classify(make_protocol("dirnnb", 4)) == DirClass(None, False)
    assert classify(make_protocol("dir2b", 4)) == DirClass(2, True)
    assert classify(make_protocol("dir3nb", 4)) == DirClass(3, False)
    assert classify(make_protocol("coarse-vector", 4)) == DirClass(None, False)


def test_snoopy_schemes_are_unclassified():
    assert classify(make_protocol("wti", 4)) is None
    assert classify(make_protocol("dragon", 4)) is None


def test_literature_classification_matches_section2():
    assert LITERATURE_CLASSIFICATION["tang"].label == "DirnNB"
    assert LITERATURE_CLASSIFICATION["censier-feautrier"].label == "DirnNB"
    assert LITERATURE_CLASSIFICATION["archibald-baer"].label == "Dir0B"


def test_scheme_label_for_names_and_instances():
    assert scheme_label("dir1nb") == "Dir1NB"
    assert scheme_label("dragon") == "Dragon"
    assert scheme_label("unknown-thing") == "unknown-thing"
    assert scheme_label(make_protocol("dir2nb", 4)) == "Dir2NB"
    assert scheme_label(make_protocol("wti", 4)) == "WTI"
