"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list(capsys):
    code, out, _err = run_cli(capsys, "list")
    assert code == 0
    assert "dir0b" in out and "dragon" in out
    assert "pops" in out and "pero" in out


def test_generate_and_stats_text(tmp_path, capsys):
    path = tmp_path / "t.trace"
    code, out, _ = run_cli(capsys, "generate", "pops", str(path), "--length", "2000")
    assert code == 0 and "2,000 records" in out
    code, out, _ = run_cli(capsys, "stats", "--trace-file", str(path))
    assert code == 0
    assert "references" in out and "2000" in out


def test_generate_binary_roundtrip(tmp_path, capsys):
    path = tmp_path / "t.bin"
    code, _, _ = run_cli(
        capsys, "generate", "thor", str(path), "--length", "1500", "--format", "binary"
    )
    assert code == 0
    code, out, _ = run_cli(capsys, "simulate", "--trace-file", str(path),
                           "--schemes", "dir0b")
    assert code == 0
    assert "dir0b" in out and "1,500 refs" in out


def test_generate_seed_changes_trace(tmp_path, capsys):
    a, b, c = tmp_path / "a", tmp_path / "b", tmp_path / "c"
    run_cli(capsys, "generate", "pero", str(a), "--length", "1000", "--seed", "1")
    run_cli(capsys, "generate", "pero", str(b), "--length", "1000", "--seed", "2")
    run_cli(capsys, "generate", "pero", str(c), "--length", "1000", "--seed", "1")
    assert a.read_text() == c.read_text()
    assert a.read_text() != b.read_text()


def test_simulate_from_workload(capsys):
    code, out, _ = run_cli(
        capsys, "simulate", "--workload", "pero", "--length", "3000",
        "--schemes", "dir1nb", "dragon",
    )
    assert code == 0
    assert "dir1nb" in out and "dragon" in out
    assert "cyc/ref" in out


def test_simulate_unknown_scheme_fails_cleanly(capsys):
    code, _out, err = run_cli(
        capsys, "simulate", "--workload", "pero", "--length", "1000",
        "--schemes", "mesi",
    )
    assert code == 5  # ConfigurationError category
    assert "error [configuration]:" in err and "mesi" in err


def test_artifact_table(capsys):
    code, out, _ = run_cli(capsys, "artifact", "table1", "--length", "1000")
    assert code == 0
    assert "Table 1" in out


def test_artifact_section(capsys):
    code, out, _ = run_cli(capsys, "artifact", "section6-storage", "--length", "1000")
    assert code == 0
    assert "bits per memory block" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["artifact", "table99"])


def test_report_command(tmp_path, capsys):
    path = tmp_path / "REPORT.md"
    code, out, _ = run_cli(capsys, "report", str(path), "--length", "3000")
    assert code == 0
    assert "wrote evaluation report" in out
    assert path.read_text().startswith("# Directory Schemes")


def test_verify_command(capsys):
    code, out, _ = run_cli(capsys, "verify", "--schemes", "dir0b", "dragon")
    assert code == 0
    assert "dir0b" in out and "dragon" in out
    assert "ok" in out


def test_verify_adjusts_coarse_vector_cache_count(capsys):
    code, out, _ = run_cli(
        capsys, "verify", "--schemes", "coarse-vector", "--caches", "3"
    )
    assert code == 0
    assert "caches=4" in out


def test_verify_fuzz_passes_and_prints_a_stable_digest(capsys):
    code, out, _ = run_cli(
        capsys, "verify", "--fuzz", "6", "--seed", "3",
        "--schemes", "dir1nb", "dragon", "wti",
    )
    assert code == 0
    assert "conformance: ok" in out
    digest = next(line for line in out.splitlines() if line.startswith("digest:"))
    code, out, _ = run_cli(
        capsys, "verify", "--fuzz", "6", "--seed", "3",
        "--schemes", "dir1nb", "dragon", "wti",
    )
    assert code == 0
    assert digest in out  # byte-identical re-run with the same seed


def test_verify_mutation_mode_reports_the_kill_rate(capsys):
    code, out, _ = run_cli(
        capsys, "verify", "--mutation", "--schemes", "dir0b", "berkeley"
    )
    assert code == 0
    assert "mutants killed (100%)" in out


def test_verify_corpus_replay(tmp_path, capsys):
    from repro.verify import Corpus
    from repro.verify.mutation import mutation_trace

    Corpus(tmp_path).save(mutation_trace(2), {"kind": "invariant"})
    code, out, _ = run_cli(
        capsys, "verify", "--corpus", str(tmp_path), "--schemes", "dir1nb", "wti"
    )
    assert code == 0
    assert "corpus: 1 reproducers, 2 cells, 0 findings" in out


def test_verify_fuzz_failure_exits_7_and_banks_a_reproducer(tmp_path, capsys, monkeypatch):
    """End to end on a genuinely buggy protocol: the fuzzer finds it,
    the gate exits 7, and the shrunk reproducer lands in the corpus."""
    from repro.protocols.registry import _REGISTRY
    from test_verify_checker import LeakyProtocol

    monkeypatch.setitem(_REGISTRY, "leaky", LeakyProtocol)
    corpus_dir = tmp_path / "corpus"
    code, out, err = run_cli(
        capsys, "verify", "--fuzz", "4", "--seed", "0",
        "--schemes", "leaky", "--update-corpus", str(corpus_dir),
    )
    assert code == 7
    assert "error [conformance]:" in err
    assert "shrunk" in err and "saved reproducer:" in err
    saved = list(corpus_dir.glob("*.trace"))
    assert saved
    # The minimized reproducer is tiny: one write is enough to trip the
    # leaked-copy invariant violation.
    from repro.trace.io import load_trace

    assert min(len(load_trace(p).records) for p in saved) <= 3


def test_transitions_command(capsys):
    code, out, _ = run_cli(capsys, "transitions", "dir1nb")
    assert code == 0
    assert "Derived transition table: dir1nb" in out
    assert "rm-blk-drty" in out


def test_transitions_coarse_vector_adjusts_caches(capsys):
    code, out, _ = run_cli(capsys, "transitions", "coarse-vector", "--caches", "3")
    assert code == 0
    assert "4 caches" in out


def test_micro_workload_via_cli(capsys):
    code, out, _ = run_cli(
        capsys, "simulate", "--workload", "micro-migratory",
        "--length", "4000", "--schemes", "dir1nb", "dir0b",
    )
    assert code == 0
    assert "micro-migratory" in out


def test_micro_workloads_listed(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    assert "micro-false-sharing" in out


def test_conclusions_artifact(capsys):
    code, out, _ = run_cli(capsys, "artifact", "conclusions", "--length", "4000")
    assert code == 0
    assert "conclusions, re-derived" in out


def test_module_entry_point_runs():
    import subprocess, sys

    completed = subprocess.run(
        [sys.executable, "-m", "repro", "list"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0
    assert "dir0b" in completed.stdout


# ----------------------------------------------------------------------
# Error-category exit codes
# ----------------------------------------------------------------------

def test_trace_format_error_exits_3(tmp_path, capsys):
    bad = tmp_path / "bad.trace"
    bad.write_text("0 0 r 0x100\nnot a record at all\n")
    code, _out, err = run_cli(capsys, "stats", "--trace-file", str(bad))
    assert code == 3
    assert "error [trace-format]:" in err
    assert f"{bad}:2" in err  # path and 1-based line number


def test_configuration_error_exits_5(capsys):
    code, _out, err = run_cli(
        capsys, "run", "--workloads", "pops", "--length", "500",
        "--schemes", "dir0b", "--resume",
    )
    assert code == 5  # --resume without --checkpoint
    assert "error [configuration]:" in err


# ----------------------------------------------------------------------
# repro run: the fault-tolerant sweep
# ----------------------------------------------------------------------

def test_run_sweep_all_healthy(capsys):
    code, out, _err = run_cli(
        capsys, "run", "--workloads", "pops", "--length", "2000",
        "--schemes", "dir1nb", "dir0b",
    )
    assert code == 0
    assert "dir1nb" in out and "dir0b" in out and "cells ok" in out


def test_run_sweep_contains_corrupt_trace(tmp_path, capsys):
    from repro.runner.faults import FaultInjector
    from repro.trace.io import write_trace_file
    from repro.workloads.registry import make_trace

    good = tmp_path / "good.trace"
    bad = tmp_path / "bad.trace"
    write_trace_file(make_trace("pops", length=1500).records, good)
    write_trace_file(make_trace("thor", length=1500).records, bad)
    FaultInjector(seed=7).corrupt_text_trace(bad, mode="bad-address")

    code, out, err = run_cli(
        capsys, "run", "--trace-files", str(good), str(bad),
        "--schemes", "dir1nb", "wti", "dir0b",
    )
    assert code == 1  # partial failure, sweep still completed
    # All three healthy cells produced numbers ...
    assert out.count("good") == 3
    # ... and every corrupt cell is a reported failure, not an abort.
    assert err.count("cell failed:") == 3
    assert "TraceFormatError" in err and "bad.trace" in err


def test_run_lenient_skips_corrupt_line(tmp_path, capsys):
    from repro.runner.faults import FaultInjector
    from repro.trace.io import write_trace_file
    from repro.workloads.registry import make_trace

    bad = tmp_path / "bad.trace"
    write_trace_file(make_trace("pops", length=1500).records, bad)
    FaultInjector(seed=7).corrupt_text_trace(bad, mode="garbage")

    code, out, _err = run_cli(
        capsys, "run", "--trace-files", str(bad), "--schemes", "dir0b",
        "--lenient",
    )
    assert code == 0
    assert "cells ok" in out


def test_run_checkpoint_and_resume_cli(tmp_path, capsys):
    ckpt = tmp_path / "ckpt"
    args = [
        "run", "--workloads", "pops", "--length", "2000",
        "--schemes", "dir1nb", "dir0b", "--checkpoint", str(ckpt),
    ]
    code, first_out, _ = run_cli(capsys, *args)
    assert code == 0
    assert (ckpt / "manifest.json").is_file()
    # Resume of a finished sweep restores every cell from the manifest.
    code, resumed_out, err = run_cli(capsys, *args, "--resume")
    assert code == 0
    assert "running" not in err  # nothing re-simulated
    assert resumed_out == first_out


def test_list_json_is_machine_readable(capsys):
    import json as json_module

    code, out, _err = run_cli(capsys, "list", "--json")
    assert code == 0
    registry = json_module.loads(out)
    assert "dir0b" in registry["protocols"]
    assert "pops" in registry["workloads"]
    assert any(name.startswith("micro-") for name in registry["workloads"])
    assert registry["sharer_keys"] == ["pid", "cpu"]


def test_submit_against_dead_server_exits_service_code(capsys):
    code, _out, err = run_cli(
        capsys, "submit", "--server", "http://127.0.0.1:9",
        "--timeout", "0.5", "--workloads", "pops", "--length", "500",
    )
    assert code == 6
    assert "service" in err


def test_status_against_dead_server_exits_service_code(capsys):
    code, _out, err = run_cli(
        capsys, "status", "--server", "http://127.0.0.1:9", "--timeout", "0.5"
    )
    assert code == 6
    assert "service" in err


def test_serve_submit_status_cycle(tmp_path, capsys):
    """serve + submit --stream + status against a live in-process server."""
    import json as json_module

    from repro.service import Scheduler, ServiceServer

    server = ServiceServer(Scheduler(workers=1, sim_jobs=1), port=0)
    server.start()
    try:
        code, out, _err = run_cli(
            capsys, "submit", "--server", server.url,
            "--schemes", "dir0b", "--workloads", "pops",
            "--length", "800", "--seed", "1", "--stream",
        )
        assert code == 0
        events = [json_module.loads(line) for line in out.splitlines() if line]
        assert events[-1]["type"] == "job" and events[-1]["state"] == "done"
        job_id = events[0]["job"]

        code, out, _err = run_cli(capsys, "status", "--server", server.url, job_id)
        assert code == 0
        assert json_module.loads(out)["state"] == "done"

        code, out, _err = run_cli(capsys, "status", "--server", server.url)
        assert code == 0
        stats = json_module.loads(out)
        assert stats["jobs"]["done"] == 1
        assert stats["cells"]["simulated"] == 1
    finally:
        server.stop(mode="drain", timeout=30.0)


def test_submit_wait_prints_final_status(capsys):
    import json as json_module

    from repro.service import Scheduler, ServiceServer

    server = ServiceServer(Scheduler(workers=1, sim_jobs=1), port=0)
    server.start()
    try:
        code, out, _err = run_cli(
            capsys, "submit", "--server", server.url,
            "--schemes", "dir0b", "dragon", "--workloads", "pops",
            "--length", "800", "--wait",
        )
        assert code == 0
        final = json_module.loads(out)
        assert final["state"] == "done"
        assert final["cells"]["completed"] == 2
    finally:
        server.stop(mode="drain", timeout=30.0)
