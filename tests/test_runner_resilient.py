"""Error-isolated sweeps: retry, backoff, and per-cell containment."""

import pytest

from repro.core.experiment import CellFailure, Experiment
from repro.core.simulator import Simulator
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    TraceFormatError,
    TransientError,
)
from repro.protocols.registry import make_protocol
from repro.runner.faults import FaultInjector, FlakyTrace, SaboteurProtocol
from repro.runner.resilient import (
    ResilientExperiment,
    RetryPolicy,
    run_resilient_sweep,
    spec_key,
)
from repro.trace.io import LazyTraceFile, write_trace_file
from repro.workloads.registry import make_trace


def no_sleep_policy(**kwargs) -> RetryPolicy:
    kwargs.setdefault("sleep", lambda _delay: None)
    return RetryPolicy(**kwargs)


@pytest.fixture
def traces():
    return [
        make_trace("pops", length=1500, seed=1),
        make_trace("thor", length=1500, seed=2),
    ]


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)
    assert policy.delay(4) == pytest.approx(0.5)  # capped
    assert policy.delay(10) == pytest.approx(0.5)


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_base=-1)


def test_retryable_classification():
    policy = RetryPolicy()
    assert policy.is_retryable(TransientError("hiccup"))
    assert policy.is_retryable(OSError("stale NFS handle"))
    assert not policy.is_retryable(TraceFormatError("garbage"))
    assert not policy.is_retryable(ValueError("nope"))


def test_spec_key_forms():
    assert spec_key("dir1nb") == "dir1nb"
    assert spec_key(("dirinb", {"num_pointers": 2})) == "dir2nb"

    def factory(num_caches):
        return make_protocol("dir0b", num_caches)

    assert spec_key(factory) == "factory"
    factory.scheme_key = "custom"
    assert spec_key(factory) == "custom"


# ----------------------------------------------------------------------
# Error isolation
# ----------------------------------------------------------------------

def test_healthy_sweep_matches_strict_experiment(traces):
    resilient = run_resilient_sweep(traces, ["dir1nb", "wti", "dir0b"])
    strict = Experiment(traces=traces, schemes=["dir1nb", "wti", "dir0b"]).run()
    assert resilient.ok
    for scheme in strict.schemes:
        for name in strict.trace_names:
            assert resilient.result(scheme, name) == strict.result(scheme, name)


def test_corrupt_trace_is_contained_per_cell(tmp_path, traces):
    """The acceptance scenario: >= 3 schemes, one corrupted trace.

    Every healthy cell completes; every corrupt cell surfaces as a
    CellFailure naming the fault — the sweep never aborts.
    """
    bad_path = tmp_path / "bad.trace"
    write_trace_file(traces[1].records, bad_path)
    FaultInjector(seed=9).corrupt_text_trace(bad_path, mode="bad-type")
    corrupt = LazyTraceFile(bad_path, name="bad")

    schemes = ["dir1nb", "wti", "dir0b"]
    outcome = run_resilient_sweep([traces[0], corrupt], schemes)

    assert not outcome.ok
    for scheme in schemes:
        assert outcome.result(scheme, "pops").total_refs == len(traces[0])
        failure = outcome.failures[scheme]["bad"]
        assert failure.category == "TraceFormatError"
        assert str(bad_path) in failure.message
    assert len(outcome.all_failures()) == len(schemes)


def test_failed_cell_lookup_mentions_the_failure(traces):
    outcome = run_resilient_sweep(
        [FlakyTrace(traces[0], fail_after=5, fail_times=99)],
        ["dir0b"],
        retry=no_sleep_policy(max_attempts=2),
    )
    with pytest.raises(ConfigurationError, match="TransientError"):
        outcome.result("dir0b", "pops")


def test_strict_mode_reraises(traces):
    experiment = ResilientExperiment(
        traces=[FlakyTrace(traces[0], fail_after=5, fail_times=99)],
        schemes=["dir0b"],
        retry=no_sleep_policy(max_attempts=2),
        strict=True,
    )
    with pytest.raises(TransientError):
        experiment.run()


def test_illegal_protocol_state_contained_as_invariant_failure(traces):
    def saboteur(num_caches):
        return SaboteurProtocol(
            make_protocol("dir1nb", num_caches), trigger_after=40,
            mode="illegal-state",
        )
    saboteur.scheme_key = "sabotaged"

    outcome = run_resilient_sweep(
        [traces[0]],
        [saboteur, "dir0b"],
        simulator=Simulator(check_invariants=True),
    )
    failure = outcome.failures["sabotaged"]["pops"]
    assert failure.category == "InvariantViolation"
    assert outcome.result("dir0b", "pops").total_refs == len(traces[0])


# ----------------------------------------------------------------------
# Retry with backoff
# ----------------------------------------------------------------------

def test_flaky_trace_retried_to_success(traces):
    delays = []
    outcome = run_resilient_sweep(
        [FlakyTrace(traces[0], fail_after=100, fail_times=2)],
        ["dir0b"],
        retry=no_sleep_policy(
            max_attempts=3, backoff_base=0.05, sleep=delays.append
        ),
    )
    assert outcome.ok
    assert outcome.result("dir0b", "pops").total_refs == len(traces[0])
    # Two failures -> two exponentially growing backoff sleeps.
    assert delays == [pytest.approx(0.05), pytest.approx(0.1)]


def test_retries_exhausted_reports_attempt_count(traces):
    outcome = run_resilient_sweep(
        [FlakyTrace(traces[0], fail_after=10, fail_times=99)],
        ["dir0b"],
        retry=no_sleep_policy(max_attempts=3),
    )
    failure = outcome.failures["dir0b"]["pops"]
    assert failure.attempts == 3
    assert failure.category == "TransientError"


def test_permanent_errors_are_not_retried(tmp_path, traces):
    bad_path = tmp_path / "bad.trace"
    write_trace_file(traces[0].records, bad_path)
    FaultInjector(seed=1).corrupt_text_trace(bad_path, mode="garbage")

    attempts_seen = []
    outcome = run_resilient_sweep(
        [LazyTraceFile(bad_path, name="bad")],
        ["dir0b"],
        retry=no_sleep_policy(max_attempts=5, sleep=attempts_seen.append),
    )
    assert attempts_seen == []  # no backoff: the fault is permanent
    assert outcome.failures["dir0b"]["bad"].attempts == 1


def test_retry_after_transient_uses_fresh_protocol_state(traces):
    """A retried cell must not inherit a tainted protocol instance."""
    budget = {"left": 1}  # the fault fires once across all attempts

    def flaky_protocol(num_caches):
        saboteur = SaboteurProtocol(
            make_protocol("dir1nb", num_caches), trigger_after=200,
            mode="transient", failures_left=budget["left"],
        )
        budget["left"] = 0
        return saboteur

    flaky_protocol.scheme_key = "dir1nb"

    # The transient failure happens mid-trace; the successful attempt
    # must produce exactly what an unfaulted run produces.
    factories = [flaky_protocol]
    outcome = run_resilient_sweep(
        [traces[0]], factories, retry=no_sleep_policy(max_attempts=2)
    )
    plain = Experiment(traces=[traces[0]], schemes=["dir1nb"]).run()
    assert outcome.result("dir1nb", "pops") == plain.result("dir1nb", "pops")


# ----------------------------------------------------------------------
# Result container contracts
# ----------------------------------------------------------------------

def test_cell_failure_str_reads_well():
    failure = CellFailure(
        scheme="dir1nb", trace_name="pops", category="TraceFormatError",
        message="bad line", attempts=3,
    )
    text = str(failure)
    assert "dir1nb" in text and "pops" in text
    assert "after 3 attempts" in text


def test_experiment_validates_inputs(traces):
    with pytest.raises(ConfigurationError):
        ResilientExperiment(traces=[], schemes=["dir0b"]).run()
    with pytest.raises(ConfigurationError):
        ResilientExperiment(traces=traces, schemes=[]).run()
    with pytest.raises(ConfigurationError):
        ResilientExperiment(traces=traces, schemes=["dir0b"], resume=True)
