"""Protocol x sharing-pattern matrix: *why* the paper's results happen.

The full workloads blend sharing behaviours; the microbenchmarks in
``repro.workloads.micro`` isolate them.  This example prints the cost
matrix and the characteristic event signature of each pattern, showing
the mechanisms behind the paper's aggregate numbers:

* Dir1NB loses exactly where blocks are *re-read* by many caches
  (read-only tables, spin locks) and is actually the right policy for
  migratory objects;
* broadcast (Dir0B) beats sequential invalidation (DirnNB) only when a
  writer must reach several readers at once (producer/consumer);
* the update protocol (Dragon) wins whenever invalidation would force
  re-fetches — at the price of bus words on every shared write.

Run:  python examples/sharing_patterns.py
"""

from repro import pipelined_bus, simulate
from repro.protocols.events import EventType
from repro.report.tables import format_table
from repro.workloads.micro import MICRO_GENERATORS

LENGTH = 20_000
SCHEMES = ["dir1nb", "dirnnb", "dir0b", "dragon", "wti"]


def cost_matrix() -> None:
    bus = pipelined_bus()
    rows = []
    for pattern, generator in MICRO_GENERATORS.items():
        trace = generator(length=LENGTH)
        row = [pattern]
        for scheme in SCHEMES:
            row.append(simulate(trace, scheme).bus_cycles_per_reference(bus))
        rows.append(tuple(row))
    print(format_table(
        ["pattern"] + SCHEMES,
        rows,
        title="Bus cycles per reference by sharing pattern (pipelined bus)",
    ))
    print()


def signatures() -> None:
    interesting = [
        EventType.RM_BLK_CLN,
        EventType.RM_BLK_DRTY,
        EventType.WH_BLK_CLN,
        EventType.WM_BLK_CLN,
        EventType.WM_BLK_DRTY,
    ]
    rows = []
    for pattern, generator in MICRO_GENERATORS.items():
        trace = generator(length=LENGTH)
        freq = simulate(trace, "dir0b").frequencies()
        rows.append(
            (pattern,) + tuple(freq.percent(event) for event in interesting)
        )
    print(format_table(
        ["pattern"] + [event.value for event in interesting],
        rows,
        title="Dir0B event signature per pattern (% of refs)",
        precision=2,
    ))
    print()


def winners() -> None:
    bus = pipelined_bus()
    rows = []
    for pattern, generator in MICRO_GENERATORS.items():
        trace = generator(length=LENGTH)
        costs = {
            scheme: simulate(trace, scheme).bus_cycles_per_reference(bus)
            for scheme in SCHEMES
        }
        best = min(costs, key=costs.get)
        worst = max(costs, key=costs.get)
        rows.append((pattern, best, worst,
                     costs[worst] / costs[best] if costs[best] else float("inf")))
    print(format_table(
        ["pattern", "best scheme", "worst scheme", "spread"],
        rows,
        title="Winners and losers per pattern",
        precision=1,
    ))


def main() -> None:
    cost_matrix()
    signatures()
    winners()


if __name__ == "__main__":
    main()
