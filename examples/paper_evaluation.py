"""Regenerate the paper's full evaluation: every table and figure.

This drives the same code paths as the benchmark harness and prints
each artifact's ASCII rendering.  With the default length (~200k
references per trace) it takes a couple of minutes; pass a smaller
length for a quick look.

Run:  python examples/paper_evaluation.py [length]
"""

import sys
import time

from repro.report.experiments import PaperExperiments


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    print(f"Regenerating all paper artifacts at trace length {length:,} ...\n")
    experiments = PaperExperiments(length=length)

    start = time.perf_counter()
    for artifact in experiments.all_artifacts():
        print(artifact.text)
        print()
    elapsed = time.perf_counter() - start
    print(f"(regenerated 17 artifacts in {elapsed:.1f}s)")


if __name__ == "__main__":
    main()
