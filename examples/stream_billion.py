"""Stream an arbitrarily long trace to disk and simulate it at bounded memory.

The paper's traces are ~3.2M references; the in-memory reproduction
scales them down to fit comfortably in RAM.  The chunked trace store
(``docs/TRACESTORE.md``) removes that constraint: the workload
generator emits records one at a time, the ``.ctrc`` writer holds one
chunk of columns, and the simulator replays one decoded chunk at a
time — so the only resource that scales with trace length is disk.

This example streams a configurable number of references (default ten
million; pass a count to go higher — a billion works, given ~25 GB of
disk and a few hours) and demonstrates:

* streaming generation (``stream_trace`` -> ``StreamingTraceWriter``),
* index inspection without touching the chunk data,
* bounded-memory simulation bit-identical to the in-memory path,
* mid-chunk checkpoint/resume over the same file.

Run:  python examples/stream_billion.py [references]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.core.simulator import Simulator
from repro.runner.resilient import run_resilient_sweep
from repro.store import ChunkedTrace, StreamingTraceWriter
from repro.workloads.registry import stream_trace

LENGTH = 10_000_000
WORKLOAD = "pops"
SCHEMES = ["dir0b", "dragon"]


def human(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024:
            return f"{n:,.1f} {unit}"
        n /= 1024
    return f"{n:,.1f} TB"


def main() -> None:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else LENGTH

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{WORKLOAD}-{length}.ctrc"

        # 1. Stream the workload to disk.  The writer never holds more
        # than one chunk (262,144 references) of column buffers, so
        # this loop runs at the same memory footprint whether length
        # is ten thousand or ten billion.
        print(f"streaming {length:,} references of '{WORKLOAD}' ...")
        start = time.perf_counter()
        with StreamingTraceWriter(path, WORKLOAD) as writer:
            for record in stream_trace(WORKLOAD, length=length):
                writer.append(record)
        meta = writer.close()
        elapsed = time.perf_counter() - start
        print(
            f"  {meta['records']:,} records -> {len(meta['chunks'])} chunks, "
            f"{human(path.stat().st_size)} on disk "
            f"({length / elapsed:,.0f} rec/s)"
        )

        # 2. Open cost is O(index): the header, footer, and JSON index
        # are validated; no chunk is decoded until simulation asks.
        with ChunkedTrace(path) as trace:
            print(
                f"  index: {trace.num_chunks} chunks, "
                f"{len(trace.cpus)} cpus, {len(trace.pids)} pids, "
                f"fingerprint {meta['fingerprint'][:16]}..."
            )

            # 3. Simulate chunk by chunk.  The table-driven kernels
            # carry their state across chunk boundaries, so the result
            # is bit-identical to a whole-trace in-memory run.
            simulator = Simulator()
            results = {}
            for scheme in SCHEMES:
                start = time.perf_counter()
                results[scheme] = simulator.run(trace, scheme)
                rate = len(trace) / (time.perf_counter() - start)
                miss = results[scheme].frequencies().data_miss_rate()
                print(
                    f"  {scheme:>7s}: data miss {miss:7.4%}  "
                    f"({rate:,.0f} refs/s, memory stays flat)"
                )

            # 4. Checkpoint/resume works mid-chunk: the snapshot
            # records (chunk index, intra-chunk offset), and a resumed
            # run picks up from that exact reference.
            ckpt = Path(tmp) / "ckpt"
            outcome = run_resilient_sweep(
                [trace], SCHEMES[:1],
                checkpoint_dir=str(ckpt), checkpoint_every=100_000,
            )
            checkpointed = outcome.result(SCHEMES[0], trace.name)
            assert checkpointed == results[SCHEMES[0]]
            print("  windowed checkpoint run matches the streamed run exactly")


if __name__ == "__main__":
    main()
