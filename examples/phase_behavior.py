"""Phase behaviour: what the per-trace averages hide.

The paper reports whole-trace averages.  Splitting the traces into
windows shows the underlying phase structure — lock-convoy bursts where
Dir1NB's cost spikes with the spin fraction, and quiet private-compute
stretches where every scheme is nearly free.

Run:  python examples/phase_behavior.py
"""

from repro import make_trace, pipelined_bus
from repro.trace.windows import sparkline, window_costs

LENGTH = 120_000
WINDOW = 4_000


def main() -> None:
    bus = pipelined_bus()
    for workload in ("pops", "pero"):
        trace = make_trace(workload, length=LENGTH)
        print(f"=== {workload.upper()} ({len(trace):,} refs, "
              f"{WINDOW:,}-ref windows) ===")
        for scheme in ("dir1nb", "dir0b", "dragon"):
            costs = window_costs(trace, scheme, bus, WINDOW)
            series = [c.bus_cycles_per_reference for c in costs]
            peak = max(series)
            print(f"{scheme:8s} peak={peak:.3f}  |{sparkline(series)}|")
        spin_series = [
            c.spin_fraction
            for c in window_costs(trace, "dir0b", bus, WINDOW)
        ]
        print(f"{'spins':8s} peak={max(spin_series):.3f}  "
              f"|{sparkline(spin_series)}|")
        print()

    print(
        "Dir1NB's cost profile tracks the spin-fraction profile almost\n"
        "window for window (lock convoys), while Dir0B and Dragon stay\n"
        "flat through the same phases - the Section 5.2 result, resolved\n"
        "in time."
    )


if __name__ == "__main__":
    main()
