"""Beyond the paper's §5 bound: shared-bus scaling *with* contention.

The paper estimates ~15 effective processors for the best scheme on a
100 ns bus and notes the estimate is optimistic because bus contention
is ignored.  This example adds the missing piece: an exact closed-queue
(MVA) model built from each scheme's measured transaction rate and
transaction size, showing where the effective-processor curves actually
bend.

Run:  python examples/bus_saturation.py
"""

from repro import Simulator, pipelined_bus, scheme_label
from repro.analysis.contention import contention_model
from repro.core.result import merge_results
from repro.report.tables import format_table
from repro.workloads.registry import standard_traces

LENGTH = 60_000
SCHEMES = ["dir1nb", "wti", "dir0b", "dragon"]
MACHINE_SIZES = [1, 2, 4, 8, 12, 16, 24, 32]


def main() -> None:
    traces = standard_traces(LENGTH)
    simulator = Simulator()
    bus = pipelined_bus()

    models = {}
    for scheme in SCHEMES:
        merged = merge_results([simulator.run(t, scheme) for t in traces])
        models[scheme] = contention_model(merged, bus)

    rows = []
    for scheme, model in models.items():
        rows.append(
            (
                scheme_label(scheme),
                model.service_time * 1e9,
                model.think_time * 1e9,
                100 * model.demand,
                model.saturation_processors,
            )
        )
    print(format_table(
        ["Scheme", "svc (ns/txn)", "think (ns)", "bus demand %", "linear bound"],
        rows,
        title="Per-scheme bus demand (10 MIPS processors, 100 ns bus)",
        precision=1,
    ))
    print()

    rows = []
    for n in MACHINE_SIZES:
        row = [n]
        for scheme in SCHEMES:
            row.append(models[scheme].evaluate(n).effective_processors)
        rows.append(tuple(row))
    print(format_table(
        ["N"] + [scheme_label(s) for s in SCHEMES],
        rows,
        title="Effective processors vs machine size (MVA, contention included)",
        precision=2,
    ))
    print()

    for scheme in ("dir0b", "dragon"):
        model = models[scheme]
        knee = next(
            (point for point in model.curve(64) if point.efficiency < 0.8),
            None,
        )
        if knee:
            print(
                f"{scheme_label(scheme)}: efficiency drops below 80% at "
                f"{knee.processors} processors "
                f"(linear bound said {model.saturation_processors:.1f})"
            )


if __name__ == "__main__":
    main()
