"""The three validation layers, demonstrated on a real and a broken protocol.

Coherence protocols are exactly the kind of code that passes its happy
path and corrupts state in a corner.  This example shows the library's
defence in depth:

1. **invariant checking** during simulation (structural),
2. the **value-coherence oracle** (semantic: reads see the latest write),
3. **exhaustive state-space exploration** (every reachable single-block
   state, model-checker style),

first on a correct protocol, then on a deliberately sabotaged Dir0B
whose write path "forgets" one invalidation — each layer catches it.

Run:  python examples/verification_demo.py
"""

from repro.core.invariants import InvariantChecker
from repro.core.oracle import CoherentOracle, StaleReadError
from repro.core.statespace import explore_block_states
from repro.errors import InvariantViolation
from repro.memory.line import LineState
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols import registry
from repro.protocols.registry import available_protocols, make_protocol


class ForgetfulDir0B(Dir0BProtocol):
    """Dir0B whose writes leave one stale copy behind (a planted bug)."""

    def on_write(self, cache, block, first_ref):
        result = super().on_write(cache, block, first_ref)
        if not first_ref:
            victim = (cache + 1) % self.num_caches
            self._caches[victim].put(block, LineState.CLEAN)  # oops
        return result


SHARING_PATTERN = [
    (0, "r", 1), (1, "r", 1), (0, "w", 1), (1, "r", 1), (2, "w", 1),
    (1, "r", 1),
]


def run_pattern(protocol, check_invariants=False, oracle=False):
    target = CoherentOracle(protocol) if oracle else protocol
    checker = InvariantChecker(protocol)
    seen = set()
    for cache, op, block in SHARING_PATTERN:
        first = block not in seen
        seen.add(block)
        if op == "r":
            target.on_read(cache, block, first)
        else:
            target.on_write(cache, block, first)
        if check_invariants:
            checker.check_block(block)


def main() -> None:
    print("== correct protocols ==")
    for scheme in available_protocols():
        protocol = make_protocol(scheme, 4)
        run_pattern(protocol, check_invariants=True, oracle=False)
        run_pattern(make_protocol(scheme, 4), oracle=True)
        caches = 4 if scheme == "coarse-vector" else 3
        report = explore_block_states(scheme, num_caches=caches)
        print(f"  {scheme:14s} invariants ok, oracle ok, "
              f"{report.states} reachable states all clean")

    print("\n== sabotaged Dir0B (one invalidation 'forgotten') ==")

    # Layer 1: the structural checker sees the extra copy immediately.
    try:
        run_pattern(ForgetfulDir0B(4), check_invariants=True)
    except InvariantViolation as exc:
        print(f"  invariant checker: {exc}")

    # Layer 2: the oracle flags the stale read the moment the victim
    # consumes outdated data.
    try:
        run_pattern(ForgetfulDir0B(4), oracle=True)
    except (StaleReadError, InvariantViolation) as exc:
        print(f"  oracle: {type(exc).__name__}: {exc}")

    # Layer 3: exhaustive exploration enumerates every way it breaks.
    original = registry._REGISTRY["dir0b"]
    registry._REGISTRY["dir0b"] = ForgetfulDir0B
    try:
        report = explore_block_states("dir0b", num_caches=3)
    finally:
        registry._REGISTRY["dir0b"] = original
    print(f"  state space: {len(report.violations)} violating transitions, e.g.")
    for violation in report.violations[:2]:
        print(f"    - {violation}")


if __name__ == "__main__":
    main()
