"""The paper's thesis, quantified: coherence beyond the bus.

Section 2's core argument is that directory messages are *directed*, so
directory schemes run over any interconnection network while snoopy
schemes are stuck on a broadcast bus.  This example prices each
scheme's measured coherence operations on a bus, a 2D mesh, and a
hypercube at 4, 16, and 64 nodes — showing (a) snoopy schemes simply
cannot be hosted off the bus, (b) broadcast-dependent directories pay a
growing O(n) emulation penalty, and (c) no-broadcast directories scale.

Run:  python examples/network_study.py
"""

from repro.analysis.networks import network_scaling_study
from repro.cost.network import Topology, average_distance
from repro.report.tables import format_table

SCHEMES = ["dragon", "dir0b", "dir1b", "coarse-vector", "dirnnb"]
TOPOLOGIES = [Topology.BUS, Topology.MESH_2D, Topology.HYPERCUBE]
NODE_COUNTS = [4, 16, 64]


def distances_table() -> None:
    rows = []
    for topology in TOPOLOGIES:
        row = [topology.value]
        for nodes in NODE_COUNTS:
            row.append(average_distance(topology, nodes))
        rows.append(tuple(row))
    print(format_table(
        ["topology"] + [f"{n} nodes" for n in NODE_COUNTS],
        rows,
        title="Average message distance (hops)",
        precision=2,
    ))
    print()


def main() -> None:
    distances_table()

    points = network_scaling_study(
        schemes=SCHEMES,
        topologies=TOPOLOGIES,
        node_counts=NODE_COUNTS,
        length=30_000,
    )
    for topology in TOPOLOGIES:
        rows = []
        for scheme in SCHEMES:
            row = [scheme]
            for nodes in NODE_COUNTS:
                point = next(
                    p for p in points
                    if p.scheme == scheme
                    and p.topology is topology
                    and p.num_nodes == nodes
                )
                row.append(
                    point.cycles_per_reference
                    if point.hosted
                    else None  # rendered as '-': scheme cannot run here
                )
            rows.append(tuple(row))
        print(format_table(
            ["scheme"] + [f"{n} nodes" for n in NODE_COUNTS],
            rows,
            title=f"Network cycles per reference on {topology.value}",
        ))
        print()

    # The headline: the no-broadcast full map vs the broadcast scheme
    # as the mesh grows.
    mesh_gap = {}
    for nodes in NODE_COUNTS:
        dirnnb = next(
            p for p in points
            if p.scheme == "dirnnb" and p.topology is Topology.MESH_2D
            and p.num_nodes == nodes
        )
        dir0b = next(
            p for p in points
            if p.scheme == "dir0b" and p.topology is Topology.MESH_2D
            and p.num_nodes == nodes
        )
        mesh_gap[nodes] = dir0b.cycles_per_reference / dirnnb.cycles_per_reference
    print("Broadcast-emulation penalty on the mesh (Dir0B / DirnNB):")
    for nodes, gap in mesh_gap.items():
        print(f"  {nodes:3d} nodes: {gap:.2f}x")


if __name__ == "__main__":
    main()
