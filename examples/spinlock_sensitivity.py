"""Section 5.2 extended: how lock contention shapes scheme performance.

Reproduces the paper's spin-exclusion experiment and then sweeps the
lock-contention knobs of the synthetic workload to map out *when*
Dir1NB collapses: the paper's observation is that software-flush
consistency schemes behave like Dir1NB, so they must treat locks
specially.

Run:  python examples/spinlock_sensitivity.py
"""

from dataclasses import replace

from repro import SyntheticWorkload, pipelined_bus, simulate
from repro.analysis.spinlocks import spin_lock_impact, strip_spins
from repro.report.tables import format_table
from repro.trace.stats import compute_statistics
from repro.workloads.registry import standard_traces, workload_config

LENGTH = 60_000


def paper_experiment() -> None:
    traces = standard_traces(LENGTH)
    bus = pipelined_bus()
    rows = []
    for scheme in ("dir1nb", "dirnnb", "dir0b", "dragon"):
        impact = spin_lock_impact(traces, scheme, bus)
        rows.append(
            (
                scheme,
                impact.with_spins,
                impact.without_spins,
                100 * impact.relative_drop,
            )
        )
    print(format_table(
        ["Scheme", "with spins", "without spins", "drop %"],
        rows,
        title="Section 5.2: excluding lock-test reads (pipelined bus)",
    ))
    print()


def contention_sweep() -> None:
    """Vary lock attempt frequency: spins grow, Dir1NB pays, Dir0B doesn't."""
    base = workload_config("pops", length=LENGTH)
    bus = pipelined_bus()
    rows = []
    for scale in (0.0, 0.5, 1.0, 2.0):
        config = replace(
            base,
            name=f"pops-x{scale}",
            p_lock_attempt=base.p_lock_attempt * scale,
        )
        trace = SyntheticWorkload(config).build()
        stats = compute_statistics(trace.records, trace.name)
        dir1nb = simulate(trace, "dir1nb").bus_cycles_per_reference(bus)
        dir0b = simulate(trace, "dir0b").bus_cycles_per_reference(bus)
        rows.append(
            (
                f"{scale:.1f}x",
                100 * stats.spin_read_fraction_of_reads,
                dir1nb,
                dir0b,
                dir1nb / dir0b,
            )
        )
    print(format_table(
        ["contention", "spin % of reads", "Dir1NB", "Dir0B", "ratio"],
        rows,
        title="Lock-contention sweep (POPS analogue)",
        precision=3,
    ))
    print()


def software_flush_note() -> None:
    """The paper's aside: software schemes that flush critical-section
    data behave like Dir1NB — compare a stripped trace directly."""
    trace = standard_traces(LENGTH)[0]
    bus = pipelined_bus()
    stripped = strip_spins(trace)
    print(
        "POPS analogue, Dir1NB: "
        f"{simulate(trace, 'dir1nb').bus_cycles_per_reference(bus):.4f} with spins, "
        f"{simulate(stripped, 'dir1nb').bus_cycles_per_reference(bus):.4f} without "
        "- software-flush schemes must handle locks specially (Section 5.2)."
    )


def main() -> None:
    paper_experiment()
    contention_sweep()
    software_flush_note()


if __name__ == "__main__":
    main()
