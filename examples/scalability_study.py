"""Section 6 in depth: limited pointers, coarse vectors, bigger machines.

The paper closes by arguing that a directory keeping a *small* number
of pointers per block suffices, and calls for traces from larger
machines.  This example runs the limited-pointer sweep on the standard
4-process traces and then on 8- and 16-process versions of the same
workloads — the experiment the paper says it wants to run.

Run:  python examples/scalability_study.py
"""

from repro import Simulator, make_trace, pipelined_bus
from repro.analysis.scalability import (
    broadcast_cost_model,
    directory_storage_table,
    pointer_sweep,
    wasted_invalidation_rate,
)
from repro.core.result import merge_results
from repro.report.tables import format_table


def traces_for(num_processes: int, length: int = 60_000):
    return [
        make_trace(name, length=length, num_processes=num_processes)
        for name in ("pops", "thor", "pero")
    ]


def sweep_table(num_processes: int) -> str:
    traces = traces_for(num_processes)
    bus = pipelined_bus()
    points = pointer_sweep(
        traces, bus, pointer_counts=(1, 2, 3, 4), num_caches=num_processes
    )
    rows = [
        (
            point.label,
            point.bus_cycles_per_reference,
            100 * point.data_miss_fraction,
            point.pointer_evictions_per_reference,
            point.broadcasts_per_reference,
            point.directory_bits_per_block,
        )
        for point in points
    ]
    return format_table(
        ["Scheme", "cycles/ref", "miss %", "evic/ref", "bcast/ref", "bits/blk"],
        rows,
        title=f"Limited-pointer sweep, {num_processes} processes",
    )


def main() -> None:
    bus = pipelined_bus()

    for num_processes in (4, 8, 16):
        print(sweep_table(num_processes))
        print()

    # The Dir1B broadcast-cost law (paper: 0.0485 + 0.0006 b).
    simulator = Simulator()
    traces = traces_for(4)
    merged = merge_results([simulator.run(t, "dir1b") for t in traces])
    model = broadcast_cost_model(merged, bus)
    print(f"Dir1B cost law: cycles/ref = {model.base:.4f} + {model.rate:.5f} * b")
    for b in (1, 4, 16, 64):
        print(f"  b = {b:3d}: {model.cycles(b):.4f}")
    print()

    # Coarse vectors: logarithmic storage, a few wasted invalidations.
    for num_processes in (4, 8, 16):
        traces = traces_for(num_processes)
        merged = merge_results(
            [simulator.run(t, "coarse-vector") for t in traces]
        )
        full_map = merge_results([simulator.run(t, "dirnnb") for t in traces])
        print(
            f"coarse vector @ {num_processes:2d} processes: "
            f"{merged.bus_cycles_per_reference(bus):.4f} cycles/ref "
            f"(full map {full_map.bus_cycles_per_reference(bus):.4f}), "
            f"wasted invalidations/ref = {wasted_invalidation_rate(merged):.5f}"
        )
    print()

    # Storage scaling (Section 6's implicit table).
    table = directory_storage_table(cache_counts=(4, 16, 64, 256, 1024))
    organizations = list(next(iter(table.values())))
    rows = [
        (caches,) + tuple(row[org] for org in organizations)
        for caches, row in table.items()
    ]
    print(format_table(
        ["caches"] + organizations,
        rows,
        title="Directory storage (bits per memory block)",
        precision=0,
    ))


if __name__ == "__main__":
    main()
