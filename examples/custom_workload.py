"""Author a custom workload, persist its trace, and study finite caches.

Shows the full substrate: building a :class:`WorkloadConfig` from
scratch, writing/reading the trace in both on-disk formats, and the
finite-cache extension for estimating capacity effects the paper's
infinite-cache methodology deliberately excludes.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import (
    SyntheticWorkload,
    Trace,
    WorkloadConfig,
    compute_statistics,
    pipelined_bus,
    simulate,
)
from repro.memory.cache import FiniteCache
from repro.trace.io import (
    read_trace_binary,
    read_trace_file,
    write_trace_binary,
    write_trace_file,
)
from repro.report.tables import format_table


def build_workload() -> Trace:
    """An 8-process producer-consumer-heavy workload."""
    config = WorkloadConfig(
        name="pipeline8",
        num_processes=8,
        length=80_000,
        seed=42,
        instr_fraction=0.50,
        system_fraction=0.05,
        # A software pipeline: heavy buffer traffic, light locking.
        p_buffer=0.10,
        buffer_consume_fraction=0.6,
        num_buffers=8,
        blocks_per_buffer=8,
        p_lock_attempt=0.002,
        num_locks=2,
        cs_data_refs=20,
        p_shared_read=0.05,
        p_migratory=0.004,
        write_fraction_private=0.25,
    )
    return SyntheticWorkload(config).build()


def main() -> None:
    trace = build_workload()
    stats = compute_statistics(trace.records, trace.name)
    print(
        f"built '{trace.name}': {stats.total_refs:,} refs, "
        f"{100 * stats.instr_fraction:.1f}% instr, "
        f"{100 * stats.read_fraction:.1f}% reads, "
        f"{100 * stats.write_fraction:.1f}% writes"
    )

    # Round-trip the trace through both serialization formats.
    with tempfile.TemporaryDirectory() as tmp:
        text_path = Path(tmp) / "pipeline8.trace"
        binary_path = Path(tmp) / "pipeline8.bin"
        write_trace_file(trace.records, text_path)
        write_trace_binary(trace.records, binary_path)
        reloaded_text = list(read_trace_file(text_path))
        reloaded_binary = list(read_trace_binary(binary_path))
        assert reloaded_text == list(trace.records)
        assert reloaded_binary == list(trace.records)
        print(
            f"trace round-trips: text {text_path.stat().st_size / 1024:.0f} KiB, "
            f"binary {binary_path.stat().st_size / 1024:.0f} KiB\n"
        )

    # Compare schemes on the custom workload (infinite caches).
    bus = pipelined_bus()
    rows = []
    for scheme in ("dir1nb", "wti", "dirnnb", "dir0b", "dragon"):
        result = simulate(trace, scheme)
        rows.append((scheme, result.bus_cycles_per_reference(bus)))
    print(format_table(
        ["Scheme", "cycles/ref"],
        rows,
        title="Custom workload, infinite caches",
    ))
    print()

    # Finite-cache extension: estimate capacity effects at several sizes.
    rows = []
    for num_sets, assoc in ((64, 2), (256, 2), (1024, 4)):
        result = simulate(
            trace,
            "dir0b",
            cache_factory=lambda: FiniteCache(num_sets=num_sets, associativity=assoc),
        )
        capacity_kib = num_sets * assoc * 16 / 1024
        rows.append(
            (
                f"{capacity_kib:.0f} KiB ({num_sets}x{assoc})",
                result.bus_cycles_per_reference(bus),
                100 * result.frequencies().data_miss_rate(),
            )
        )
    infinite = simulate(trace, "dir0b")
    rows.append(
        (
            "infinite (paper)",
            infinite.bus_cycles_per_reference(bus),
            100 * infinite.frequencies().data_miss_rate(),
        )
    )
    print(format_table(
        ["Dir0B cache", "cycles/ref", "data miss rate %"],
        rows,
        title="Finite-cache extension",
        precision=3,
    ))


if __name__ == "__main__":
    main()
