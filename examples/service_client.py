"""Drive the simulation service end to end: serve, submit, stream, dedup.

Starts an in-process server (no separate terminal needed), submits the
paper's four-scheme sweep as a job, streams the NDJSON events, decodes
the results, then resubmits the identical spec to show the dedup /
coalescing layers at work in ``/stats``.

Run:  python examples/service_client.py

Against an already-running ``python -m repro serve``, replace the
server setup below with ``client = ServiceClient("http://host:8642")``.
"""

from repro import scheme_label
from repro.service import Scheduler, ServiceClient, ServiceServer


def main() -> None:
    # 1. Start a service. `repro serve` does exactly this behind a CLI.
    server = ServiceServer(Scheduler(workers=2), port=0)
    server.start()
    client = ServiceClient(server.url)
    print(f"service up at {server.url}\n")

    try:
        # 2. Submit the paper's four schemes over a POPS-like trace.
        spec = {
            "schemes": ["dir1nb", "wti", "dir0b", "dragon"],
            "traces": [{"workload": "pops", "length": 20_000, "seed": 1}],
            "tags": {"study": "service-demo"},
        }
        job = client.submit(spec)
        print(f"submitted job {job['id']} "
              f"({job['cells']['total']} cells, state={job['state']})\n")

        # 3. Follow the live event stream until the job is terminal.
        for event in client.stream_events(job["id"]):
            if event["type"] == "cell":
                print(f"  cell {event['scheme']:>7} / {event['trace']}: "
                      f"{event['status']} (source={event['source']})")
            else:
                print(f"  job -> {event['state']}\n")

        # 4. Results decode into the same SimulationResult objects a
        #    local `repro run` produces — bit-identical, in fact.
        results = client.results(job["id"])
        print("data miss rate per scheme:")
        for scheme, per_trace in results.items():
            for trace_name, result in per_trace.items():
                rate = 100 * result.frequencies().data_miss_rate()
                print(f"  {scheme_label(scheme):>22}: {rate:.3f} %")

        # 5. Resubmit the identical sweep: every cell is served from
        #    the result memo/cache — zero duplicate simulations.
        again = client.submit(spec)
        final = client.wait(again["id"])
        stats = client.stats()
        print(f"\nresubmission {again['id']}: state={final['state']}, "
              f"cells from cache={final['cells']['cache']}, "
              f"freshly simulated={final['cells']['simulated']}")
        print(f"server totals: simulated={stats['cells']['simulated']}, "
              f"cache={stats['cells']['cache']}, "
              f"coalesced={stats['cells']['coalesced']}")
    finally:
        server.stop(mode="drain", timeout=60.0)
        print("\nserver drained and stopped")


if __name__ == "__main__":
    main()
