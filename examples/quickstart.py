"""Quickstart: simulate the paper's four schemes on one synthetic trace.

Run:  python examples/quickstart.py
"""

from repro import (
    make_trace,
    non_pipelined_bus,
    pipelined_bus,
    scheme_label,
    simulate,
)
from repro.report.figures import range_chart
from repro.report.tables import format_table


def main() -> None:
    # 1. Generate a POPS-like multiprocessor address trace (a stand-in
    #    for the paper's ATUM traces: 4 processes, spin locks, shared
    #    data, ~50% instruction fetches).
    trace = make_trace("pops", length=100_000)
    print(f"trace '{trace.name}': {len(trace):,} references, "
          f"{len(trace.pids)} processes\n")

    # 2. Simulate each coherence scheme once.  A simulation measures
    #    cost-independent event frequencies (paper Table 4).
    schemes = ["dir1nb", "wti", "dir0b", "dragon"]
    results = {scheme: simulate(trace, scheme) for scheme in schemes}

    rows = []
    for scheme, result in results.items():
        freq = result.frequencies()
        rows.append(
            (
                scheme_label(scheme),
                100 * freq.read_miss_fraction,
                100 * freq.write_miss_fraction,
                100 * freq.data_miss_rate(),
            )
        )
    print(format_table(
        ["Scheme", "read miss %", "write miss %", "data miss rate %"],
        rows,
        title="Coherence event frequencies (% of all references)",
        precision=3,
    ))

    # 3. Price the same measurements under both bus models (Table 2)
    #    to get the paper's metric: bus cycles per memory reference.
    ranges = {
        scheme_label(scheme): (
            result.bus_cycles_per_reference(pipelined_bus()),
            result.bus_cycles_per_reference(non_pipelined_bus()),
        )
        for scheme, result in results.items()
    }
    print()
    print(range_chart(ranges, title="Bus cycles per reference (pipelined..non-pipelined)"))

    best = min(ranges.items(), key=lambda item: item[1][0])
    print(f"\nCheapest scheme on this trace: {best[0]} "
          f"({best[1][0]:.4f} cycles/ref on the pipelined bus)")


if __name__ == "__main__":
    main()
