"""One instrumented execution engine behind every entry point.

The paper's methodology is a single loop — simulate every
(scheme × trace) cell, then weight event frequencies with cost models.
This package is that loop, once: :class:`ExecutionPlan` normalizes a
sweep, :class:`Engine` executes it under a composable policy stack
(retry, checkpoint, result cache), backends decide *where* cells run
(:class:`InlineBackend` in-process, :class:`ProcessPoolBackend` across
workers), and :class:`EngineObserver` events make every layer report
through the same instrumentation.  ``runner.resilient``, the ``repro``
CLI, and the simulation service are all thin shells over this engine.
"""

from repro.engine.backends import (
    Cell,
    InlineBackend,
    ProcessPoolBackend,
    backend_for,
    execute_batch,
    execute_cell,
    run_cell,
    shutdown_pools,
)
from repro.engine.core import Engine, rehydrate_failure
from repro.engine.shm import TraceArena, attach_arena
from repro.engine.observer import (
    NULL_OBSERVER,
    EngineMetrics,
    EngineObserver,
    ObserverGroup,
    ProgressObserver,
)
from repro.engine.plan import (
    CellOutcome,
    CellTask,
    ExecutionPlan,
    SchemeSpec,
    auto_batch_size,
    build_protocol_for_cell,
    num_caches_for,
    spec_key,
)
from repro.engine.policies import (
    DEFAULT_CHECKPOINT_EVERY,
    ManifestRecorder,
    RetryPolicy,
    run_with_retry,
)

__all__ = [
    "Cell",
    "CellOutcome",
    "CellTask",
    "DEFAULT_CHECKPOINT_EVERY",
    "Engine",
    "EngineMetrics",
    "EngineObserver",
    "ExecutionPlan",
    "InlineBackend",
    "ManifestRecorder",
    "NULL_OBSERVER",
    "ObserverGroup",
    "ProcessPoolBackend",
    "ProgressObserver",
    "RetryPolicy",
    "SchemeSpec",
    "TraceArena",
    "attach_arena",
    "auto_batch_size",
    "backend_for",
    "build_protocol_for_cell",
    "execute_batch",
    "execute_cell",
    "num_caches_for",
    "rehydrate_failure",
    "run_cell",
    "run_with_retry",
    "shutdown_pools",
    "spec_key",
]
