"""Composable policies layered around a single cell execution.

The engine's failure-handling and persistence behaviors are expressed
as small, single-purpose pieces that wrap the one ``run_cell`` unit:

* :class:`RetryPolicy` + :func:`run_with_retry` — **the** retry loop.
  Every execution path (serial runner, pool workers, service scheduler)
  goes through this one implementation; before the engine existed the
  same loop lived, duplicated, in ``runner/resilient.py`` and
  ``runner/parallel.py``.
* :class:`ManifestRecorder` — **the** checkpoint-manifest write site.
  Completed cells and contained failures are recorded here and only
  here, so the manifest format has exactly one producer.

Result-cache lookup/store and fault injection remain composable at the
engine layer (see :class:`~repro.engine.core.Engine`): caching wraps
``run_cell`` from the outside (hit → skip the cell entirely), while
fault injection enters through scheme factories and flaky traces and
therefore needs no hook of its own — it exercises the retry and
containment policies like any other failure.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.experiment import CellFailure
from repro.errors import ConfigurationError, TransientError
from repro.runner.checkpoint import CheckpointManager

#: Records simulated between consecutive mid-cell checkpoint snapshots.
DEFAULT_CHECKPOINT_EVERY = 10_000


@dataclass
class RetryPolicy:
    """Retry-with-exponential-backoff configuration for one cell.

    Attributes:
        max_attempts: total tries per cell (1 = no retry).
        backoff_base: delay before the first retry, in seconds.
        backoff_factor: multiplier applied per subsequent retry.
        backoff_max: upper bound on any single delay.
        retryable: exception classes worth retrying; anything else is
            permanent.
        sleep: the delay function — injectable so tests (and dry runs)
            never actually block.
        jitter: ``"none"`` keeps the classic deterministic schedule;
            ``"full"`` draws each delay uniformly from ``[0, capped]``
            (AWS-style full jitter), so a whole fleet restarting at
            once spreads its retries instead of thundering-herding a
            shared queue.
        jitter_seed: seeds the jitter RNG; a fixed seed makes the
            jittered schedule exactly reproducible (tests, replay).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    retryable: tuple[type[BaseException], ...] = (TransientError, OSError)
    sleep: Callable[[float], None] = time.sleep
    jitter: str = "none"
    jitter_seed: int | None = None
    _rng: random.Random | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter not in ("none", "full"):
            raise ConfigurationError(
                f"jitter must be 'none' or 'full', got {self.jitter!r}"
            )

    def delay(self, failed_attempts: int) -> float:
        """Backoff delay after *failed_attempts* consecutive failures (>= 1)."""
        raw = self.backoff_base * self.backoff_factor ** (failed_attempts - 1)
        capped = min(raw, self.backoff_max)
        if self.jitter == "full":
            if self._rng is None:
                # Bypass frozen/field bookkeeping: the RNG is a lazily
                # created cache, not part of the policy's identity.
                object.__setattr__(self, "_rng", random.Random(self.jitter_seed))
            return self._rng.uniform(0.0, capped)
        return capped

    def is_retryable(self, exc: BaseException) -> bool:
        """True when *exc* is a transient failure worth another attempt."""
        return isinstance(exc, self.retryable)

    def backoff(self, failed_attempts: int) -> None:
        """Sleep the appropriate delay after a failure."""
        self.sleep(self.delay(failed_attempts))


def run_with_retry(
    attempt: Callable[[], Any],
    retry: RetryPolicy,
    observer: Any = None,
    task: Any = None,
) -> tuple[Any, BaseException | None, int]:
    """The single retry/backoff loop wrapping one cell attempt.

    Calls *attempt* until it succeeds, the failure is permanent, or the
    retry budget is exhausted.  ``KeyboardInterrupt``/``SystemExit``
    always propagate (an interrupted checkpointed run resumes later).

    Returns:
        ``(result, None, attempts_made)`` on success, or
        ``(None, final_exception, failed_attempts)`` once the cell is
        given up on — the caller decides between containment
        (:class:`~repro.core.experiment.CellFailure`) and strict
        re-raise, preserving the original exception object.
    """
    failed_attempts = 0
    while True:
        try:
            return attempt(), None, failed_attempts + 1
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            failed_attempts += 1
            if retry.is_retryable(exc) and failed_attempts < retry.max_attempts:
                # Drawn once so the observer reports the exact (possibly
                # jittered) delay that is actually slept.
                delay = retry.delay(failed_attempts)
                if observer is not None:
                    observer.cell_retry(task, failed_attempts, exc, delay)
                retry.sleep(delay)
                continue
            return None, exc, failed_attempts


class ManifestRecorder:
    """The single site that records progress into a checkpoint manifest.

    Every completed cell and every contained failure — whether produced
    by the serial engine, a process-pool backend, or a service job —
    funnels through this class, which mutates the manifest dict and
    persists it via :meth:`save` (the one
    :meth:`~repro.runner.checkpoint.CheckpointManager.save_manifest`
    call site in the execution stack).
    """

    def __init__(self, manager: CheckpointManager, manifest: dict[str, Any]) -> None:
        self.manager = manager
        self.manifest = manifest

    def record_completed(
        self,
        scheme: str,
        trace_name: str,
        result_json: dict[str, Any],
        *,
        clear_cell_state: bool = False,
        flush: bool = True,
    ) -> None:
        """Record one completed cell's JSON result payload.

        Args:
            scheme: the cell's scheme result key.
            trace_name: the cell's trace name.
            result_json: the cell's serialized
                :class:`~repro.core.result.SimulationResult`.
            clear_cell_state: also drop the mid-cell binary snapshot
                (the cell is no longer in progress).
            flush: persist the manifest now; pass False when batching
                several records before one :meth:`save`.
        """
        self.manifest["completed"].setdefault(scheme, {})[trace_name] = result_json
        if clear_cell_state:
            self.manager.clear_cell_state()
        if flush:
            self.save()

    def record_failure(
        self,
        failure: CellFailure,
        *,
        clear_cell_state: bool = False,
        flush: bool = True,
    ) -> None:
        """Record one contained cell failure."""
        self.manifest["failures"].append(
            {
                "scheme": failure.scheme,
                "trace_name": failure.trace_name,
                "category": failure.category,
                "message": failure.message,
                "attempts": failure.attempts,
            }
        )
        if clear_cell_state:
            self.manager.clear_cell_state()
        if flush:
            self.save()

    def save(self) -> None:
        """Atomically persist the manifest."""
        self.manager.save_manifest(self.manifest)
