"""Execution plans: the normalized description of one sweep.

The paper's methodology is a single loop — simulate every
(scheme × trace) cell, then weight event frequencies with cost models.
:class:`ExecutionPlan` is that loop's noun: the traces, the scheme
specs, and the simulator configuration, normalized into an ordered grid
of :class:`CellTask`\\ s.  Every entry point (``ResilientExperiment``,
``repro run``, the simulation service) builds a plan and hands it to
one engine; none of them re-derive the grid themselves.

The plan also owns the **content-fingerprint memo**: each trace's
fingerprint (the expensive half of a result-cache key) is computed at
most once per plan, regardless of how many scheme cells reference the
trace — not once per (scheme × trace) cell.

:class:`CellOutcome` is the terminal record of one cell, convertible to
and from the JSON transport payload that checkpoint manifests, pool
workers, and the service event stream all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.experiment import parse_scheme, scheme_key
from repro.core.result import SimulationResult
from repro.core.simulator import Simulator
from repro.errors import ConfigurationError
from repro.protocols.base import CoherenceProtocol
from repro.protocols.registry import make_protocol
from repro.runner.cache import cache_key, trace_fingerprint
from repro.runner.checkpoint import result_from_json, result_to_json
from repro.trace.stream import Trace

#: A registry name, a (name, options) pair, or a protocol factory.
SchemeSpec = Any


def spec_key(spec: SchemeSpec) -> str:
    """The result key a scheme spec will be reported under."""
    if callable(spec) and not isinstance(spec, (str, tuple)):
        key = getattr(spec, "scheme_key", None)
        if key:
            return str(key)
        return getattr(spec, "__name__", type(spec).__name__)
    name, options = parse_scheme(spec)
    return scheme_key(name, options)


def num_caches_for(simulator: Simulator, trace: Trace) -> int:
    """Machine size for one cell: one cache per sharer in the trace."""
    sharers = trace.pids if simulator.sharer_key == "pid" else trace.cpus
    return max(1, len(sharers))


#: Resolved (name, frozen options) -> protocol factory, per process.
_FACTORY_MEMO: dict[Any, Any] = {}


def protocol_factory(spec: SchemeSpec) -> Any:
    """Resolve *spec* to a ``factory(num_caches) -> protocol`` callable.

    Registry specs (a name or ``(name, options)``) are parsed and
    validated once per process and the resolved factory is memoized, so
    a pool worker running a batch of cells — or a fabric worker leasing
    cell after cell of the same scheme — pays the scheme-resolution
    cost once instead of per cell.  Callable specs are returned as-is:
    they may be stateful (fault-injecting factories), so memoizing the
    *factory* is safe but sharing anything beyond it is not.
    """
    if callable(spec) and not isinstance(spec, (str, tuple)):
        return spec
    name, options = parse_scheme(spec)

    def build(num_caches: int) -> CoherenceProtocol:
        return make_protocol(name, num_caches, **options)

    try:
        memo_key = (name, tuple(sorted(options.items())))
    except TypeError:
        return build  # unhashable option values: resolve but don't memoize
    factory = _FACTORY_MEMO.get(memo_key)
    if factory is None:
        factory = build
        _FACTORY_MEMO[memo_key] = factory
    return factory


def build_protocol_for_cell(
    simulator: Simulator, spec: SchemeSpec, trace: Trace
) -> CoherenceProtocol:
    """Build the protocol instance for one (spec, trace) cell.

    Module-level so pool workers run exactly the same cell-construction
    code as the in-process engine.
    """
    num_caches = num_caches_for(simulator, trace)
    return protocol_factory(spec)(num_caches)


#: Target dispatches per worker when auto-sizing batches: enough slack
#: for load balancing, few enough that IPC stays amortized.
_BATCHES_PER_WORKER = 4


def auto_batch_size(cell_count: int, jobs: int) -> int:
    """Cells per pool dispatch when no explicit batch size is given.

    Aims at ~4 batches per worker: one IPC round-trip then carries many
    small cells, while stragglers can still be rebalanced across the
    remaining batches.
    """
    if cell_count <= 0:
        return 1
    return max(1, -(-cell_count // (max(1, jobs) * _BATCHES_PER_WORKER)))


def group_into_batches(items: Sequence[Any], batch_size: int) -> list[list[Any]]:
    """Split *items* into contiguous batches of at most *batch_size*.

    Contiguous (sweep-order) grouping keeps cells of one scheme
    together, which maximizes the per-worker protocol-factory memo's
    hit rate within a batch.
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch size must be >= 1, got {batch_size}")
    return [
        list(items[start : start + batch_size])
        for start in range(0, len(items), batch_size)
    ]


@dataclass
class CellTask:
    """One (scheme × trace) cell of a plan, with its resolved inputs.

    Attributes:
        spec: the scheme spec (name, ``(name, options)``, or factory).
        scheme_key: the result key the cell reports under.
        trace: the trace object to simulate.
        trace_name: the label results are filed under.
        index: position in sweep order (-1 when unplaced).
        cache_id: content-addressed result-cache key, or None when the
            cell is uncacheable (set by the layer that owns caching).
    """

    spec: SchemeSpec
    scheme_key: str
    trace: Any
    trace_name: str
    index: int = -1
    cache_id: str | None = None


@dataclass
class CellOutcome:
    """The terminal record of one cell: a result or a contained error.

    Attributes:
        task: the cell this outcome belongs to.
        status: ``"ok"`` or ``"error"``.
        result: the live :class:`SimulationResult` (in-process paths).
        result_json: the serialized result (transport paths).
        category: the error's type name (error outcomes).
        message: the final error message (error outcomes).
        attempts: attempts made (ok: failures + 1; error: failures).
        error: the original exception object — only available when the
            cell ran in this process; never crosses a pool boundary.
        duration_s: wall-clock execution time (in-process runs).
        source: how the outcome was obtained (``simulated``, ``cache``,
            ``checkpoint``, ``coalesced``).
    """

    task: CellTask
    status: str
    result: SimulationResult | None = None
    result_json: dict[str, Any] | None = None
    category: str | None = None
    message: str | None = None
    attempts: int = 1
    error: BaseException | None = None
    duration_s: float = 0.0
    source: str = "simulated"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def json_result(self) -> dict[str, Any]:
        """The serialized result payload (serializing lazily once)."""
        if self.result_json is None:
            self.result_json = result_to_json(self.result)
        return self.result_json

    def live_result(self) -> SimulationResult:
        """The result object (deserializing lazily once)."""
        if self.result is None:
            self.result = result_from_json(self.result_json)
        return self.result

    def to_payload(self) -> dict[str, Any]:
        """The legacy transport payload (manifest / worker / event shape)."""
        if self.status == "ok":
            return {
                "status": "ok",
                "result": self.json_result(),
                "attempts": self.attempts,
            }
        return {
            "status": "error",
            "category": self.category or "ReproError",
            "message": self.message or "",
            "attempts": self.attempts,
        }

    @classmethod
    def from_payload(
        cls, task: CellTask, payload: dict[str, Any], source: str = "simulated"
    ) -> "CellOutcome":
        """Rebuild an outcome from its transport payload."""
        if payload["status"] == "ok":
            return cls(
                task=task,
                status="ok",
                result_json=payload["result"],
                attempts=payload.get("attempts", 1),
                source=source,
            )
        return cls(
            task=task,
            status="error",
            category=payload.get("category", "ReproError"),
            message=payload.get("message", ""),
            attempts=payload.get("attempts", 1),
            source=source,
        )


@dataclass
class ExecutionPlan:
    """A normalized sweep: traces × schemes under one simulator config.

    Args:
        traces: input traces; cells are visited scheme-major.
        schemes: registry names, ``(name, options)`` pairs, or protocol
            factories ``factory(num_caches) -> protocol``.
        simulator: configured simulator (paper defaults when omitted).
    """

    traces: Sequence[Any]
    schemes: Sequence[SchemeSpec]
    simulator: Simulator | None = None
    #: Per-plan memo of trace-content fingerprints (id(trace) -> hex).
    _fingerprints: dict[int, str] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.simulator is None:
            self.simulator = Simulator()

    def validate(self) -> None:
        """Reject empty plans (same contract the pre-engine runner had)."""
        if not self.traces:
            raise ConfigurationError("experiment needs at least one trace")
        if not self.schemes:
            raise ConfigurationError("experiment needs at least one scheme")

    def scheme_keys(self) -> list[str]:
        """Result keys in sweep order."""
        return [spec_key(spec) for spec in self.schemes]

    def cells(self) -> list[CellTask]:
        """The full (scheme × trace) grid in sweep order, scheme-major."""
        tasks: list[CellTask] = []
        index = 0
        for spec in self.schemes:
            key = spec_key(spec)
            for trace in self.traces:
                tasks.append(
                    CellTask(
                        spec=spec,
                        scheme_key=key,
                        trace=trace,
                        trace_name=trace.name,
                        index=index,
                    )
                )
                index += 1
        return tasks

    def fingerprint(self) -> dict[str, Any]:
        """The checkpoint-manifest identity of this plan.

        Byte-compatible with the pre-engine runner's fingerprint, so
        manifests written before the engine refactor resume cleanly.
        """
        return {
            "schemes": self.scheme_keys(),
            "traces": [trace.name for trace in self.traces],
            "sharer_key": self.simulator.sharer_key,
        }

    def trace_fingerprint(self, trace: Any) -> str:
        """The trace's content fingerprint, computed at most once per plan.

        Memoized by object identity: a plan holds its traces for its
        lifetime, so every (scheme × trace) cell sharing the trace
        reuses one fingerprint instead of re-hashing the records.
        """
        fingerprint = self._fingerprints.get(id(trace))
        if fingerprint is None:
            fingerprint = trace_fingerprint(trace)
            self._fingerprints[id(trace)] = fingerprint
        return fingerprint

    def cache_id(self, spec: SchemeSpec, trace: Any) -> str | None:
        """The cell's content-addressed cache key, or None if uncacheable.

        Any failure here (a corrupt lazy trace raising mid-fingerprint,
        unpicklable options) quietly disables caching for the cell; the
        cell then simulates normally and its errors get the ordinary
        containment treatment.
        """
        try:
            return cache_key(spec, self.simulator, self.trace_fingerprint(trace))
        except Exception:
            return None
