"""Execution backends: the pluggable "where does a cell run" layer.

Every backend executes the same per-cell unit — build the protocol,
simulate, retry transient failures under the plan's
:class:`~repro.engine.policies.RetryPolicy` — and reports outcomes in
the same JSON transport payload the checkpoint manifest uses.  The
engine picks a backend from configuration (``jobs == 1`` →
:class:`InlineBackend`, ``jobs > 1`` → :class:`ProcessPoolBackend`);
nothing above this layer knows whether a cell ran in-process or in a
pool worker.

The pooled backend's dispatch path is built for throughput:

* **warm workers** — pools are module-level and keyed by worker count,
  so consecutive sweeps (a scheduler draining jobs, a benchmark loop)
  reuse live worker processes instead of re-forking per sweep;
* **shared-memory traces** — every :class:`ColumnarTrace` in the sweep
  is packed once into a :class:`~repro.engine.shm.TraceArena`; cell
  descriptors then carry a small arena index instead of a pickled
  trace (see ``repro/engine/shm.py``);
* **batched cells** — one pool round-trip carries a batch of cell
  descriptors (``batch`` cells, auto-sized from cells-per-worker when
  unset), amortizing IPC and letting workers reuse the per-process
  protocol-factory memo across a batch.

Containment is preserved layer by layer:

* exceptions inside a worker are retried there and, once permanent,
  returned as failure payloads (never raised across the pool);
* a cell whose inputs do not pickle (an in-memory factory protocol, a
  fault-injection wrapper holding a live file handle) silently falls
  back to in-process execution — the pool is an optimization, not a
  requirement;
* a worker process dying outright re-runs that batch's cells in the
  parent, where the ordinary containment applies; a broken pool is
  retired so the next sweep gets a fresh one.

Results are reported twice: an ``on_complete`` callback fires in
completion order (for incremental checkpointing), and the returned
mapping is keyed by cell index so the caller can assemble results in
deterministic sweep order regardless of scheduling.  Backends fire
``cell_finished`` observer events in the parent process as outcomes
arrive; per-attempt ``cell_retry`` events are only observable for
in-process execution.
"""

from __future__ import annotations

import atexit
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.core.simulator import Simulator
from repro.errors import ConfigurationError
from repro.runner.checkpoint import result_to_json
from repro.trace.columnar import ColumnarTrace
from repro.trace.stream import Trace

from repro.engine.observer import NULL_OBSERVER, EngineObserver
from repro.engine.plan import (
    CellOutcome,
    CellTask,
    auto_batch_size,
    build_protocol_for_cell,
    group_into_batches,
)
from repro.engine.policies import RetryPolicy, run_with_retry
from repro.engine.shm import TraceArena, attach_arena

#: One sweep cell in transport form: (scheme spec, result key, trace).
Cell = tuple


def _as_task(cell: Any, index: int) -> CellTask:
    """Normalize a cell — a :class:`CellTask` or legacy triple — to a task."""
    if isinstance(cell, CellTask):
        return cell
    spec, key, trace = cell
    return CellTask(
        spec=spec, scheme_key=key, trace=trace, trace_name=trace.name, index=index
    )


def _run_one_attempt(
    simulator: Simulator, spec: Any, key: str, trace: Trace
) -> dict[str, Any]:
    """One protocol build + simulation; returns the result's JSON form."""
    protocol = build_protocol_for_cell(simulator, spec, trace)
    result = simulator.run(trace, protocol, trace_name=trace.name)
    result.scheme = key
    return result_to_json(result)


def run_cell(
    simulator: Simulator,
    task: CellTask,
    retry: RetryPolicy | None = None,
    observer: EngineObserver | None = None,
    attempt: Callable[[], Any] | None = None,
) -> CellOutcome:
    """Run one cell in-process to a terminal outcome (the engine's unit).

    Wraps a single cell attempt in the engine retry middleware and
    reports the terminal outcome to *observer* (``cell_finished`` fires
    exactly once per cell; for pooled cells the backend fires it
    parent-side instead).  Never raises for ordinary failures — the
    caller chooses containment or strict re-raise from the outcome,
    which still holds the original exception object.

    Args:
        simulator: the configured simulator.
        task: the cell to run.
        retry: transient-failure policy (defaults to a fresh
            :class:`RetryPolicy`).
        observer: engine event hook (defaults to the no-op observer).
        attempt: override for the single-attempt body — the engine's
            serial path injects its windowed checkpointed execution
            here; the default builds the protocol and simulates the
            whole trace in one shot.
    """
    if retry is None:
        retry = RetryPolicy()
    if observer is None:
        observer = NULL_OBSERVER
    if attempt is None:

        def attempt() -> Any:
            protocol = build_protocol_for_cell(simulator, task.spec, task.trace)
            result = simulator.run(task.trace, protocol, trace_name=task.trace_name)
            result.scheme = task.scheme_key
            return result

    start = time.monotonic()
    result, error, attempts = run_with_retry(attempt, retry, observer, task)
    duration = time.monotonic() - start
    if error is None:
        outcome = CellOutcome(
            task=task,
            status="ok",
            result=result,
            attempts=attempts,
            duration_s=duration,
        )
    else:
        outcome = CellOutcome(
            task=task,
            status="error",
            category=type(error).__name__,
            message=str(error),
            attempts=attempts,
            error=error,
            duration_s=duration,
        )
    observer.cell_finished(task, outcome)
    return outcome


def _terminal_payload(
    simulator: Simulator, spec: Any, key: str, trace: Any, retry: RetryPolicy
) -> dict[str, Any]:
    """Run one cell to its terminal transport payload; never raises."""
    result_json, error, attempts = run_with_retry(
        lambda: _run_one_attempt(simulator, spec, key, trace), retry
    )
    if error is None:
        return {"status": "ok", "result": result_json, "attempts": attempts}
    return {
        "status": "error",
        "category": type(error).__name__,
        "message": str(error),
        "attempts": attempts,
    }


def execute_cell(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one cell to a terminal outcome; never raises (worker entry point).

    Module-level and picklable: the single-cell pool entry point, kept
    for the runner compatibility shims and for parent-side fallback.
    The payload carries the simulator, the cell, and the retry policy;
    the return value is either ``{"status": "ok", "result": <json>,
    "attempts": n}`` or ``{"status": "error", "category": ...,
    "message": ..., "attempts": n}`` — the same outcome shape the
    checkpoint manifest records.
    """
    return _terminal_payload(
        payload["simulator"],
        payload["spec"],
        payload["key"],
        payload["trace"],
        payload["retry"],
    )


def execute_batch(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Run a batch of cells in one pool round-trip (worker entry point).

    The payload carries the simulator and retry policy once per batch,
    an optional :class:`TraceArena` descriptor, and one compact
    descriptor per cell: the scheme key, the spec as its own pickle
    (unpickled per cell so stateful factory specs get a fresh copy per
    cell, exactly as per-cell dispatch gave them), and either an arena
    trace index or an inline trace object.  Returns terminal outcome
    payloads in batch order; cell failures are contained per cell, so
    the only exceptions that escape are infrastructure ones (a vanished
    arena segment), which the parent treats as a dead batch and re-runs
    locally.
    """
    simulator = payload["simulator"]
    retry = payload["retry"]
    descriptor = payload.get("arena")
    arena = attach_arena(descriptor) if descriptor is not None else None
    results: list[dict[str, Any]] = []
    for cell in payload["cells"]:
        spec = pickle.loads(cell["spec"])
        if "trace_index" in cell:
            trace = arena.trace_from(cell["trace_index"])
        else:
            trace = cell["trace"]
        results.append(_terminal_payload(simulator, spec, cell["key"], trace, retry))
    return results


def _picklable_retry(retry: RetryPolicy) -> RetryPolicy:
    """The retry policy with any unpicklable sleep hook made shippable.

    Tests inject counting lambdas as ``sleep``; those cannot cross a
    process boundary, so workers fall back to the real ``time.sleep``
    with the same delay schedule.
    """
    try:
        pickle.dumps(retry)
        return retry
    except Exception:
        return replace(retry, sleep=time.sleep)


# ----------------------------------------------------------------------
# Warm worker pools
# ----------------------------------------------------------------------

#: Live pools keyed by worker count, reused across sweeps in-process.
_POOLS: dict[int, ProcessPoolExecutor] = {}


def _warm_pool(jobs: int) -> ProcessPoolExecutor:
    """The process pool for *jobs* workers, creating it on first use."""
    pool = _POOLS.get(jobs)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=jobs)
        _POOLS[jobs] = pool
    return pool


def _retire_pool(jobs: int) -> None:
    """Drop (and shut down) the pool for *jobs* — it broke or is stale."""
    pool = _POOLS.pop(jobs, None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def shutdown_pools() -> None:
    """Shut down every warm pool (tests, interpreter teardown)."""
    for jobs in list(_POOLS):
        _retire_pool(jobs)


atexit.register(shutdown_pools)


@dataclass
class InlineBackend:
    """Runs sweep cells sequentially in the current process.

    The degenerate backend: same interface as
    :class:`ProcessPoolBackend`, same outcome payloads, no pool.  Used
    when ``jobs == 1`` and by tests that want pool-free determinism.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def run(
        self,
        simulator: Simulator,
        cells: Sequence[Any],
        on_complete: Callable[[int, dict[str, Any]], None] | None = None,
        *,
        observer: EngineObserver | None = None,
    ) -> dict[int, dict[str, Any]]:
        """Execute every cell in order; returns ``{cell index: payload}``."""
        outcomes: dict[int, dict[str, Any]] = {}
        for index, cell in enumerate(cells):
            task = _as_task(cell, index)
            outcome = run_cell(simulator, task, retry=self.retry, observer=observer)
            payload = outcome.to_payload()
            outcomes[index] = payload
            if on_complete is not None:
                on_complete(index, payload)
        return outcomes


@dataclass
class ProcessPoolBackend:
    """Runs sweep cells across a warm process pool, containing failures.

    Args:
        jobs: worker process count (>= 1; 1 still uses a pool of one,
            callers that want true serial execution pick
            :class:`InlineBackend`).
        retry: per-cell transient-failure policy, applied *inside* each
            worker.
        batch: cells per pool dispatch; None auto-sizes to roughly four
            batches per worker (see :func:`auto_batch_size`).
    """

    jobs: int
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    batch: int | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch is not None and self.batch < 1:
            raise ConfigurationError(f"batch size must be >= 1, got {self.batch}")

    def run(
        self,
        simulator: Simulator,
        cells: Sequence[Any],
        on_complete: Callable[[int, dict[str, Any]], None] | None = None,
        *,
        observer: EngineObserver | None = None,
    ) -> dict[int, dict[str, Any]]:
        """Execute every cell; returns ``{cell index: outcome payload}``.

        Args:
            simulator: the configured simulator (shipped to workers
                once per batch).
            cells: :class:`CellTask`\\ s (or legacy ``(spec, key,
                trace)`` triples) in sweep order.
            on_complete: called with ``(cell index, outcome payload)``
                as each cell finishes, in completion order — used for
                incremental checkpoint-manifest writes.
            observer: receives ``cell_finished`` parent-side per cell.
        """
        outcomes: dict[int, dict[str, Any]] = {}
        if not cells:
            return outcomes
        retry = _picklable_retry(self.retry)
        if observer is None:
            observer = NULL_OBSERVER
        tasks = [_as_task(cell, index) for index, cell in enumerate(cells)]

        def finish(index: int, payload: dict[str, Any]) -> None:
            outcomes[index] = payload
            observer.cell_finished(
                tasks[index], CellOutcome.from_payload(tasks[index], payload)
            )
            if on_complete is not None:
                on_complete(index, payload)

        def run_local(index: int) -> None:
            task = tasks[index]
            finish(
                index,
                _terminal_payload(
                    simulator, task.spec, task.scheme_key, task.trace, retry
                ),
            )

        # The simulator and retry policy ride on every batch; if they
        # cannot cross the pool boundary, nothing can.
        try:
            pickle.dumps((simulator, retry))
        except Exception:
            for index in range(len(tasks)):
                run_local(index)
            return outcomes

        spec_memo: dict[int, bytes | None] = {}

        def spec_blob(spec: Any) -> bytes | None:
            """Pickle *spec* once per distinct object (None: unshippable)."""
            memo_key = id(spec)
            if memo_key not in spec_memo:
                try:
                    spec_memo[memo_key] = pickle.dumps(spec)
                except Exception:
                    spec_memo[memo_key] = None
            return spec_memo[memo_key]

        # Pack every columnar trace referenced by a shippable cell into
        # one shared-memory arena for the whole sweep; cells then name
        # their trace by index instead of shipping its bytes per batch.
        arena_index: dict[int, int] = {}
        unique_columnar: list[ColumnarTrace] = []
        for task in tasks:
            if (
                isinstance(task.trace, ColumnarTrace)
                and id(task.trace) not in arena_index
                and spec_blob(task.spec) is not None
            ):
                arena_index[id(task.trace)] = len(unique_columnar)
                unique_columnar.append(task.trace)
        arena = TraceArena.create(unique_columnar) if unique_columnar else None
        if arena is None:
            arena_index.clear()

        local: list[int] = []
        remote: list[tuple[int, dict[str, Any]]] = []
        trace_picklable: dict[int, bool] = {}
        for index, task in enumerate(tasks):
            blob = spec_blob(task.spec)
            if blob is None:
                local.append(index)
                continue
            cell: dict[str, Any] = {"spec": blob, "key": task.scheme_key}
            trace_id = id(task.trace)
            if trace_id in arena_index:
                cell["trace_index"] = arena_index[trace_id]
            else:
                shippable = trace_picklable.get(trace_id)
                if shippable is None:
                    try:
                        pickle.dumps(task.trace)
                        shippable = True
                    except Exception:
                        shippable = False
                    trace_picklable[trace_id] = shippable
                if not shippable:
                    local.append(index)
                    continue
                cell["trace"] = task.trace
            remote.append((index, cell))

        try:
            if remote:
                self._run_remote(simulator, retry, arena, remote, run_local, finish)
            for index in local:
                run_local(index)
        finally:
            if arena is not None:
                arena.dispose()
        return outcomes

    def _run_remote(
        self,
        simulator: Simulator,
        retry: RetryPolicy,
        arena: TraceArena | None,
        remote: list[tuple[int, dict[str, Any]]],
        run_local: Callable[[int], None],
        finish: Callable[[int, dict[str, Any]], None],
    ) -> None:
        """Dispatch shippable cells in batches over the warm pool."""
        batch_size = self.batch or auto_batch_size(len(remote), self.jobs)
        batches = group_into_batches(remote, batch_size)

        def payload_for(batch: list[tuple[int, dict[str, Any]]]) -> dict[str, Any]:
            payload = {
                "simulator": simulator,
                "retry": retry,
                "cells": [cell for _, cell in batch],
            }
            if arena is not None and any("trace_index" in cell for _, cell in batch):
                payload["arena"] = arena.descriptor
            return payload

        futures: dict[Any, list[tuple[int, dict[str, Any]]]] = {}
        submitted = 0
        pool_broken = False
        try:
            pool = _warm_pool(self.jobs)
            for batch in batches:
                futures[pool.submit(execute_batch, payload_for(batch))] = batch
                submitted += 1
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            # The pool cannot be created or fed at all; whatever made it
            # in drains below, the rest runs in the parent.
            pool_broken = True

        for future in as_completed(futures):
            batch = futures[future]
            try:
                payloads = future.result()
                if len(payloads) != len(batch):
                    raise RuntimeError("pool worker returned a short batch")
            except (KeyboardInterrupt, SystemExit):
                raise
            except BrokenProcessPool:
                # A worker died mid-batch: re-run the batch's cells in
                # the parent (ordinary containment applies there) and
                # retire the pool so the next sweep gets a fresh one.
                pool_broken = True
                for index, _ in batch:
                    run_local(index)
            except Exception:
                for index, _ in batch:
                    run_local(index)
            else:
                for (index, _), payload in zip(batch, payloads):
                    finish(index, payload)

        for batch in batches[submitted:]:
            for index, _ in batch:
                run_local(index)
        if pool_broken:
            _retire_pool(self.jobs)


def backend_for(
    jobs: int, retry: RetryPolicy, batch: int | None = None
) -> InlineBackend | ProcessPoolBackend:
    """Select the execution backend for a worker count."""
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return InlineBackend(retry=retry)
    return ProcessPoolBackend(jobs=jobs, retry=retry, batch=batch)
