"""Execution backends: the pluggable "where does a cell run" layer.

Every backend executes the same per-cell unit — build the protocol,
simulate, retry transient failures under the plan's
:class:`~repro.engine.policies.RetryPolicy` — and reports outcomes in
the same JSON transport payload the checkpoint manifest uses.  The
engine picks a backend from configuration (``jobs == 1`` →
:class:`InlineBackend`, ``jobs > 1`` → :class:`ProcessPoolBackend`);
nothing above this layer knows whether a cell ran in-process or in a
pool worker.

Containment is preserved layer by layer:

* exceptions inside a worker are retried there and, once permanent,
  returned as failure payloads (never raised across the pool);
* a cell whose inputs do not pickle (an in-memory factory protocol, a
  fault-injection wrapper holding a live file handle) silently falls
  back to in-process execution — the pool is an optimization, not a
  requirement;
* a worker process dying outright (the pool raising
  ``BrokenProcessPool`` or the future failing for any other reason)
  re-runs that cell in the parent, where the ordinary containment
  applies.

Results are reported twice: an ``on_complete`` callback fires in
completion order (for incremental checkpointing), and the returned
mapping is keyed by cell index so the caller can assemble results in
deterministic sweep order regardless of scheduling.  Backends fire
``cell_finished`` observer events in the parent process as outcomes
arrive; per-attempt ``cell_retry`` events are only observable for
in-process execution.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.core.simulator import Simulator
from repro.errors import ConfigurationError
from repro.runner.checkpoint import result_to_json
from repro.trace.stream import Trace

from repro.engine.observer import NULL_OBSERVER, EngineObserver
from repro.engine.plan import CellOutcome, CellTask, build_protocol_for_cell
from repro.engine.policies import RetryPolicy, run_with_retry

#: One sweep cell in transport form: (scheme spec, result key, trace).
Cell = tuple


def _as_task(cell: Any, index: int) -> CellTask:
    """Normalize a cell — a :class:`CellTask` or legacy triple — to a task."""
    if isinstance(cell, CellTask):
        return cell
    spec, key, trace = cell
    return CellTask(
        spec=spec, scheme_key=key, trace=trace, trace_name=trace.name, index=index
    )


def _run_one_attempt(
    simulator: Simulator, spec: Any, key: str, trace: Trace
) -> dict[str, Any]:
    """One protocol build + simulation; returns the result's JSON form."""
    protocol = build_protocol_for_cell(simulator, spec, trace)
    result = simulator.run(trace, protocol, trace_name=trace.name)
    result.scheme = key
    return result_to_json(result)


def run_cell(
    simulator: Simulator,
    task: CellTask,
    retry: RetryPolicy | None = None,
    observer: EngineObserver | None = None,
    attempt: Callable[[], Any] | None = None,
) -> CellOutcome:
    """Run one cell in-process to a terminal outcome (the engine's unit).

    Wraps a single cell attempt in the engine retry middleware and
    reports the terminal outcome to *observer* (``cell_finished`` fires
    exactly once per cell; for pooled cells the backend fires it
    parent-side instead).  Never raises for ordinary failures — the
    caller chooses containment or strict re-raise from the outcome,
    which still holds the original exception object.

    Args:
        simulator: the configured simulator.
        task: the cell to run.
        retry: transient-failure policy (defaults to a fresh
            :class:`RetryPolicy`).
        observer: engine event hook (defaults to the no-op observer).
        attempt: override for the single-attempt body — the engine's
            serial path injects its windowed checkpointed execution
            here; the default builds the protocol and simulates the
            whole trace in one shot.
    """
    if retry is None:
        retry = RetryPolicy()
    if observer is None:
        observer = NULL_OBSERVER
    if attempt is None:

        def attempt() -> Any:
            protocol = build_protocol_for_cell(simulator, task.spec, task.trace)
            result = simulator.run(task.trace, protocol, trace_name=task.trace_name)
            result.scheme = task.scheme_key
            return result

    start = time.monotonic()
    result, error, attempts = run_with_retry(attempt, retry, observer, task)
    duration = time.monotonic() - start
    if error is None:
        outcome = CellOutcome(
            task=task,
            status="ok",
            result=result,
            attempts=attempts,
            duration_s=duration,
        )
    else:
        outcome = CellOutcome(
            task=task,
            status="error",
            category=type(error).__name__,
            message=str(error),
            attempts=attempts,
            error=error,
            duration_s=duration,
        )
    observer.cell_finished(task, outcome)
    return outcome


def execute_cell(payload: dict[str, Any]) -> dict[str, Any]:
    """Run one cell to a terminal outcome; never raises (worker entry point).

    Module-level and picklable: this is what pool workers invoke.  The
    payload carries the simulator, the cell, and the retry policy; the
    return value is either ``{"status": "ok", "result": <json>,
    "attempts": n}`` or ``{"status": "error", "category": ...,
    "message": ..., "attempts": n}`` — the same outcome shape the
    checkpoint manifest records.
    """
    simulator = payload["simulator"]
    spec = payload["spec"]
    key = payload["key"]
    trace = payload["trace"]
    retry = payload["retry"]
    result_json, error, attempts = run_with_retry(
        lambda: _run_one_attempt(simulator, spec, key, trace), retry
    )
    if error is None:
        return {"status": "ok", "result": result_json, "attempts": attempts}
    return {
        "status": "error",
        "category": type(error).__name__,
        "message": str(error),
        "attempts": attempts,
    }


def _picklable_retry(retry: RetryPolicy) -> RetryPolicy:
    """The retry policy with any unpicklable sleep hook made shippable.

    Tests inject counting lambdas as ``sleep``; those cannot cross a
    process boundary, so workers fall back to the real ``time.sleep``
    with the same delay schedule.
    """
    try:
        pickle.dumps(retry)
        return retry
    except Exception:
        return replace(retry, sleep=time.sleep)


@dataclass
class InlineBackend:
    """Runs sweep cells sequentially in the current process.

    The degenerate backend: same interface as
    :class:`ProcessPoolBackend`, same outcome payloads, no pool.  Used
    when ``jobs == 1`` and by tests that want pool-free determinism.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def run(
        self,
        simulator: Simulator,
        cells: Sequence[Any],
        on_complete: Callable[[int, dict[str, Any]], None] | None = None,
        *,
        observer: EngineObserver | None = None,
    ) -> dict[int, dict[str, Any]]:
        """Execute every cell in order; returns ``{cell index: payload}``."""
        outcomes: dict[int, dict[str, Any]] = {}
        for index, cell in enumerate(cells):
            task = _as_task(cell, index)
            outcome = run_cell(simulator, task, retry=self.retry, observer=observer)
            payload = outcome.to_payload()
            outcomes[index] = payload
            if on_complete is not None:
                on_complete(index, payload)
        return outcomes


@dataclass
class ProcessPoolBackend:
    """Runs sweep cells across a process pool, containing every failure.

    Args:
        jobs: worker process count (>= 1; 1 still uses a pool of one,
            callers that want true serial execution pick
            :class:`InlineBackend`).
        retry: per-cell transient-failure policy, applied *inside* each
            worker.
    """

    jobs: int
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")

    def run(
        self,
        simulator: Simulator,
        cells: Sequence[Any],
        on_complete: Callable[[int, dict[str, Any]], None] | None = None,
        *,
        observer: EngineObserver | None = None,
    ) -> dict[int, dict[str, Any]]:
        """Execute every cell; returns ``{cell index: outcome payload}``.

        Args:
            simulator: the configured simulator (pickled to workers).
            cells: :class:`CellTask`\\ s (or legacy ``(spec, key,
                trace)`` triples) in sweep order.
            on_complete: called with ``(cell index, outcome payload)``
                as each cell finishes, in completion order — used for
                incremental checkpoint-manifest writes.
            observer: receives ``cell_finished`` parent-side per cell.
        """
        outcomes: dict[int, dict[str, Any]] = {}
        if not cells:
            return outcomes
        retry = _picklable_retry(self.retry)
        if observer is None:
            observer = NULL_OBSERVER
        tasks = [_as_task(cell, index) for index, cell in enumerate(cells)]

        def finish(index: int, payload: dict[str, Any]) -> None:
            outcomes[index] = payload
            observer.cell_finished(
                tasks[index], CellOutcome.from_payload(tasks[index], payload)
            )
            if on_complete is not None:
                on_complete(index, payload)

        remote: list[tuple[int, dict[str, Any]]] = []
        local: list[tuple[int, dict[str, Any]]] = []
        for index, task in enumerate(tasks):
            payload = {
                "simulator": simulator,
                "spec": task.spec,
                "key": task.scheme_key,
                "trace": task.trace,
                "retry": retry,
            }
            try:
                pickle.dumps(payload)
            except Exception:
                local.append((index, payload))
            else:
                remote.append((index, payload))

        if remote:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(execute_cell, payload): (index, payload)
                    for index, payload in remote
                }
                for future in as_completed(futures):
                    index, payload = futures[future]
                    try:
                        outcome = future.result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception:
                        # The worker process died (or the pool broke):
                        # re-run this cell in the parent, where the
                        # ordinary containment semantics apply.
                        outcome = execute_cell(payload)
                    finish(index, outcome)

        for index, payload in local:
            finish(index, execute_cell(payload))
        return outcomes


def backend_for(jobs: int, retry: RetryPolicy) -> InlineBackend | ProcessPoolBackend:
    """Select the execution backend for a worker count."""
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return InlineBackend(retry=retry)
    return ProcessPoolBackend(jobs=jobs, retry=retry)
