"""Engine instrumentation: one observer protocol for every layer.

Before the engine existed, each execution stack kept its own ad-hoc
progress/metrics plumbing — the serial runner had a ``progress``
callback, the scheduler a hand-rolled counter dict behind a lock, the
CLI printed its own lines.  :class:`EngineObserver` replaces all of
them: the engine (and its backends) emit a small set of well-defined
events — cell start / retry / finish, cache hit / miss — and every
consumer (the service ``/stats`` endpoint, ``repro run --progress``,
tests) reads the same instrumentation.

Observers must be cheap and must not raise: an event hook fires on the
hot path of a sweep.  :class:`EngineMetrics` is the standard thread-safe
counter implementation; :class:`ObserverGroup` fans events out to
several observers; :class:`ProgressObserver` adapts the legacy
``progress(scheme_key, trace_name)`` callback onto ``cell_started``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable


class EngineObserver:
    """No-op base class for engine event hooks.

    Subclass and override the events you care about.  Events fire
    in-process only: a :class:`~repro.engine.backends.ProcessPoolBackend`
    reports ``cell_finished`` from the parent as outcomes arrive, but
    per-attempt ``cell_retry`` events inside pool workers are not
    observable (the worker reports its final attempt count instead).
    """

    def plan_started(self, plan: Any) -> None:
        """A plan is about to execute (after checkpoint restore)."""

    def cell_started(self, task: Any) -> None:
        """A pending cell is about to run (or be dispatched)."""

    def cell_retry(
        self, task: Any, failed_attempts: int, error: BaseException, delay: float
    ) -> None:
        """A transient failure is being retried after *delay* seconds."""

    def cell_finished(self, task: Any, outcome: Any) -> None:
        """A cell reached a terminal outcome (ok or contained error)."""

    def cache_hit(self, task: Any) -> None:
        """A cell was served from the content-addressed result cache."""

    def cache_miss(self, task: Any) -> None:
        """A cell's cache lookup came back empty; it will simulate."""

    def plan_finished(self, plan: Any, result: Any) -> None:
        """Every cell of the plan reached a terminal outcome."""


#: The shared no-op instance used when no observer is configured.
NULL_OBSERVER = EngineObserver()


class ObserverGroup(EngineObserver):
    """Fans every event out to each member observer, in order."""

    def __init__(self, observers: Iterable[EngineObserver]) -> None:
        self.observers = list(observers)

    def plan_started(self, plan):
        for observer in self.observers:
            observer.plan_started(plan)

    def cell_started(self, task):
        for observer in self.observers:
            observer.cell_started(task)

    def cell_retry(self, task, failed_attempts, error, delay):
        for observer in self.observers:
            observer.cell_retry(task, failed_attempts, error, delay)

    def cell_finished(self, task, outcome):
        for observer in self.observers:
            observer.cell_finished(task, outcome)

    def cache_hit(self, task):
        for observer in self.observers:
            observer.cache_hit(task)

    def cache_miss(self, task):
        for observer in self.observers:
            observer.cache_miss(task)

    def plan_finished(self, plan, result):
        for observer in self.observers:
            observer.plan_finished(plan, result)


class EngineMetrics(EngineObserver):
    """Thread-safe counters fed by engine events.

    The canonical counter names (all default to 0 in snapshots):

    * ``cells_started`` — cells handed to an execution unit;
    * ``cells_ok`` / ``cells_failed`` — terminal outcomes;
    * ``cell_retries`` — in-process transient-failure retries;
    * ``cache_hits`` / ``cache_misses`` — engine-level result-cache
      lookups;
    * ``sim_seconds`` — accumulated wall-clock time of finished cells
      (float; in-process execution only).

    Layers may also :meth:`bump` their own counters (the scheduler adds
    ``cells_cache``, ``cells_coalesced``, ``cells_checkpoint`` for cells
    that never reach the engine's compute path); they share the same
    lock and appear in the same :meth:`snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}

    def bump(self, name: str, amount: float = 1) -> None:
        """Add *amount* to the named counter (thread-safe)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> float:
        """The current value of one counter (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, float]:
        """A consistent copy of every counter."""
        with self._lock:
            return dict(self._counters)

    # -- events --------------------------------------------------------

    def cell_started(self, task):
        self.bump("cells_started")

    def cell_retry(self, task, failed_attempts, error, delay):
        self.bump("cell_retries")

    def cell_finished(self, task, outcome):
        status = getattr(outcome, "status", None)
        self.bump("cells_ok" if status == "ok" else "cells_failed")
        duration = getattr(outcome, "duration_s", 0.0) or 0.0
        if duration:
            self.bump("sim_seconds", duration)

    def cache_hit(self, task):
        self.bump("cache_hits")

    def cache_miss(self, task):
        self.bump("cache_misses")


class ProgressObserver(EngineObserver):
    """Adapts the legacy ``progress(scheme_key, trace_name)`` callback.

    The serial engine announces every pending cell (including ones that
    will be served by the result cache) just before processing it; the
    pooled engine announces the batch of to-be-computed cells before
    dispatch — exactly the contract the pre-engine runners had.
    """

    def __init__(self, progress: Callable[[str, str], None]) -> None:
        self.progress = progress

    def cell_started(self, task):
        self.progress(task.scheme_key, task.trace_name)
