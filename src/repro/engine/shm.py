"""Shared-memory trace arena: pickle-free trace transport for the pool.

The pooled backend's dominant cost used to be serialization: every
cell dispatch re-pickled its whole trace (hundreds of kilobytes) into
the worker pipe, so adding workers added IPC instead of throughput.
A :class:`TraceArena` removes the trace from the dispatch path
entirely.  The parent packs every :class:`~repro.trace.columnar
.ColumnarTrace` column of a sweep into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment, workers
attach once, and each cell descriptor then names its trace by index —
a few bytes on the pipe regardless of trace length.

Worker-side reconstruction is zero-copy: the ``Q`` columns come back
as ``memoryview.cast("Q")`` views over the mapped segment and the byte
columns as plain ``memoryview`` slices (:class:`ColumnarTrace` accepts
both).  Only the simulator's per-sharer data view — a compressed copy
of the data references — is materialized, once per (worker, trace).

Lifecycle:

* the parent creates the segment, keeps it mapped for the sweep, and
  ``close()``/``unlink()``s it when the sweep ends.  On Linux an
  unlinked segment stays readable for workers that already mapped it,
  so a warm pool can finish in-flight batches safely;
* workers attach lazily by segment name and memoize the attachment
  (see :func:`attach_arena`); attaching a *different* arena drops the
  previous one, so a long-lived worker holds at most one sweep's
  segment;
* CPython < 3.13 registers a segment with the resource tracker even on
  attach, which would make the tracker unlink a segment it does not
  own when the worker exits — :func:`attach_arena` suppresses that
  registration to restore create-side-owns semantics.

When ``/dev/shm`` is unavailable (or segment creation fails for any
reason), :meth:`TraceArena.create` returns None and the backend falls
back to pickling traces — the arena is an optimization, not a
requirement.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.trace.columnar import ColumnarTrace

_WORD = 8  # array('Q') item size on every supported platform


def _column_bytes(column: Any) -> bytes | memoryview:
    """The raw little-endian buffer behind one trace column."""
    if isinstance(column, memoryview):
        return column.cast("B") if column.format != "B" else column
    if isinstance(column, (bytes, bytearray)):
        return column
    return memoryview(column).cast("B")  # array('Q')


class TraceArena:
    """One sweep's ColumnarTraces packed into a shared-memory segment.

    Build with :meth:`create`; ship :attr:`descriptor` (a small
    picklable dict) to workers; workers rebuild traces with
    :func:`attach_arena` / :meth:`trace_from`.  The creating process
    must call :meth:`dispose` when the sweep is done.
    """

    def __init__(self, shm: Any, descriptor: dict[str, Any], owner: bool) -> None:
        self.shm = shm
        self.descriptor = descriptor
        self._owner = owner
        self._traces: dict[int, ColumnarTrace] = {}

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, traces: Sequence[ColumnarTrace]) -> "TraceArena | None":
        """Pack *traces* into a fresh segment; None if shm is unusable.

        Column layout is one contiguous run per trace — cpu, pid,
        address (8-byte words), then type_code and flags (bytes) — with
        word alignment preserved by packing all word columns first.
        """
        from multiprocessing import shared_memory

        entries: list[dict[str, Any]] = []
        offset = 0
        chunks: list[tuple[int, bytes | memoryview]] = []
        for trace in traces:
            n = len(trace)
            entry: dict[str, Any] = {
                "name": trace.name,
                "description": trace.description,
                "length": n,
                "columns": {},
            }
            # Word columns first keeps every 'Q' cast 8-byte aligned.
            for column_name in ("cpu", "pid", "address"):
                buffer = _column_bytes(getattr(trace, column_name))
                entry["columns"][column_name] = offset
                chunks.append((offset, buffer))
                offset += n * _WORD
            for column_name in ("type_code", "flags"):
                buffer = _column_bytes(getattr(trace, column_name))
                entry["columns"][column_name] = offset
                chunks.append((offset, buffer))
                offset += n
            offset = (offset + _WORD - 1) & ~(_WORD - 1)
            entries.append(entry)

        try:
            shm = shared_memory.SharedMemory(create=True, size=max(1, offset))
        except Exception:
            return None  # no /dev/shm (or too small): fall back to pickle
        try:
            buf = shm.buf
            for chunk_offset, chunk in chunks:
                buf[chunk_offset : chunk_offset + len(chunk)] = chunk
        except Exception:
            shm.close()
            try:
                shm.unlink()
            except Exception:
                pass
            return None
        descriptor = {"segment": shm.name, "traces": entries}
        return cls(shm, descriptor, owner=True)

    def dispose(self) -> None:
        """Release the mapping and (if owner) remove the segment name."""
        self._traces.clear()
        try:
            self.shm.close()
        except BufferError:
            # A live trace view still points into the buffer somewhere;
            # unlink below still removes the name, and the mapping goes
            # away with the process.
            pass
        except Exception:
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def trace_from(self, index: int) -> ColumnarTrace:
        """The *index*-th trace, reconstructed zero-copy (memoized)."""
        trace = self._traces.get(index)
        if trace is None:
            entry = self.descriptor["traces"][index]
            n = entry["length"]
            columns = entry["columns"]
            buf = memoryview(self.shm.buf)

            def words(offset: int) -> memoryview:
                return buf[offset : offset + n * _WORD].cast("Q")

            def raw(offset: int) -> memoryview:
                return buf[offset : offset + n]

            trace = ColumnarTrace(
                entry["name"],
                words(columns["cpu"]),
                words(columns["pid"]),
                raw(columns["type_code"]),
                words(columns["address"]),
                raw(columns["flags"]),
                entry["description"],
            )
            self._traces[index] = trace
        return trace


#: The worker's current attachment: at most one arena at a time.
_ATTACHED: dict[str, TraceArena] = {}


def attach_arena(descriptor: dict[str, Any]) -> TraceArena:
    """Attach (or reuse) the segment named by *descriptor* in this process.

    Memoized per segment name; attaching a different segment disposes
    the previous attachment first, so worker memory stays bounded at
    one sweep's traces.  Raises whatever ``SharedMemory`` raises when
    the segment no longer exists — callers treat that as a dead cell
    input and fall back.
    """
    name = descriptor["segment"]
    arena = _ATTACHED.get(name)
    if arena is not None:
        return arena
    for stale in list(_ATTACHED):
        _ATTACHED.pop(stale).dispose()

    from multiprocessing import resource_tracker, shared_memory

    # CPython < 3.13 registers even non-owning attachments with the
    # resource tracker, which would unlink the parent's segment when
    # this worker exits.  Unregistering after the fact is racy when
    # several pool workers attach the same segment (the shared tracker
    # process sees more removes than adds and logs KeyErrors), so
    # suppress the registration itself for the duration of the attach:
    # the creator owns the name.
    original_register = resource_tracker.register

    def register_except_shm(name_: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original_register(name_, rtype)

    resource_tracker.register = register_except_shm
    try:
        shm = shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original_register
    arena = TraceArena(shm, descriptor, owner=False)
    _ATTACHED[name] = arena
    return arena


def detach_all() -> None:
    """Drop every memoized attachment (tests and worker teardown)."""
    for name in list(_ATTACHED):
        _ATTACHED.pop(name).dispose()
