"""The engine: one instrumented executor behind every entry point.

:class:`Engine` runs an :class:`~repro.engine.plan.ExecutionPlan` to an
:class:`~repro.core.experiment.ExperimentResult`, composing the policy
middleware (retry, checkpoint, result cache) around the single
:func:`~repro.engine.backends.run_cell` unit and fanning cells out
through a configured backend.  ``runner.resilient``, the ``repro run``
CLI, and the simulation service all delegate here — there is exactly
one retry loop, one checkpoint-manifest write site, and one cache
lookup path in the execution stack, and they all emit the same
:class:`~repro.engine.observer.EngineObserver` events.

Behavioral contract (inherited bit-for-bit from the pre-engine stacks):

* results are assembled in sweep order (scheme-major) regardless of
  completion order, so serial, pooled, and resumed runs are
  indistinguishable;
* permanent failures are contained as
  :class:`~repro.core.experiment.CellFailure` records unless ``strict``
  — strict serial runs re-raise the *original* exception object, strict
  pooled runs rehydrate the first failure in sweep order;
* checkpoint manifests written before the engine existed resume
  cleanly (same fingerprint, same JSON shapes), and mid-cell windowed
  snapshots remain a serial-only refinement;
* ``KeyboardInterrupt``/``SystemExit`` always propagate so an
  interrupted checkpointed run can resume later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.experiment import CellFailure, ExperimentResult
from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import SimulationContext
from repro.errors import CheckpointError, ConfigurationError, ReproError
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import (
    CheckpointManager,
    result_from_json,
    result_to_json,
)

from repro.engine.backends import ProcessPoolBackend, run_cell
from repro.engine.observer import (
    NULL_OBSERVER,
    EngineObserver,
    ObserverGroup,
    ProgressObserver,
)
from repro.engine.plan import (
    CellTask,
    ExecutionPlan,
    build_protocol_for_cell,
)
from repro.engine.policies import (
    DEFAULT_CHECKPOINT_EVERY,
    ManifestRecorder,
    RetryPolicy,
)


def rehydrate_failure(payload: dict[str, Any]) -> Exception:
    """Reconstruct a worker-reported failure as a raisable exception.

    Used by ``strict`` pooled sweeps: the original exception object
    never crosses the process boundary, so the category name is mapped
    back to a class from :mod:`repro.errors` (or builtins), falling back
    to :class:`~repro.errors.ReproError`.
    """
    import builtins

    from repro import errors as errors_module

    category = payload.get("category", "ReproError")
    cls = getattr(errors_module, category, None) or getattr(builtins, category, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = ReproError
    try:
        return cls(payload.get("message", ""))
    except Exception:
        return ReproError(f"{category}: {payload.get('message', '')}")


@dataclass
class Engine:
    """Executes plans under a composable policy stack.

    Args:
        retry: transient-failure retry policy (one per-cell loop, shared
            by every backend).
        strict: re-raise the first permanent cell failure instead of
            recording it and continuing.
        checkpoint: attach a checkpoint directory to snapshot progress.
        checkpoint_every: records between mid-cell snapshots (serial
            execution only; pooled resume is cell-granular).
        resume: continue from the checkpoint directory's manifest
            instead of starting over (requires ``checkpoint``).
        jobs: worker processes; ``1`` runs cells serially in-process,
            ``> 1`` fans independent cells across a
            :class:`~repro.engine.backends.ProcessPoolBackend`.
        batch: cells per pool dispatch (pooled execution only); None
            auto-sizes from cells-per-worker.
        result_cache: on-disk content-addressed cache; cells whose
            (trace fingerprint, scheme, options, simulator config) key
            is already cached are skipped entirely.
        observer: engine event hook; compose several with
            :class:`~repro.engine.observer.ObserverGroup`.
        backend: explicit backend override for pooled execution (must
            expose ``run(simulator, cells, on_complete, observer=...)``).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    strict: bool = False
    checkpoint: CheckpointManager | None = None
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY
    resume: bool = False
    jobs: int = 1
    batch: int | None = None
    result_cache: ResultCache | None = None
    observer: EngineObserver = field(default_factory=lambda: NULL_OBSERVER)
    backend: Any = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.resume and self.checkpoint is None:
            raise ConfigurationError("resume requires a checkpoint directory")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")

    # ------------------------------------------------------------------

    def run(
        self,
        plan: ExecutionPlan,
        progress: Callable[[str, str], None] | None = None,
    ) -> ExperimentResult:
        """Run every cell of *plan*, containing failures; partial results.

        Args:
            plan: the normalized sweep to execute.
            progress: optional legacy callback invoked with (scheme key,
                trace name) before each cell — adapted onto the observer
                protocol via
                :class:`~repro.engine.observer.ProgressObserver`.
        """
        plan.validate()
        observer = self._observer_with(progress)

        outcome = ExperimentResult()
        recorder = self._prepare_checkpoint(plan, outcome)
        observer.plan_started(plan)

        # Cells already restored from the checkpoint manifest are done.
        cells = [
            task
            for task in plan.cells()
            if task.trace_name not in outcome.results.get(task.scheme_key, {})
        ]

        if self.jobs > 1 or self.backend is not None:
            self._run_pooled(plan, cells, outcome, recorder, observer)
        else:
            for task in cells:
                observer.cell_started(task)
                self._run_cell_guarded(plan, task, outcome, recorder, observer)

        observer.plan_finished(plan, outcome)
        return outcome

    def _observer_with(
        self, progress: Callable[[str, str], None] | None
    ) -> EngineObserver:
        if progress is None:
            return self.observer
        if self.observer is NULL_OBSERVER:
            return ProgressObserver(progress)
        return ObserverGroup([self.observer, ProgressObserver(progress)])

    # ------------------------------------------------------------------
    # Result cache middleware
    # ------------------------------------------------------------------

    def _cache_lookup(
        self, plan: ExecutionPlan, task: CellTask, observer: EngineObserver
    ) -> SimulationResult | None:
        if self.result_cache is None:
            return None
        cache_id = plan.cache_id(task.spec, task.trace)
        if cache_id is None:
            return None
        result = self.result_cache.get(cache_id)
        if result is None:
            observer.cache_miss(task)
            return None
        observer.cache_hit(task)
        # Entries are content-addressed; report under this sweep's
        # labels regardless of how the storing sweep named things.
        result.scheme = task.scheme_key
        result.trace_name = task.trace_name
        return result

    def _cache_store(
        self, plan: ExecutionPlan, task: CellTask, result: SimulationResult
    ) -> None:
        if self.result_cache is None:
            return
        cache_id = plan.cache_id(task.spec, task.trace)
        if cache_id is not None:
            self.result_cache.put(cache_id, result)

    # ------------------------------------------------------------------
    # Checkpoint middleware
    # ------------------------------------------------------------------

    def _prepare_checkpoint(
        self, plan: ExecutionPlan, outcome: ExperimentResult
    ) -> ManifestRecorder | None:
        if self.checkpoint is None:
            return None
        fingerprint = plan.fingerprint()
        if self.resume and self.checkpoint.exists():
            manifest = self.checkpoint.load_manifest(fingerprint)
            # Restore in sweep order (the manifest JSON is key-sorted) so
            # a resumed result is indistinguishable from a fresh one.
            for key in plan.scheme_keys():
                per_trace = manifest["completed"].get(key, {})
                for trace in plan.traces:
                    if trace.name in per_trace:
                        outcome.results.setdefault(key, {})[trace.name] = (
                            result_from_json(per_trace[trace.name])
                        )
            # Previously failed cells are retried on resume; drop them.
            manifest["failures"] = []
            return ManifestRecorder(self.checkpoint, manifest)
        manifest = self.checkpoint.new_manifest(fingerprint)
        self.checkpoint.clear_cell_state()
        recorder = ManifestRecorder(self.checkpoint, manifest)
        recorder.save()
        return recorder

    # ------------------------------------------------------------------
    # Serial execution
    # ------------------------------------------------------------------

    def _run_cell_guarded(
        self,
        plan: ExecutionPlan,
        task: CellTask,
        outcome: ExperimentResult,
        recorder: ManifestRecorder | None,
        observer: EngineObserver,
    ) -> None:
        cached = self._cache_lookup(plan, task, observer)
        if cached is not None:
            outcome.results.setdefault(task.scheme_key, {})[task.trace_name] = cached
            if recorder is not None:
                recorder.record_completed(
                    task.scheme_key,
                    task.trace_name,
                    result_to_json(cached),
                    clear_cell_state=True,
                )
            return

        attempt = None
        if self.checkpoint is not None:
            attempt = lambda: self._run_cell_checkpointed(plan, task)  # noqa: E731
        cell = run_cell(
            plan.simulator, task, retry=self.retry, observer=observer, attempt=attempt
        )

        if cell.ok:
            outcome.results.setdefault(task.scheme_key, {})[task.trace_name] = (
                cell.result
            )
            self._cache_store(plan, task, cell.result)
            if recorder is not None:
                recorder.record_completed(
                    task.scheme_key,
                    task.trace_name,
                    cell.json_result(),
                    clear_cell_state=True,
                )
            return

        if self.strict:
            raise cell.error
        failure = CellFailure(
            scheme=task.scheme_key,
            trace_name=task.trace_name,
            category=cell.category,
            message=cell.message,
            attempts=cell.attempts,
        )
        outcome.record_failure(failure)
        if recorder is not None:
            recorder.record_failure(failure, clear_cell_state=True)

    def _run_cell_checkpointed(
        self, plan: ExecutionPlan, task: CellTask
    ) -> SimulationResult:
        """Run one cell window by window, snapshotting after each window.

        Always restarts from the on-disk snapshot (never in-memory
        state), so a retry after a mid-window fault resumes from the
        last consistent snapshot rather than from a tainted protocol.
        """
        simulator = plan.simulator
        key = task.scheme_key
        trace = task.trace
        state = self.checkpoint.load_cell_state()
        if (
            state is not None
            and state.get("scheme") == key
            and state.get("trace_name") == task.trace_name
        ):
            protocol = state["protocol"]
            context: SimulationContext = state["context"]
            accumulated: SimulationResult | None = state["accumulated"]
            position: int = state["records_done"]
            if context.records_done != position:
                raise CheckpointError(
                    f"cell snapshot inconsistent: context processed "
                    f"{context.records_done} records but snapshot claims {position}"
                )
            chunk_position = state.get("chunk_position")
            if chunk_position is not None and hasattr(trace, "position_of"):
                # Chunked traces also record (chunk index, intra-chunk
                # offset): resume verifies the mapping so a snapshot
                # taken against a re-chunked or edited .ctrc file can
                # never silently resume at the wrong byte.
                expected = trace.position_of(position)
                if tuple(chunk_position) != expected:
                    raise CheckpointError(
                        f"cell snapshot inconsistent: record {position} maps "
                        f"to chunk position {expected} in {trace.path} but "
                        f"snapshot claims {tuple(chunk_position)}"
                    )
        else:
            protocol = build_protocol_for_cell(simulator, task.spec, trace)
            context = SimulationContext()
            accumulated = None
            position = 0

        records = trace.records
        total = len(trace)
        while position < total:
            segment = records[position : position + self.checkpoint_every]
            segment_result = simulator.run(
                segment, protocol, trace_name=task.trace_name, context=context
            )
            accumulated = (
                segment_result
                if accumulated is None
                else merge_results([accumulated, segment_result], name=task.trace_name)
            )
            position += len(segment)
            snapshot = {
                "scheme": key,
                "trace_name": task.trace_name,
                "records_done": position,
                "protocol": protocol,
                "context": context,
                "accumulated": accumulated,
            }
            if hasattr(trace, "position_of"):
                snapshot["chunk_position"] = trace.position_of(position)
            self.checkpoint.save_cell_state(snapshot)
            release = getattr(trace, "release_consumed", None)
            if release is not None:
                # Chunked traces drop consumed pages from RSS so the
                # windowed path stays bounded like the streaming one.
                release(position)

        if accumulated is None:  # empty trace: still a valid (zero) result
            accumulated = SimulationResult(scheme=key, trace_name=task.trace_name)
        accumulated.scheme = key
        return accumulated

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------

    def _run_pooled(
        self,
        plan: ExecutionPlan,
        cells: list[CellTask],
        outcome: ExperimentResult,
        recorder: ManifestRecorder | None,
        observer: EngineObserver,
    ) -> None:
        """Fan the pending cells across the configured backend.

        Cache hits are resolved in the parent before dispatch; computed
        results stream back as JSON payloads and are checkpointed as
        they complete, but ``outcome`` is assembled in sweep order so a
        pooled run is indistinguishable from a serial one.
        """
        backend = self.backend or ProcessPoolBackend(
            jobs=self.jobs, retry=self.retry, batch=self.batch
        )
        if recorder is not None:
            # Mid-cell snapshots are serial-only; a stale one (e.g. from
            # an interrupted serial run) cannot seed a pool worker.
            self.checkpoint.clear_cell_state()

        completed: dict[int, SimulationResult] = {}
        failures: dict[int, dict[str, Any]] = {}
        cache_hits: set[int] = set()
        pending: list[int] = []
        for position, task in enumerate(cells):
            cached = self._cache_lookup(plan, task, observer)
            if cached is not None:
                completed[position] = cached
                cache_hits.add(position)
            else:
                pending.append(position)

        if pending:
            for position in pending:
                observer.cell_started(cells[position])

            def on_complete(slot: int, payload: dict[str, Any]) -> None:
                if recorder is None or payload["status"] != "ok":
                    return
                task = cells[pending[slot]]
                recorder.record_completed(
                    task.scheme_key, task.trace_name, payload["result"]
                )

            outcomes = backend.run(
                plan.simulator,
                [cells[position] for position in pending],
                on_complete=on_complete,
                observer=observer,
            )
            for slot, payload in outcomes.items():
                position = pending[slot]
                if payload["status"] == "ok":
                    completed[position] = result_from_json(payload["result"])
                else:
                    failures[position] = payload

        for position, task in enumerate(cells):
            if position in completed:
                result = completed[position]
                outcome.results.setdefault(task.scheme_key, {})[task.trace_name] = (
                    result
                )
                if position not in cache_hits:
                    self._cache_store(plan, task, result)
                if recorder is not None:
                    recorder.record_completed(
                        task.scheme_key,
                        task.trace_name,
                        result_to_json(result),
                        flush=False,
                    )
                continue
            payload = failures[position]
            if self.strict:
                raise rehydrate_failure(payload)
            failure = CellFailure(
                scheme=task.scheme_key,
                trace_name=task.trace_name,
                category=payload["category"],
                message=payload["message"],
                attempts=payload["attempts"],
            )
            outcome.record_failure(failure)
            if recorder is not None:
                recorder.record_failure(failure, flush=False)
        if recorder is not None:
            recorder.save()
