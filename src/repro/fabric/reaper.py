"""The reaper: puts a SIGKILL'd worker's cells back to work.

A worker that dies holding a lease tells nobody — its cell would stay
``leased`` forever.  The reaper closes that hole: every interval it
sweeps for leases whose deadline has passed and requeues them
(:meth:`~repro.fabric.queue.DurableCellQueue.reap`), so survivors pick
the cells up on their next poll.  A cell that has burned through its
attempt budget dead-letters instead of crash-looping the fleet.

Reaping is crash-safe in itself: the transitions are guarded by cell
state inside one transaction, so any number of reapers — a dedicated
thread per worker process, the scheduler's wait loop, an operator
running ``repro dlq`` — can sweep concurrently without double-counting
a single expiry.  The reaper dying is therefore a non-event: the next
sweep, wherever it runs, finds the same expired leases.
"""

from __future__ import annotations

import threading

from repro.fabric.queue import DurableCellQueue

#: Default seconds between expiry sweeps.
DEFAULT_INTERVAL_S = 1.0


class Reaper(threading.Thread):
    """A daemon thread sweeping one fabric database for expired leases.

    Args:
        queue: the durable queue to sweep.
        interval_s: seconds between sweeps (a fraction of the fleet's
            lease duration, so a dead worker's cells wait at most one
            lease plus one interval).
        stop: external stop event; one is created when omitted.
    """

    def __init__(
        self,
        queue: DurableCellQueue,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        stop: threading.Event | None = None,
    ) -> None:
        super().__init__(name="repro-fabric-reaper", daemon=True)
        self.queue = queue
        self.interval_s = interval_s
        self._halt = stop if stop is not None else threading.Event()
        #: (cell_id, new_state) pairs this reaper has personally swept.
        self.reaped: list[tuple[int, str]] = []

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            try:
                self.reaped.extend(self.queue.reap())
            except Exception:
                # A transient db error (lock storm, disk hiccup) must
                # not kill the reaper; the next sweep retries.  Another
                # process's reap picks up anything this one missed.
                continue

    def stop(self, timeout: float | None = 5.0) -> None:
        """Signal the thread to exit and join it."""
        self._halt.set()
        if self.is_alive():
            self.join(timeout=timeout)
