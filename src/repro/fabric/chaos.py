"""The chaos harness: SIGKILL a fleet member mid-cell, prove nothing broke.

The scenario (ISSUE acceptance criterion, runnable as ``repro chaos``
or ``make chaos``):

1. run the sweep **serially** through the engine — the ground truth;
2. submit the same sweep to a fresh fabric database and start N real
   ``repro work`` processes on it;
3. one worker — chosen by a seeded
   :class:`~repro.runner.faults.FaultInjector` kill plan — carries
   ``REPRO_CHAOS_KILL`` in its environment and SIGKILLs *itself* after
   an exact number of completed data references inside an exact lease
   (:class:`~repro.runner.faults.ProcessKiller`), i.e. genuinely
   mid-cell, heartbeat thread and all;
4. the survivors reap the orphaned lease, re-run the cell, and drain
   the queue;
5. the harness then asserts, from the queue's own accounting:

   * every cell is ``done`` and the assembled results are
     **bit-for-bit identical** (canonical sorted JSON) to the serial
     run;
   * ``reassignments`` is exactly the number of kills (no cell was
     lost, none was requeued spuriously);
   * ``duplicate_completions`` is zero (idempotent settlement held);
   * nothing dead-lettered (the kill is one burned attempt, not an
     exhausted budget).

Everything is deterministic under ``--seed``: the same seed picks the
same victim, the same lease, the same reference count.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping

from repro.core.simulator import Simulator
from repro.engine.core import Engine
from repro.engine.plan import ExecutionPlan
from repro.errors import ConfigurationError, ServiceError
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import result_to_json
from repro.runner.faults import FaultInjector, ProcessKiller
from repro.service.spec import JobSpec, parse_job_spec

from repro.fabric.queue import DurableCellQueue

#: Environment variable arming a worker's self-kill: ``"<lease>:<refs>"``.
ENV_KILL = "REPRO_CHAOS_KILL"

#: The default chaos sweep: enough cells that 3 workers all get work.
DEFAULT_SPEC = {
    "schemes": ["dir0b", "dir1nb", "dirnnb", "wti", "dragon", "berkeley"],
    "traces": [{"workload": "pops", "length": 4000, "seed": 7}],
}


def hook_from_env(
    environ: Mapping[str, str] | None = None,
):
    """The worker protocol hook armed by :data:`ENV_KILL`, or ``None``.

    The variable's value is ``"<lease index>:<refs>"``: on this
    worker's *lease index*-th lease (0-based), wrap the protocol so the
    process SIGKILLs itself after *refs* completed data references.
    ``repro work`` installs this hook automatically, which is how the
    harness reaches inside a real worker process deterministically.
    """
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_KILL)
    if not raw:
        return None
    try:
        lease_index, refs = (int(part) for part in raw.split(":"))
    except ValueError as exc:
        raise ConfigurationError(
            f"{ENV_KILL} must be '<lease>:<refs>', got {raw!r}"
        ) from exc

    def hook(worker, cell, protocol):
        if worker.leases - 1 == lease_index:
            return ProcessKiller(protocol, refs)
        return protocol

    return hook


def canonical_digest(results: dict[str, dict[str, Any]]) -> str:
    """Canonical sorted-JSON form of a ``{scheme: {trace: result}}`` grid."""
    return json.dumps(results, sort_keys=True)


def serial_results(spec: JobSpec) -> dict[str, dict[str, Any]]:
    """The ground truth: the sweep run serially through the engine."""
    simulator = Simulator(sharer_key=spec.sharer_key)
    traces = [tspec.build() for tspec in spec.traces]
    plan = ExecutionPlan(
        traces=traces, schemes=list(spec.scheme_specs()), simulator=simulator
    )
    outcome = Engine().run(plan)
    if outcome.failures:
        raise ServiceError(
            f"serial baseline failed: {outcome.failures[0].message}"
        )
    return {
        scheme: {
            name: result_to_json(result) for name, result in per_trace.items()
        }
        for scheme, per_trace in outcome.results.items()
    }


def _spawn_worker(
    *,
    db: Path,
    cache_dir: Path,
    worker_id: str,
    lease_s: float,
    kill: tuple[int, int] | None,
) -> subprocess.Popen:
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    if kill is not None:
        env[ENV_KILL] = f"{kill[0]}:{kill[1]}"
    else:
        env.pop(ENV_KILL, None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "work",
            "--db", str(db),
            "--cache", str(cache_dir),
            "--worker-id", worker_id,
            "--lease", str(lease_s),
            "--poll", "0.05",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def run_chaos(
    *,
    db: str | Path,
    cache_dir: str | Path | None = None,
    spec_payload: dict[str, Any] | None = None,
    workers: int = 3,
    seed: int = 0,
    kill: bool = True,
    kill_worker: int | None = None,
    kill_lease: int = 0,
    kill_refs: int | None = None,
    lease_s: float = 3.0,
    timeout_s: float = 300.0,
) -> dict[str, Any]:
    """Run the kill-a-worker scenario end to end; returns the report.

    Args:
        db: fabric database path (must not already hold the job).
        cache_dir: shared result-cache directory (next to *db* when
            omitted) — the fleet-wide dedup layer under test.
        spec_payload: JSON job spec (default: :data:`DEFAULT_SPEC`).
        workers: fleet size (real ``repro work`` processes).
        seed: seeds the :class:`FaultInjector` that picks the victim
            and the kill reference count.
        kill: run the control scenario instead when False (no victim).
        kill_worker: victim index override (seeded pick when None).
        kill_lease: which of the victim's leases dies (0 = its first
            cell, guaranteeing the kill lands before the queue drains).
        kill_refs: data references completed before the SIGKILL
            (seeded pick when None).
        lease_s: fleet lease duration — kept short so the orphaned
            lease expires and the scenario stays fast.
        timeout_s: overall wall-clock bound.

    Returns:
        A JSON-safe report with ``ok`` plus every individual check.
    """
    db = Path(db)
    cache_dir = Path(cache_dir) if cache_dir is not None else db.parent / "cache"
    spec = parse_job_spec(dict(spec_payload or DEFAULT_SPEC))

    injector = FaultInjector(seed)
    planned_worker, _, planned_refs = injector.kill_plan(workers, max_refs=200)
    victim = kill_worker if kill_worker is not None else planned_worker
    refs = kill_refs if kill_refs is not None else planned_refs

    expected = serial_results(spec)

    queue = DurableCellQueue(db)
    job_id = f"chaos-{seed}"
    if queue.job_state(job_id) is not None:
        raise ConfigurationError(
            f"fabric db {db} already holds job {job_id}; use a fresh db"
        )
    queue.submit(spec, job_id)

    processes: list[subprocess.Popen] = []
    deadline = time.monotonic() + timeout_s
    try:
        for number in range(workers):
            is_victim = kill and number == victim
            processes.append(
                _spawn_worker(
                    db=db,
                    cache_dir=cache_dir,
                    worker_id=f"chaos-w{number}",
                    lease_s=lease_s,
                    kill=(kill_lease, refs) if is_victim else None,
                )
            )
        exit_codes: list[int | None] = [None] * workers
        while time.monotonic() < deadline:
            for number, process in enumerate(processes):
                if exit_codes[number] is None:
                    exit_codes[number] = process.poll()
            if all(code is not None for code in exit_codes):
                break
            time.sleep(0.1)
        else:
            raise ServiceError(
                f"chaos fleet did not drain within {timeout_s}s"
            )
    finally:
        for process in processes:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)

    victim_killed = (
        kill and exit_codes[victim] == -signal.SIGKILL
    )
    stats = queue.stats()
    assembled = queue.assemble(job_id)
    fabric_digest = canonical_digest(assembled["results"])
    serial_digest = canonical_digest(expected)

    expected_reassignments = 1 if kill else 0
    checks = {
        "victim_killed": victim_killed or not kill,
        "job_done": queue.job_state(job_id) == "done",
        "no_failures": not assembled["failures"],
        "digest_match": fabric_digest == serial_digest,
        "reassignments": stats["reassignments"] == expected_reassignments,
        "no_duplicates": stats["duplicate_completions"] == 0,
        "no_dead_letters": stats["dead_letters"] == 0,
        "all_cells_done": stats["cells"]["done"] == spec.cell_count(),
    }
    return {
        "ok": all(checks.values()),
        "checks": checks,
        "kill": {
            "enabled": kill,
            "worker": victim,
            "lease": kill_lease,
            "refs": refs,
            "seed": seed,
        },
        "exit_codes": exit_codes,
        "serial_digest_sha": hashlib.sha256(
            serial_digest.encode("utf-8")
        ).hexdigest(),
        "fabric_digest_sha": hashlib.sha256(
            fabric_digest.encode("utf-8")
        ).hexdigest(),
        "stats": stats,
    }
