"""The fabric worker: lease, simulate, heartbeat, settle, repeat.

One :class:`FabricWorker` is the fleet's unit of compute — a process
(``repro work --db``) or an in-process thread (tests).  Its loop:

1. **lease** the next ready cell (which charges one attempt);
2. **dedup** — if the shared content-addressed
   :class:`~repro.runner.cache.ResultCache` already holds the cell's
   outcome, settle it as a ``cache`` result without simulating.  The
   cache is what makes the never-simulate-twice claim hold *across*
   jobs and fleets, not just within one queue;
3. **simulate** with a heartbeat thread renewing the lease in the
   background, so a slow cell is not mistaken for a dead worker;
4. **settle** idempotently.  If this worker was presumed dead and the
   cell reassigned, the settle simply loses the race and is counted as
   a duplicate *completion* — the reassigned copy found the result in
   the cache at step 2, so no cell is ever *simulated* twice.

Failure routing uses the engine's :class:`~repro.engine.policies
.RetryPolicy` semantics: retryable errors requeue the cell with a
jittered backoff gate (dead-lettering once the attempt budget is
spent); permanent errors settle as a contained ``failed`` outcome, the
fabric analogue of :class:`~repro.core.experiment.CellFailure`.

The ``protocol_hook`` seam exists for the chaos harness
(:mod:`repro.fabric.chaos`): it wraps the freshly built protocol so a
deterministic fault — including SIGKILL of this very process mid-cell —
can be injected at an exact reference count.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
import zlib
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable

from repro.core.simulator import Simulator
from repro.engine.plan import build_protocol_for_cell
from repro.engine.policies import RetryPolicy
from repro.runner.cache import ResultCache, cache_key, trace_fingerprint
from repro.runner.checkpoint import result_to_json
from repro.service.spec import TraceSpec

from repro.fabric.queue import DurableCellQueue, LeasedCell

#: A hook wrapping the protocol of one owned cell before simulation.
ProtocolHook = Callable[["FabricWorker", LeasedCell, Any], Any]


class _Heartbeat(threading.Thread):
    """Renews one cell's lease while its simulation runs."""

    def __init__(
        self,
        queue: DurableCellQueue,
        cell: LeasedCell,
        worker_id: str,
        *,
        lease_s: float,
        interval_s: float,
    ) -> None:
        super().__init__(name=f"repro-fabric-heartbeat-{cell.id}", daemon=True)
        self.queue = queue
        self.cell = cell
        self.worker_id = worker_id
        self.lease_s = lease_s
        self.interval_s = interval_s
        self._halt = threading.Event()
        #: Set when a renewal was refused — the lease was reassigned.
        self.lost = False

    def run(self) -> None:
        while not self._halt.wait(self.interval_s):
            try:
                renewed = self.queue.heartbeat(
                    self.cell.id, self.worker_id, lease_s=self.lease_s
                )
            except Exception:
                continue  # a flaky renewal is retried next beat
            if not renewed:
                self.lost = True
                return

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


class FabricWorker:
    """One fleet member pulling cells from a durable queue.

    Args:
        queue: the shared :class:`DurableCellQueue` (or a db path).
        worker_id: fleet-unique name; generated when omitted.
        result_cache: shared content-addressed result cache (the
            fleet-wide dedup layer); optional.
        retry: failure-classification and backoff policy.  Defaults to
            the engine policy with **full jitter** seeded per worker, so
            a restarted fleet spreads its retries instead of
            thundering-herding the queue — deterministically per
            worker id.
        lease_s: lease duration per claim.
        poll_s: idle sleep between empty polls.
        drain: exit once every cell in the queue is terminal (the
            fleet-of-processes mode); False polls forever (the
            long-lived service mode).
        reap: also sweep expired leases between polls, so a fleet needs
            no dedicated reaper process to make progress.
        protocol_hook: chaos seam; wraps each cell's protocol.
        stop: external stop event (e.g. the service's shutdown signal).
    """

    def __init__(
        self,
        queue: DurableCellQueue | str,
        *,
        worker_id: str | None = None,
        result_cache: ResultCache | None = None,
        retry: RetryPolicy | None = None,
        lease_s: float = 30.0,
        poll_s: float = 0.1,
        drain: bool = True,
        reap: bool = True,
        protocol_hook: ProtocolHook | None = None,
        stop: threading.Event | None = None,
    ) -> None:
        if not isinstance(queue, DurableCellQueue):
            queue = DurableCellQueue(queue)
        self.queue = queue
        self.worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.result_cache = result_cache
        if retry is None:
            retry = RetryPolicy(
                jitter="full",
                jitter_seed=zlib.crc32(self.worker_id.encode("utf-8")),
            )
        elif retry.jitter == "full" and retry.jitter_seed is None:
            retry = replace(
                retry, jitter_seed=zlib.crc32(self.worker_id.encode("utf-8"))
            )
        self.retry = retry
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.drain = drain
        self.reap = reap
        self.protocol_hook = protocol_hook
        self._stop = stop if stop is not None else threading.Event()

        #: Cells settled by this worker, by source ("simulated"/"cache").
        self.settled: dict[str, int] = {"simulated": 0, "cache": 0, "error": 0}
        #: Leases taken so far (the chaos harness indexes kills by this).
        self.leases = 0

        self._traces: dict[str, tuple[Any, str]] = {}
        self._simulators: dict[str, Simulator] = {}

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Ask the loop to exit after the current cell."""
        self._stop.set()

    def run(self, max_cells: int | None = None) -> int:
        """Pull and execute cells until drained/stopped; returns cells run."""
        self.queue.register_worker(self.worker_id)
        processed = 0
        while not self._stop.is_set():
            if self.reap:
                try:
                    self.queue.reap()
                except Exception:
                    pass  # another sweeper will catch what we missed
            cell = self.queue.lease(self.worker_id, lease_s=self.lease_s)
            if cell is None:
                if self.drain and self.queue.unfinished_cells() == 0:
                    break
                self._stop.wait(self.poll_s)
                continue
            self.leases += 1
            self.run_cell(cell)
            processed += 1
            if max_cells is not None and processed >= max_cells:
                break
        return processed

    # ------------------------------------------------------------------

    def _simulator(self, sharer_key: str) -> Simulator:
        simulator = self._simulators.get(sharer_key)
        if simulator is None:
            simulator = Simulator(sharer_key=sharer_key)
            self._simulators[sharer_key] = simulator
        return simulator

    def _trace(self, spec_dict: dict[str, Any]) -> tuple[Any, str]:
        """Build (or reuse) the trace + content fingerprint for one cell.

        Workload traces are deterministic from their spec, so both the
        trace and its fingerprint are memoized.  File-backed traces are
        rebuilt and re-fingerprinted every time — their content can
        change between cells — except chunked store traces
        (:class:`~repro.store.chunked.ChunkedTrace`), whose fingerprint
        is memoized by ``(path, mtime, size)``: re-hashing a
        multi-gigabyte ``.ctrc`` per cell would dominate the sweep, and
        any rewrite of the file changes the stat signature.  Memoized
        traces are stored columnar so every cell leasing the same
        workload rides the simulator's table-kernel fast path (the
        fingerprint is representation independent, so cache keys do not
        change).
        """
        tspec = TraceSpec(**spec_dict)
        if tspec.path is not None:
            trace = tspec.build()
            if hasattr(trace, "iter_chunks"):
                stat = Path(tspec.path).stat()
                memo_key = json.dumps(
                    [str(tspec.path), stat.st_mtime_ns, stat.st_size]
                )
                entry = self._traces.get(memo_key)
                if entry is not None:
                    return trace, entry[1]
                fingerprint = trace_fingerprint(trace)
                if len(self._traces) >= 32:
                    self._traces.pop(next(iter(self._traces)))
                # Memoize only the fingerprint: the handle is cheap to
                # reopen and holding decoded chunks would defeat the
                # bounded-memory point.
                self._traces[memo_key] = (None, fingerprint)
                return trace, fingerprint
            return trace, trace_fingerprint(trace)
        memo_key = json.dumps(spec_dict, sort_keys=True)
        entry = self._traces.get(memo_key)
        if entry is None:
            from repro.trace.columnar import ColumnarTrace

            trace = ColumnarTrace.from_trace(tspec.build())
            entry = (trace, trace_fingerprint(trace))
            if len(self._traces) >= 32:
                self._traces.pop(next(iter(self._traces)))
            self._traces[memo_key] = entry
        return entry

    @staticmethod
    def _scheme_spec(scheme: dict[str, Any]) -> Any:
        name = scheme["name"]
        options = scheme.get("options") or {}
        return (name, options) if options else name

    def run_cell(self, cell: LeasedCell) -> None:
        """Run one leased cell to settlement (never raises for cell errors)."""
        simulator = self._simulator(cell.sharer_key)
        try:
            trace, trace_fp = self._trace(cell.trace_spec)
        except Exception as exc:
            # The trace cannot be built: permanent, contained failure.
            self._settle_error(cell, exc)
            return
        scheme_spec = self._scheme_spec(cell.scheme)
        cache_id = cache_key(scheme_spec, simulator, trace_fp)

        if self.result_cache is not None and cache_id is not None:
            cached = self.result_cache.get_json(cache_id)
            if cached is not None:
                result_json = {
                    **cached,
                    "scheme": cell.scheme_key,
                    "trace_name": cell.trace_label,
                }
                if self.queue.settle(
                    cell.id,
                    self.worker_id,
                    {
                        "status": "ok",
                        "result": result_json,
                        "attempts": cell.attempts,
                    },
                    source="cache",
                ):
                    self.settled["cache"] += 1
                return

        heartbeat = _Heartbeat(
            self.queue,
            cell,
            self.worker_id,
            lease_s=self.lease_s,
            interval_s=max(0.05, self.lease_s / 4.0),
        )
        heartbeat.start()
        try:
            protocol = build_protocol_for_cell(simulator, scheme_spec, trace)
            if self.protocol_hook is not None:
                protocol = self.protocol_hook(self, cell, protocol) or protocol
            result = simulator.run(trace, protocol, trace_name=cell.trace_label)
            result.scheme = cell.scheme_key
            result_json = result_to_json(result)
        except (KeyboardInterrupt, SystemExit):
            heartbeat.stop()
            raise
        except Exception as exc:
            heartbeat.stop()
            if self.retry.is_retryable(exc):
                # Requeue behind a jittered backoff gate; dead-letters
                # automatically once the attempt budget is spent.
                self.queue.retry_cell(
                    cell.id,
                    self.worker_id,
                    category=type(exc).__name__,
                    message=str(exc),
                    backoff_s=self.retry.delay(cell.attempts),
                )
                self.settled["error"] += 1
            else:
                self._settle_error(cell, exc)
            return
        heartbeat.stop()

        if self.result_cache is not None and cache_id is not None:
            try:
                # Cache before settling, so any reassigned twin of this
                # cell finds the result instead of re-simulating it.
                self.result_cache.put_json(cache_id, result_json)
            except Exception:
                pass  # the cache can only skip work, not break a cell
        if self.queue.settle(
            cell.id,
            self.worker_id,
            {"status": "ok", "result": result_json, "attempts": cell.attempts},
            source="simulated",
        ):
            self.settled["simulated"] += 1

    def _settle_error(self, cell: LeasedCell, exc: BaseException) -> None:
        self.queue.settle(
            cell.id,
            self.worker_id,
            {
                "status": "error",
                "category": type(exc).__name__,
                "message": str(exc),
                "attempts": cell.attempts,
            },
        )
        self.settled["error"] += 1
