"""The bridge: a durable drop-in for the service's in-memory job queue.

:class:`DurableJobQueue` is a :class:`~repro.service.queue.JobQueue`
(same submit/pop/close interface, same priority and dedup semantics —
the scheduler does not know the difference) that additionally mirrors
every accepted job into the fabric database.  What that buys:

* a job submitted to the service survives the service — after a crash,
  :meth:`recover_specs` hands a restarted scheduler every unfinished
  job, even with no ``state_dir`` configured;
* the scheduler's fabric execution mode
  (``Scheduler(fabric_db=...)``) can enqueue a job's *owned* cells
  under the same ``job_id``, because the job row already exists.

Only the job rows are mirrored at submission time.  Cells are
deliberately **not** expanded here: the scheduler first resolves each
cell against its checkpoint manifest, the shared result cache, and the
in-flight coalescing table, and only the cells it actually *owns* are
handed to the fleet — otherwise workers would re-simulate work the
service already has.
"""

from __future__ import annotations

from typing import Any

from repro.service.jobs import Job
from repro.service.queue import JobQueue

from repro.fabric.queue import DurableCellQueue


class DurableJobQueue(JobQueue):
    """A :class:`JobQueue` whose accepted jobs persist in the fabric db.

    Args:
        fabric: the shared durable cell queue (one per fabric db).
    """

    def __init__(self, fabric: DurableCellQueue) -> None:
        super().__init__()
        self.fabric = fabric

    def submit(self, job: Job) -> tuple[Job, bool]:
        accepted, deduplicated = super().submit(job)
        if not deduplicated:
            # Job row only — owned cells are added at execution time.
            self.fabric.submit(accepted.spec, accepted.id, expand=False)
        return accepted, deduplicated

    def job_finished(self, job: Job) -> None:
        super().job_finished(job)
        # Cells settling already flip the fabric job terminal; this
        # covers jobs that never sent a cell to the fleet (all cells
        # cache/checkpoint/coalesced resolved, or failed before the
        # fabric) and records cancellations.
        state = "failed" if job.state in ("failed", "cancelled") else "done"
        try:
            self.fabric.finish_job(job.id, state)
        except Exception:
            pass  # accounting only; never fail the scheduler's settle path

    def recover_specs(self) -> list[dict[str, Any]]:
        """Unfinished persisted jobs as ``{"id", "spec"}`` dicts.

        The scheduler re-parses and re-submits these on startup —
        skipping any id it already recovered from its ``state_dir`` —
        so a fleet's queue survives even a service that kept no local
        state.
        """
        return [
            {"id": entry["id"], "spec": entry["spec"]}
            for entry in self.fabric.pending_jobs()
        ]
