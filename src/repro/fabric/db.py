"""SQLite plumbing for the durable sweep fabric.

One database file, WAL journal, accessed by many processes and threads
at once.  The rules that keep that safe live here so the queue logic in
:mod:`repro.fabric.queue` can stay purely about states:

* every connection gets WAL mode, ``synchronous=NORMAL`` (a torn WAL
  tail rolls back to the last commit — never a corrupt database), a
  busy timeout, and foreign keys;
* connections are **per thread** (:class:`ConnectionPool` hands each
  thread its own handle, since sqlite3 objects must not cross threads);
* every mutation runs inside ``BEGIN IMMEDIATE`` via
  :meth:`ConnectionPool.transaction`, which also retries the handful of
  lock errors WAL can still produce under heavy multi-writer load.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from contextlib import contextmanager

#: Seconds sqlite itself waits on a locked database before raising.
BUSY_TIMEOUT_S = 10.0

#: Attempts made by :meth:`ConnectionPool.transaction` on lock errors.
LOCK_RETRIES = 8

SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id         TEXT PRIMARY KEY,
    spec       TEXT NOT NULL,      -- canonical JSON job spec
    spec_hash  TEXT NOT NULL,
    priority   INTEGER NOT NULL DEFAULT 0,
    state      TEXT NOT NULL DEFAULT 'pending',
    created_at REAL NOT NULL,
    finished_at REAL
);

CREATE TABLE IF NOT EXISTS cells (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id         TEXT NOT NULL REFERENCES jobs(id),
    idx            INTEGER NOT NULL,  -- position in sweep order
    scheme         TEXT NOT NULL,     -- canonical {"name", "options"} JSON
    scheme_key     TEXT NOT NULL,
    trace_spec     TEXT NOT NULL,     -- canonical TraceSpec JSON
    trace_label    TEXT NOT NULL,
    sharer_key     TEXT NOT NULL,
    priority       INTEGER NOT NULL DEFAULT 0,
    state          TEXT NOT NULL DEFAULT 'pending',
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL DEFAULT 3,
    worker         TEXT,              -- current lease owner
    lease_deadline REAL,              -- unix time the lease expires
    not_before     REAL NOT NULL DEFAULT 0,  -- retry backoff gate
    reassignments  INTEGER NOT NULL DEFAULT 0,
    last_category  TEXT,
    last_error     TEXT,
    UNIQUE (job_id, idx)
);
CREATE INDEX IF NOT EXISTS cells_by_state ON cells (state, priority, id);
CREATE INDEX IF NOT EXISTS cells_by_job ON cells (job_id, state);

-- One row per settled cell; the PRIMARY KEY is what makes completion
-- idempotent (INSERT ... ON CONFLICT DO NOTHING settles races).
CREATE TABLE IF NOT EXISTS results (
    cell_id      INTEGER PRIMARY KEY REFERENCES cells(id),
    worker       TEXT,
    source       TEXT NOT NULL DEFAULT 'simulated',
    payload      TEXT NOT NULL,     -- engine outcome payload JSON
    completed_at REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS workers (
    id             TEXT PRIMARY KEY,
    pid            INTEGER,
    host           TEXT,
    first_seen     REAL NOT NULL,
    last_heartbeat REAL NOT NULL,
    cells_done     INTEGER NOT NULL DEFAULT 0
);

CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);
"""


def connect(path: str | Path) -> sqlite3.Connection:
    """Open one fabric connection with the standard pragmas applied."""
    connection = sqlite3.connect(
        str(path),
        timeout=BUSY_TIMEOUT_S,
        isolation_level=None,  # autocommit; transactions are explicit
    )
    connection.row_factory = sqlite3.Row
    connection.execute("PRAGMA journal_mode=WAL")
    connection.execute("PRAGMA synchronous=NORMAL")
    connection.execute(f"PRAGMA busy_timeout={int(BUSY_TIMEOUT_S * 1000)}")
    connection.execute("PRAGMA foreign_keys=ON")
    return connection


def ensure_schema(connection: sqlite3.Connection) -> None:
    """Create the fabric tables if this is a fresh database file."""
    connection.executescript(SCHEMA)


def _is_lock_error(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


class ConnectionPool:
    """Per-thread connections to one fabric database file.

    sqlite3 connection objects are bound to their creating thread, but
    the scheduler (and tests) call queue methods from several threads.
    The pool lazily opens one connection per thread and reuses it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()
        ensure_schema(self._connection())

    def _connection(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = connect(self.path)
            self._local.connection = connection
        return connection

    def execute(self, sql: str, parameters: tuple = ()) -> sqlite3.Cursor:
        """Run one read-only statement on this thread's connection."""
        return self._connection().execute(sql, parameters)

    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """``BEGIN IMMEDIATE`` … ``COMMIT`` with lock-error retry.

        IMMEDIATE takes the write lock up front, so every read inside
        the block sees a consistent snapshot that cannot be invalidated
        by a concurrent writer — the property the lease state machine
        relies on (check state, then flip it, atomically).
        """
        connection = self._connection()
        last: sqlite3.OperationalError | None = None
        for attempt in range(LOCK_RETRIES):
            try:
                connection.execute("BEGIN IMMEDIATE")
            except sqlite3.OperationalError as exc:
                if not _is_lock_error(exc):
                    raise
                last = exc
                time.sleep(min(0.05 * (attempt + 1), 0.5))
                continue
            try:
                yield connection
            except BaseException:
                connection.execute("ROLLBACK")
                raise
            else:
                connection.execute("COMMIT")
                return
        raise last if last is not None else sqlite3.OperationalError(
            "could not acquire the fabric write lock"
        )

    def close(self) -> None:
        """Close this thread's connection (other threads close their own)."""
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None


def retry_locked(operation: Callable[[], Any], attempts: int = LOCK_RETRIES) -> Any:
    """Run *operation*, retrying sqlite lock errors with a short backoff."""
    for attempt in range(attempts):
        try:
            return operation()
        except sqlite3.OperationalError as exc:
            if not _is_lock_error(exc) or attempt == attempts - 1:
                raise
            time.sleep(min(0.05 * (attempt + 1), 0.5))
