"""``repro.fabric``: the durable, crash-safe work-distribution layer.

The service's in-memory queue (:mod:`repro.service.queue`) dies with
its process.  The fabric replaces that single point of loss with one
SQLite file (WAL mode, stdlib :mod:`sqlite3`) holding every job and its
expanded (scheme × trace) cells:

* :class:`~repro.fabric.queue.DurableCellQueue` — cells move through
  ``pending → leased → done/failed/dead`` under time-bounded leases;
* :class:`~repro.fabric.worker.FabricWorker` — a worker (process via
  ``repro work --db``, or in-process thread) leases cells, heartbeats
  while simulating, and settles results idempotently;
* :class:`~repro.fabric.reaper.Reaper` — reassigns expired leases so a
  SIGKILL'd worker's cells are re-run by survivors;
* :mod:`~repro.fabric.chaos` — the deterministic kill-a-worker harness
  proving sweeps finish bit-identical to a serial engine run;
* :class:`~repro.fabric.bridge.DurableJobQueue` — the scheduler's
  drop-in durable job queue (same interface as
  :class:`~repro.service.queue.JobQueue`).

See ``docs/SERVICE.md`` ("Durable fleet") for the schema, the lease
semantics, and the failure matrix.
"""

from repro.fabric.bridge import DurableJobQueue
from repro.fabric.queue import (
    CELL_STATES,
    DEAD,
    DONE,
    FAILED,
    LEASED,
    PENDING,
    DurableCellQueue,
    LeasedCell,
)
from repro.fabric.reaper import Reaper
from repro.fabric.worker import FabricWorker

__all__ = [
    "CELL_STATES",
    "DEAD",
    "DONE",
    "FAILED",
    "LEASED",
    "PENDING",
    "DurableCellQueue",
    "DurableJobQueue",
    "FabricWorker",
    "LeasedCell",
    "Reaper",
]
