"""The durable cell queue: leases, attempts, dead letters, accounting.

One (scheme × trace) cell is the unit of distribution.  A cell moves
through::

    pending ──lease──▶ leased ──settle──▶ done | failed
       ▲                  │
       │   expiry/transient│
       └──────────────────┘──after max_attempts──▶ dead

* **pending** — waiting for a worker (``not_before`` gates retry
  backoff so a restarted fleet does not thundering-herd the queue);
* **leased** — owned by one worker until ``lease_deadline``; heartbeats
  renew the deadline, the reaper requeues expired leases;
* **done** — an ok outcome payload is settled in ``results``;
* **failed** — a *permanent* error outcome is settled (the fabric
  analogue of the engine's contained :class:`CellFailure`);
* **dead** — the cell burned through ``max_attempts`` leases (crashes
  and transient failures both count); listed by ``repro dlq``.

Leasing increments the cell's attempt counter, so a cell that keeps
killing its workers dead-letters instead of crash-looping the fleet
forever.  Completion is **idempotent**: results are settled with
``INSERT ... ON CONFLICT DO NOTHING`` on the cell id, so when a lease
expires under a worker that is actually still alive and two workers
finish the same cell, exactly one result wins and the loser is counted
as a ``duplicate_completions`` — never recorded twice.

Every method opens its own short transaction; instances are safe to
share across threads (per-thread connections, see
:mod:`repro.fabric.db`) and across processes (WAL + immediate
transactions).
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.fabric.db import ConnectionPool

#: Cell lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
DEAD = "dead"

CELL_STATES = (PENDING, LEASED, DONE, FAILED, DEAD)

#: States a cell can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, DEAD})

#: Default leases per cell before it dead-letters.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class LeasedCell:
    """One leased cell: everything a worker needs to simulate it."""

    id: int
    job_id: str
    index: int
    scheme: dict[str, Any]  #: canonical ``{"name", "options"}``
    scheme_key: str
    trace_spec: dict[str, Any]  #: canonical TraceSpec dict
    trace_label: str
    sharer_key: str
    attempts: int
    max_attempts: int
    lease_deadline: float

    @property
    def last_attempt(self) -> bool:
        return self.attempts >= self.max_attempts


def expand_spec(spec: Any, *, max_attempts: int | None = None) -> list[dict[str, Any]]:
    """Expand a :class:`~repro.service.spec.JobSpec` into cell descriptors.

    Descriptors are the JSON-safe rows :meth:`DurableCellQueue.add_cells`
    inserts — sweep order (scheme-major), matching
    :meth:`~repro.engine.plan.ExecutionPlan.cells`.
    """
    cells: list[dict[str, Any]] = []
    index = 0
    per_cell_attempts = max_attempts or getattr(spec, "max_attempts", None)
    for (name, options), key in zip(spec.schemes, spec.scheme_keys()):
        for tspec in spec.traces:
            cells.append(
                {
                    "idx": index,
                    "scheme": {"name": name, "options": dict(options)},
                    "scheme_key": key,
                    "trace_spec": tspec.canonical(),
                    "trace_label": tspec.workload
                    or os.path.basename(tspec.path or "?"),
                    "sharer_key": spec.sharer_key,
                    "priority": spec.priority,
                    **(
                        {"max_attempts": per_cell_attempts}
                        if per_cell_attempts
                        else {}
                    ),
                }
            )
            index += 1
    return cells


class DurableCellQueue:
    """The SQLite-backed work queue shared by the whole fleet.

    Args:
        path: the database file (created, with schema, if missing).
        default_max_attempts: leases per cell before dead-lettering,
            when the cell descriptor does not set its own.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        default_max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if default_max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {default_max_attempts}"
            )
        self.path = Path(path)
        self.default_max_attempts = default_max_attempts
        self._pool = ConnectionPool(self.path)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        spec: Any,
        job_id: str,
        *,
        expand: bool = True,
        now: float | None = None,
    ) -> str:
        """Persist one job (idempotent on *job_id*); optionally its cells.

        Args:
            spec: the validated :class:`~repro.service.spec.JobSpec`.
            job_id: the service job id this fabric job mirrors.
            expand: also insert every (scheme × trace) cell now.  The
                scheduler's fabric mode passes False and enqueues only
                the cells it could not resolve from cache/checkpoint
                (via :meth:`add_cells`).
        """
        now = time.time() if now is None else now
        with self._pool.transaction() as connection:
            connection.execute(
                "INSERT INTO jobs (id, spec, spec_hash, priority, state,"
                " created_at) VALUES (?, ?, ?, ?, 'pending', ?)"
                " ON CONFLICT (id) DO NOTHING",
                (
                    job_id,
                    json.dumps(spec.canonical(), sort_keys=True),
                    spec.spec_hash(),
                    spec.priority,
                    now,
                ),
            )
        if expand:
            self.add_cells(job_id, expand_spec(spec))
        return job_id

    def add_cells(self, job_id: str, cells: list[dict[str, Any]]) -> int:
        """Insert cell rows (idempotent on ``(job_id, idx)``); returns new rows."""
        inserted = 0
        with self._pool.transaction() as connection:
            for cell in cells:
                cursor = connection.execute(
                    "INSERT INTO cells (job_id, idx, scheme, scheme_key,"
                    " trace_spec, trace_label, sharer_key, priority,"
                    " max_attempts)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
                    " ON CONFLICT (job_id, idx) DO NOTHING",
                    (
                        job_id,
                        cell["idx"],
                        json.dumps(cell["scheme"], sort_keys=True),
                        cell["scheme_key"],
                        json.dumps(cell["trace_spec"], sort_keys=True),
                        cell["trace_label"],
                        cell["sharer_key"],
                        cell.get("priority", 0),
                        cell.get("max_attempts") or self.default_max_attempts,
                    ),
                )
                inserted += cursor.rowcount
        return inserted

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------

    def lease(
        self,
        worker_id: str,
        *,
        lease_s: float = 30.0,
        now: float | None = None,
    ) -> LeasedCell | None:
        """Claim the next ready cell for *worker_id*, or ``None``.

        Ready means ``pending`` with its retry-backoff gate
        (``not_before``) in the past.  Claiming bumps the cell's attempt
        counter — the counter counts *leases*, so crashed attempts are
        charged exactly like failed ones.
        """
        now = time.time() if now is None else now
        with self._pool.transaction() as connection:
            row = connection.execute(
                "SELECT * FROM cells WHERE state = 'pending' AND not_before <= ?"
                " ORDER BY priority DESC, id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            deadline = now + lease_s
            connection.execute(
                "UPDATE cells SET state = 'leased', worker = ?,"
                " lease_deadline = ?, attempts = attempts + 1 WHERE id = ?",
                (worker_id, deadline, row["id"]),
            )
            connection.execute(
                "UPDATE jobs SET state = 'running'"
                " WHERE id = ? AND state = 'pending'",
                (row["job_id"],),
            )
            self._touch_worker(connection, worker_id, now)
            return LeasedCell(
                id=row["id"],
                job_id=row["job_id"],
                index=row["idx"],
                scheme=json.loads(row["scheme"]),
                scheme_key=row["scheme_key"],
                trace_spec=json.loads(row["trace_spec"]),
                trace_label=row["trace_label"],
                sharer_key=row["sharer_key"],
                attempts=row["attempts"] + 1,
                max_attempts=row["max_attempts"],
                lease_deadline=deadline,
            )

    def heartbeat(
        self,
        cell_id: int,
        worker_id: str,
        *,
        lease_s: float = 30.0,
        now: float | None = None,
    ) -> bool:
        """Renew the lease; False means the lease was lost (reassigned)."""
        now = time.time() if now is None else now
        with self._pool.transaction() as connection:
            cursor = connection.execute(
                "UPDATE cells SET lease_deadline = ?"
                " WHERE id = ? AND worker = ? AND state = 'leased'",
                (now + lease_s, cell_id, worker_id),
            )
            self._touch_worker(connection, worker_id, now)
            return cursor.rowcount == 1

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------

    def settle(
        self,
        cell_id: int,
        worker_id: str,
        payload: dict[str, Any],
        *,
        source: str = "simulated",
        now: float | None = None,
    ) -> bool:
        """Record a terminal outcome payload for one cell — idempotently.

        The ``INSERT ... ON CONFLICT DO NOTHING`` on the results table is
        the settlement point for reassignment races: the first settle
        wins, any later one (a presumed-dead worker finishing after all)
        returns False and bumps ``duplicate_completions``.  Valid work is
        never thrown away *and* never double-counted.

        Args:
            payload: the engine outcome payload (``status`` ok → the
                cell is ``done``; error → ``failed``, the permanent
                contained-failure state).
            source: how the outcome was obtained (``simulated`` or
                ``cache``); cache settles count as fleet dedup hits.
        """
        now = time.time() if now is None else now
        with self._pool.transaction() as connection:
            cursor = connection.execute(
                "INSERT INTO results (cell_id, worker, source, payload,"
                " completed_at) VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT (cell_id) DO NOTHING",
                (
                    cell_id,
                    worker_id,
                    source,
                    json.dumps(payload, sort_keys=True),
                    now,
                ),
            )
            if cursor.rowcount == 0:
                self._bump(connection, "duplicate_completions")
                return False
            state = DONE if payload.get("status") == "ok" else FAILED
            connection.execute(
                "UPDATE cells SET state = ?, worker = NULL,"
                " lease_deadline = NULL, last_category = ?, last_error = ?"
                " WHERE id = ?",
                (
                    state,
                    payload.get("category"),
                    payload.get("message"),
                    cell_id,
                ),
            )
            if source == "cache":
                self._bump(connection, "dedup_hits")
            connection.execute(
                "UPDATE workers SET cells_done = cells_done + 1,"
                " last_heartbeat = ? WHERE id = ?",
                (now, worker_id),
            )
            self._refresh_job(connection, cell_id=cell_id, now=now)
            return True

    def retry_cell(
        self,
        cell_id: int,
        worker_id: str,
        *,
        category: str,
        message: str,
        backoff_s: float = 0.0,
        now: float | None = None,
    ) -> str:
        """Requeue a transiently-failed cell (or dead-letter it).

        Returns the cell's new state: ``pending`` when the attempt
        budget allows another lease (gated ``backoff_s`` into the
        future), ``dead`` once ``max_attempts`` leases are burned, or
        the current state unchanged when this worker no longer holds
        the lease (the reaper got there first).
        """
        now = time.time() if now is None else now
        with self._pool.transaction() as connection:
            row = connection.execute(
                "SELECT state, worker, attempts, max_attempts, job_id"
                " FROM cells WHERE id = ?",
                (cell_id,),
            ).fetchone()
            if row is None:
                raise ConfigurationError(f"unknown cell id {cell_id}")
            if row["state"] != LEASED or row["worker"] != worker_id:
                return row["state"]
            if row["attempts"] >= row["max_attempts"]:
                connection.execute(
                    "UPDATE cells SET state = 'dead', worker = NULL,"
                    " lease_deadline = NULL, last_category = ?,"
                    " last_error = ? WHERE id = ?",
                    (category, message, cell_id),
                )
                self._bump(connection, "dead_letters")
                self._refresh_job(connection, cell_id=cell_id, now=now)
                return DEAD
            connection.execute(
                "UPDATE cells SET state = 'pending', worker = NULL,"
                " lease_deadline = NULL, not_before = ?, last_category = ?,"
                " last_error = ? WHERE id = ?",
                (now + backoff_s, category, message, cell_id),
            )
            return PENDING

    # ------------------------------------------------------------------
    # Reaping
    # ------------------------------------------------------------------

    def reap(self, *, now: float | None = None) -> list[tuple[int, str]]:
        """Requeue (or dead-letter) every cell whose lease has expired.

        Any process may call this — dedicated :class:`Reaper` threads,
        workers between leases, the scheduler's wait loop — transitions
        are guarded by cell state, so concurrent reapers double-count
        nothing.

        Returns ``[(cell_id, new_state), ...]`` for the reaped cells.
        """
        now = time.time() if now is None else now
        reaped: list[tuple[int, str]] = []
        with self._pool.transaction() as connection:
            rows = connection.execute(
                "SELECT id, attempts, max_attempts, worker FROM cells"
                " WHERE state = 'leased' AND lease_deadline < ?",
                (now,),
            ).fetchall()
            for row in rows:
                self._bump(connection, "lease_expirations")
                message = (
                    f"lease expired (worker {row['worker']},"
                    f" attempt {row['attempts']}/{row['max_attempts']})"
                )
                if row["attempts"] >= row["max_attempts"]:
                    connection.execute(
                        "UPDATE cells SET state = 'dead', worker = NULL,"
                        " lease_deadline = NULL,"
                        " last_category = 'LeaseExpired', last_error = ?"
                        " WHERE id = ?",
                        (message, row["id"]),
                    )
                    self._bump(connection, "dead_letters")
                    self._refresh_job(connection, cell_id=row["id"], now=now)
                    reaped.append((row["id"], DEAD))
                else:
                    connection.execute(
                        "UPDATE cells SET state = 'pending', worker = NULL,"
                        " lease_deadline = NULL,"
                        " reassignments = reassignments + 1,"
                        " last_category = 'LeaseExpired', last_error = ?"
                        " WHERE id = ?",
                        (message, row["id"]),
                    )
                    self._bump(connection, "reassignments")
                    reaped.append((row["id"], PENDING))
        return reaped

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def register_worker(
        self, worker_id: str, *, pid: int | None = None, now: float | None = None
    ) -> None:
        """Record a worker joining the fleet (idempotent)."""
        now = time.time() if now is None else now
        with self._pool.transaction() as connection:
            connection.execute(
                "INSERT INTO workers (id, pid, host, first_seen,"
                " last_heartbeat) VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT (id) DO UPDATE SET last_heartbeat ="
                " excluded.last_heartbeat, pid = excluded.pid",
                (worker_id, pid or os.getpid(), socket.gethostname(), now, now),
            )

    def _touch_worker(self, connection, worker_id: str, now: float) -> None:
        connection.execute(
            "UPDATE workers SET last_heartbeat = ? WHERE id = ?",
            (now, worker_id),
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def _refresh_job(self, connection, *, cell_id: int, now: float) -> None:
        """Flip the owning job terminal once its last cell settles."""
        job_id = connection.execute(
            "SELECT job_id FROM cells WHERE id = ?", (cell_id,)
        ).fetchone()["job_id"]
        unfinished = connection.execute(
            "SELECT COUNT(*) AS n FROM cells WHERE job_id = ?"
            " AND state NOT IN ('done', 'failed', 'dead')",
            (job_id,),
        ).fetchone()["n"]
        if unfinished:
            return
        bad = connection.execute(
            "SELECT COUNT(*) AS n FROM cells WHERE job_id = ?"
            " AND state IN ('failed', 'dead')",
            (job_id,),
        ).fetchone()["n"]
        connection.execute(
            "UPDATE jobs SET state = ?, finished_at = ? WHERE id = ?",
            ("failed" if bad else "done", now, job_id),
        )

    def finish_job(
        self, job_id: str, state: str = "done", *, now: float | None = None
    ) -> None:
        """Force one job terminal (used when its cells never reached the
        fabric — e.g. every cell resolved from cache or checkpoint)."""
        now = time.time() if now is None else now
        with self._pool.transaction() as connection:
            connection.execute(
                "UPDATE jobs SET state = ?, finished_at = ?"
                " WHERE id = ? AND state NOT IN ('done', 'failed')",
                (state, now, job_id),
            )

    def job_state(self, job_id: str) -> str | None:
        row = self._pool.execute(
            "SELECT state FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        return None if row is None else row["state"]

    def pending_jobs(self) -> list[dict[str, Any]]:
        """Unfinished persisted jobs (spec JSON included), oldest first."""
        rows = self._pool.execute(
            "SELECT id, spec, state FROM jobs"
            " WHERE state NOT IN ('done', 'failed') ORDER BY created_at"
        ).fetchall()
        return [
            {"id": row["id"], "spec": json.loads(row["spec"]), "state": row["state"]}
            for row in rows
        ]

    def cell_outcomes(self, job_id: str) -> list[dict[str, Any]]:
        """Every cell of one job with its settled payload (if any)."""
        rows = self._pool.execute(
            "SELECT c.id, c.idx, c.scheme_key, c.trace_label, c.state,"
            " c.attempts, c.last_category, c.last_error,"
            " r.payload, r.source"
            " FROM cells c LEFT JOIN results r ON r.cell_id = c.id"
            " WHERE c.job_id = ? ORDER BY c.idx",
            (job_id,),
        ).fetchall()
        outcomes = []
        for row in rows:
            outcomes.append(
                {
                    "cell_id": row["id"],
                    "index": row["idx"],
                    "scheme_key": row["scheme_key"],
                    "trace_label": row["trace_label"],
                    "state": row["state"],
                    "attempts": row["attempts"],
                    "last_category": row["last_category"],
                    "last_error": row["last_error"],
                    "payload": json.loads(row["payload"]) if row["payload"] else None,
                    "source": row["source"],
                }
            )
        return outcomes

    def assemble(self, job_id: str) -> dict[str, Any]:
        """One job's sweep outcome in the engine's results/failures shape.

        ``results[scheme_key][trace_label]`` holds the settled result
        JSON in sweep order — directly comparable (canonical JSON,
        sorted keys) with a serial engine run's serialized results,
        which is how the chaos harness proves bit-for-bit parity.
        """
        results: dict[str, dict[str, Any]] = {}
        failures: list[dict[str, Any]] = []
        for outcome in self.cell_outcomes(job_id):
            payload = outcome["payload"]
            if outcome["state"] == DONE and payload is not None:
                results.setdefault(outcome["scheme_key"], {})[
                    outcome["trace_label"]
                ] = payload["result"]
            elif outcome["state"] in (FAILED, DEAD):
                failures.append(
                    {
                        "scheme": outcome["scheme_key"],
                        "trace_name": outcome["trace_label"],
                        "state": outcome["state"],
                        "category": (payload or {}).get("category")
                        or outcome["last_category"],
                        "message": (payload or {}).get("message")
                        or outcome["last_error"],
                        "attempts": outcome["attempts"],
                    }
                )
        return {"results": results, "failures": failures}

    def dead_letters(self) -> list[dict[str, Any]]:
        """The DLQ: every cell that burned through its attempt budget."""
        rows = self._pool.execute(
            "SELECT c.job_id, c.idx, c.scheme_key, c.trace_label, c.attempts,"
            " c.max_attempts, c.reassignments, c.last_category, c.last_error"
            " FROM cells c WHERE c.state = 'dead' ORDER BY c.job_id, c.idx"
        ).fetchall()
        return [dict(row) for row in rows]

    def unfinished_cells(self) -> int:
        """Cells not yet terminal, queue-wide (the fleet-drain predicate)."""
        return self._pool.execute(
            "SELECT COUNT(*) AS n FROM cells"
            " WHERE state NOT IN ('done', 'failed', 'dead')"
        ).fetchone()["n"]

    def counters(self) -> dict[str, int]:
        rows = self._pool.execute("SELECT name, value FROM counters").fetchall()
        return {row["name"]: row["value"] for row in rows}

    def stats(self, *, now: float | None = None) -> dict[str, Any]:
        """Fleet-wide accounting — the ``/stats`` ``fabric`` section."""
        now = time.time() if now is None else now
        cells = {state: 0 for state in CELL_STATES}
        for row in self._pool.execute(
            "SELECT state, COUNT(*) AS n FROM cells GROUP BY state"
        ):
            cells[row["state"]] = row["n"]
        jobs: dict[str, int] = {}
        for row in self._pool.execute(
            "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
        ):
            jobs[row["state"]] = row["n"]
        workers_seen = self._pool.execute(
            "SELECT COUNT(*) AS n FROM workers"
        ).fetchone()["n"]
        workers_live = self._pool.execute(
            "SELECT COUNT(*) AS n FROM workers WHERE last_heartbeat >= ?",
            (now - 60.0,),
        ).fetchone()["n"]
        sources: dict[str, int] = {}
        for row in self._pool.execute(
            "SELECT source, COUNT(*) AS n FROM results GROUP BY source"
        ):
            sources[row["source"]] = row["n"]
        counters = self.counters()
        return {
            "db": str(self.path),
            "jobs": jobs,
            "cells": cells,
            "live_leases": cells[LEASED],
            "workers_seen": workers_seen,
            "workers_live": workers_live,
            "settled_by_source": sources,
            "lease_expirations": counters.get("lease_expirations", 0),
            "reassignments": counters.get("reassignments", 0),
            "dead_letters": counters.get("dead_letters", 0),
            "duplicate_completions": counters.get("duplicate_completions", 0),
            "dedup_hits": counters.get("dedup_hits", 0),
        }

    # ------------------------------------------------------------------

    @staticmethod
    def _bump(connection, name: str, amount: int = 1) -> None:
        connection.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?)"
            " ON CONFLICT (name) DO UPDATE SET value = value + excluded.value",
            (name, amount),
        )

    def close(self) -> None:
        """Close this thread's database connection."""
        self._pool.close()
