"""The scheduler: worker threads that turn queued jobs into results.

Each worker thread pops one job at a time from the
:class:`~repro.service.queue.JobQueue` and drives it through three
phases:

1. **Resolution** — every cell in sweep order is classified: already in
   this job's checkpoint manifest (``checkpoint``), present in the
   shared :class:`~repro.runner.cache.ResultCache` (``cache``), being
   computed right now by any job (``coalesced`` — the cell attaches to
   the in-flight entry), or owned by this job (``simulated``).
2. **Owned execution** — owned cells run in stop-checked batches through
   the engine: serially via :func:`repro.engine.backends.run_cell` or
   fanned across a :class:`~repro.engine.backends.ProcessPoolBackend`
   process pool when ``sim_jobs > 1``.  Outcomes are cached *before*
   the in-flight entry resolves, so late claimants always find the
   cache.
3. **Waiting** — coalesced cells block on their in-flight entries; an
   abandoned entry (its owner was stopped mid-shutdown) sends the
   waiter back through resolution so no cell is ever stranded.

Each job is normalized into an
:class:`~repro.engine.plan.ExecutionPlan`, which also memoizes every
trace's content fingerprint (once per plan, not once per cell); cell
metrics come from the engine's
:class:`~repro.engine.observer.EngineMetrics` observer — the same
instrumentation the CLI's ``--progress`` reads — and per-job checkpoint
manifests are written through the engine's single
:class:`~repro.engine.policies.ManifestRecorder` site.

Graceful shutdown has two modes.  ``drain`` finishes every queued and
running job, then stops.  ``checkpoint`` stops running jobs at the next
cell boundary, persists their partial manifests and the queued jobs'
specs under ``state_dir``, and a scheduler restarted on the same
``state_dir`` resumes them — completed cells restored bit-for-bit from
the manifest, the remainder recomputed deterministically.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.core.simulator import Simulator
from repro.engine.backends import ProcessPoolBackend, run_cell
from repro.engine.observer import EngineMetrics
from repro.engine.plan import CellTask, ExecutionPlan
from repro.engine.policies import ManifestRecorder, RetryPolicy
from repro.errors import ServiceUnavailableError
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import (
    CheckpointManager,
    result_from_json,
    result_to_json,
)
from repro.service.coalesce import InFlightCell, InFlightTable
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SOURCE_CACHE,
    SOURCE_CHECKPOINT,
    SOURCE_COALESCED,
    SOURCE_FABRIC,
    SOURCE_SIMULATED,
    Job,
    JobStore,
)
from repro.service.queue import JobQueue
from repro.service.spec import JobSpec, TraceSpec

#: How long waiters sleep between stop-flag checks on an in-flight cell.
_WAIT_POLL = 0.1

JOB_FILE = "job.json"


class Scheduler:
    """Owns the queue, the workers, and every shared dedup structure.

    Args:
        workers: concurrent jobs (one worker thread each).
        sim_jobs: processes per job's owned-cell batches (1 = in-thread).
        result_cache: shared content-addressed cache; created under
            ``state_dir/cache`` when a state dir is given and no cache
            is passed explicitly.
        state_dir: persistence root; enables checkpoint shutdown/resume.
        retry: per-cell transient-failure policy (engine semantics).
        fabric_db: path to a durable fabric database.  When set, jobs
            are mirrored into it (surviving a service crash even with no
            ``state_dir``) and each job's *owned* cells are executed by
            the lease-based worker fleet instead of the in-process
            engine backends — in-process fabric workers started here
            plus any external ``repro work --db`` processes.
        fabric_workers: in-process fleet members to start (fabric mode).
            0 relies entirely on external worker processes.
        lease_s: lease duration for the in-process fleet's cells.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        sim_jobs: int = 1,
        result_cache: ResultCache | None = None,
        state_dir: str | Path | None = None,
        retry: RetryPolicy | None = None,
        fabric_db: str | Path | None = None,
        fabric_workers: int = 1,
        lease_s: float = 30.0,
    ) -> None:
        self.workers = max(1, workers)
        self.sim_jobs = max(1, sim_jobs)
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if result_cache is None and self.state_dir is not None:
            result_cache = ResultCache(self.state_dir / "cache")
        self.result_cache = result_cache
        self.retry = retry or RetryPolicy()

        # Fabric imports are deferred: repro.fabric's modules import
        # service.{jobs,queue,spec}, so a module-level import here would
        # be circular through repro.service.__init__.
        self.fabric: Any = None
        self.fabric_workers = max(0, fabric_workers)
        self.lease_s = lease_s
        self._fabric_threads: list[threading.Thread] = []
        self._fabric_members: list[Any] = []
        self._reaper: Any = None
        if fabric_db is not None:
            from repro.fabric.bridge import DurableJobQueue
            from repro.fabric.queue import DurableCellQueue

            self.fabric = DurableCellQueue(fabric_db)
            self.queue: JobQueue = DurableJobQueue(self.fabric)
        else:
            self.queue = JobQueue()
        self.jobs = JobStore()
        self.inflight = InFlightTable()

        self._threads: list[threading.Thread] = []
        self._quit = threading.Event()
        self._checkpoint_mode = False
        #: jobs submitted but not yet terminal/parked (drain waits on 0).
        self._outstanding = 0
        self._idle = threading.Condition()
        self._started_at = time.monotonic()

        # Shared memos: canonical trace spec -> built Trace, and
        # cell key -> result JSON (the warm-process layer above the
        # on-disk ResultCache — works even with no cache configured).
        self._trace_memo: dict[str, Any] = {}
        self._result_memo: dict[str, Any] = {}
        self._memo_lock = threading.Lock()

        #: Engine instrumentation: owned-cell outcomes arrive through
        #: the observer protocol; scheduler-only counters (cache,
        #: coalesced, checkpoint, job dedup) share the same store.
        self.metrics = EngineMetrics()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Recover persisted jobs, then launch the worker threads."""
        if self.state_dir is not None:
            self._recover()
        if self.fabric is not None:
            self._recover_fabric()
            self._start_fleet()
        for number in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{number}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _start_fleet(self) -> None:
        """Launch the in-process fabric fleet and its lease reaper."""
        from dataclasses import replace as dc_replace

        from repro.fabric.reaper import Reaper
        from repro.fabric.worker import FabricWorker

        self._reaper = Reaper(
            self.fabric, interval_s=max(0.2, self.lease_s / 4.0)
        )
        self._reaper.start()
        for number in range(self.fabric_workers):
            member = FabricWorker(
                self.fabric,
                worker_id=f"svc-{os.getpid()}-{number}",
                result_cache=self.result_cache,
                retry=dc_replace(self.retry, jitter="full", jitter_seed=None),
                lease_s=self.lease_s,
                poll_s=0.2,
                drain=False,  # long-lived: poll until shutdown
                reap=False,  # the dedicated reaper sweeps for the fleet
                stop=self._quit,
            )
            thread = threading.Thread(
                target=member.run,
                name=f"repro-fabric-member-{number}",
                daemon=True,
            )
            thread.start()
            self._fabric_members.append(member)
            self._fabric_threads.append(thread)

    def shutdown(self, mode: str = "drain", timeout: float | None = None) -> None:
        """Stop the scheduler.

        Args:
            mode: ``"drain"`` finishes all queued and running jobs
                first; ``"checkpoint"`` stops running jobs at the next
                cell boundary and persists queue + partial manifests
                (requires ``state_dir`` for the persistence part — the
                stop-at-boundary behaviour works regardless).
            timeout: drain-mode bound on waiting for jobs to finish.
        """
        if mode not in ("drain", "checkpoint"):
            raise ValueError(f"shutdown mode must be drain/checkpoint, got {mode!r}")
        self.queue.close()
        if mode == "checkpoint":
            self._checkpoint_mode = True
            for job in self.jobs.all():
                if not job.finished:
                    job.request_stop()
        else:
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._idle:
                while self._outstanding:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                    self._idle.wait(remaining if remaining is not None else 0.5)
        self._quit.set()
        for job in self.queue.drain():
            # Still queued at quit: stays persisted for the next start.
            self._persist_job(job)
        for thread in self._threads:
            thread.join(timeout=10.0)
        if self._reaper is not None:
            self._reaper.stop()
        for thread in self._fabric_threads:
            thread.join(timeout=10.0)
        if self.fabric is not None:
            try:
                self.fabric.close()
            except Exception:
                pass  # this thread's connection only; workers own theirs

    @property
    def stopping(self) -> bool:
        return self.queue.closed

    # ------------------------------------------------------------------
    # Submission + views
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec, job_id: str | None = None) -> tuple[Job, bool]:
        """Queue a validated spec; returns ``(job, deduplicated)``."""
        if self._quit.is_set():
            raise ServiceUnavailableError("service is shutting down")
        job = Job(spec, job_id=job_id)
        accepted, deduplicated = self.queue.submit(job)
        self.metrics.bump("jobs_submitted")
        if deduplicated:
            self.metrics.bump("jobs_deduplicated")
        else:
            self.jobs.add(accepted)
            with self._idle:
                self._outstanding += 1
            self._persist_job(accepted)
        return accepted, deduplicated

    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` payload: queue, job, cell, cache metrics.

        Cell counters are read from the shared engine instrumentation:
        ``simulated``/``errors`` are the engine's terminal-outcome
        counters (``cells_ok``/``cells_failed``); ``cache``,
        ``coalesced``, and ``checkpoint`` are scheduler resolutions that
        never reach the engine's compute path.  The raw counter
        snapshot is exposed under ``engine``.
        """
        counters = self.metrics.snapshot()
        cache_stats = None
        if self.result_cache is not None:
            cache_stats = {
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
                "quarantined": getattr(self.result_cache, "quarantined", 0),
                "entries": len(self.result_cache),
            }
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.workers,
            "sim_jobs": self.sim_jobs,
            "queue_depth": len(self.queue),
            "inflight_cells": len(self.inflight),
            "result_memo_entries": len(self._result_memo),
            "stopping": self.stopping,
            "jobs": {
                **self.jobs.state_counts(),
                "total": len(self.jobs),
                "submitted": int(counters.get("jobs_submitted", 0)),
                "deduplicated": int(counters.get("jobs_deduplicated", 0)),
            },
            "cells": {
                "simulated": int(counters.get("cells_ok", 0)),
                "cache": int(counters.get("cells_cache", 0)),
                "coalesced": int(counters.get("cells_coalesced", 0)),
                "checkpoint": int(counters.get("cells_checkpoint", 0)),
                "fabric": int(counters.get("cells_fabric", 0)),
                "errors": int(counters.get("cells_failed", 0)),
            },
            "engine": counters,
            "cache": cache_stats,
            "fabric": self.fabric.stats() if self.fabric is not None else None,
        }

    # ------------------------------------------------------------------
    # Persistence + recovery
    # ------------------------------------------------------------------

    def _job_dir(self, job_id: str) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / "jobs" / job_id

    def _persist_job(self, job: Job) -> None:
        """Write the job's spec + state to its directory (atomic)."""
        directory = self._job_dir(job.id)
        if directory is None:
            return
        directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "id": job.id,
                "state": job.state,
                "error": job.error,
                "spec": job.spec.canonical(),
            },
            indent=1,
            sort_keys=True,
        )
        path = directory / JOB_FILE
        # Unique per writer: the submitting thread and a worker thread
        # can persist the same job concurrently (queued vs running),
        # and a shared tmp name would let one replace() lose the file.
        tmp = path.with_name(f"{path.name}.{threading.get_ident()}.tmp")
        tmp.write_text(payload, "utf-8")
        os.replace(tmp, path)

    def _recover(self) -> None:
        """Re-create persisted jobs; unfinished ones go back on the queue."""
        from repro.service.jobs import TERMINAL_STATES
        from repro.service.spec import parse_job_spec

        jobs_root = self.state_dir / "jobs"
        if not jobs_root.is_dir():
            return
        for directory in sorted(jobs_root.iterdir()):
            job_file = directory / JOB_FILE
            if not job_file.is_file():
                continue
            try:
                persisted = json.loads(job_file.read_text("utf-8"))
                spec = parse_job_spec(persisted["spec"])
            except Exception:
                continue  # a corrupt job record never blocks startup
            job = Job(spec, job_id=persisted.get("id") or directory.name)
            self.jobs.add(job)
            if persisted.get("state") in TERMINAL_STATES:
                self._restore_terminal(job, persisted)
                continue
            _, deduplicated = self.queue.submit(job)
            if deduplicated:
                # Two persisted copies of one dedup'd spec: keep one.
                job.set_state(CANCELLED, error="deduplicated on recovery")
                self._persist_job(job)
            else:
                with self._idle:
                    self._outstanding += 1

    def _recover_fabric(self) -> None:
        """Re-queue unfinished jobs persisted only in the fabric db.

        The ``state_dir`` recovery (when configured) runs first and is
        richer — it restores manifests.  This pass catches jobs the
        fabric outlived: submitted to a service with no ``state_dir``,
        then orphaned by a crash.  Ids already recovered are skipped.
        """
        from repro.service.spec import parse_job_spec

        for entry in self.queue.recover_specs():
            job_id = entry["id"]
            try:
                self.jobs.get(job_id)
            except Exception:
                pass
            else:
                continue  # state_dir recovery already owns this job
            try:
                spec = parse_job_spec(entry["spec"])
            except Exception:
                continue  # a corrupt fabric row never blocks startup
            job = Job(spec, job_id=job_id)
            self.jobs.add(job)
            _, deduplicated = self.queue.submit(job)
            if deduplicated:
                job.set_state(CANCELLED, error="deduplicated on recovery")
            else:
                with self._idle:
                    self._outstanding += 1

    def _restore_terminal(self, job: Job, persisted: dict[str, Any]) -> None:
        """Rebuild a finished job's results from its manifest."""
        manager = CheckpointManager(self._job_dir(job.id))
        try:
            manifest = manager.load_manifest()
        except Exception:
            manifest = {"completed": {}}
        for scheme, per_trace in manifest.get("completed", {}).items():
            for trace_name, result_json in per_trace.items():
                job.record_cell(
                    scheme=scheme,
                    trace_name=trace_name,
                    index=-1,
                    source=SOURCE_CHECKPOINT,
                    payload={"status": "ok", "result": result_json, "attempts": 1},
                )
        job.set_state(persisted.get("state", DONE), error=persisted.get("error"))

    # ------------------------------------------------------------------
    # Trace plumbing
    # ------------------------------------------------------------------

    def _build_trace(self, tspec: TraceSpec) -> Any:
        """Build (or reuse) the trace for one trace spec.

        Workload traces are memoized on the canonical spec so identical
        jobs share one Trace object.  File-backed traces are rebuilt
        each time — they are lazy readers whose content can change
        between jobs.
        """
        if tspec.path is not None:
            return tspec.build()
        memo_key = json.dumps(tspec.canonical(), sort_keys=True)
        with self._memo_lock:
            trace = self._trace_memo.get(memo_key)
        if trace is not None:
            return trace
        trace = tspec.build()
        with self._memo_lock:
            if len(self._trace_memo) >= 32:
                self._trace_memo.pop(next(iter(self._trace_memo)))
            self._trace_memo.setdefault(memo_key, trace)
            return self._trace_memo[memo_key]

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._quit.is_set():
            job = self.queue.pop(timeout=0.2)
            if job is None:
                continue
            if self._checkpoint_mode:
                # Popped during a checkpoint shutdown: leave it queued.
                self._persist_job(job)
                self._settle(job)
                continue
            try:
                self._run_job(job)
            finally:
                self._settle(job)

    def _settle(self, job: Job) -> None:
        """One submitted job reached terminal/parked; unblock drainers."""
        with self._idle:
            self._outstanding -= 1
            self._idle.notify_all()

    def _run_job(self, job: Job) -> None:
        job.set_state(RUNNING)
        self._persist_job(job)
        try:
            completed = self._execute_job(job)
        except Exception as exc:  # infrastructure failure, not a cell failure
            job.set_state(FAILED, error=f"{type(exc).__name__}: {exc}")
        else:
            if completed:
                job.set_state(DONE)
            else:
                # Stopped at a cell boundary: back to queued, resumable.
                job.state = QUEUED
                job.append_event(
                    {"type": "job", "job": job.id, "state": QUEUED,
                     "reason": "checkpointed"}
                )
        finally:
            if job.finished:
                self.queue.job_finished(job)
            self._persist_job(job)

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------

    def _execute_job(self, job: Job) -> bool:
        """Run one job's sweep; returns True when every cell finished."""
        spec = job.spec
        simulator = Simulator(sharer_key=spec.sharer_key)
        recorder: ManifestRecorder | None = None
        job_dir = self._job_dir(job.id)
        if job_dir is not None:
            manager = CheckpointManager(job_dir)
            fingerprint = {"job_spec": spec.spec_hash()}
            if manager.exists():
                recorder = ManifestRecorder(manager, manager.load_manifest(fingerprint))
            else:
                recorder = ManifestRecorder(manager, manager.new_manifest(fingerprint))
                recorder.save()
        restored = recorder.manifest["completed"] if recorder is not None else {}

        # Build each trace once; a failed build poisons only its cells.
        traces: list[Any] = []
        build_errors: list[Exception | None] = []
        labels: list[str] = []
        for tspec in spec.traces:
            label = tspec.workload or os.path.basename(tspec.path or "?")
            labels.append(label)
            try:
                trace = self._build_trace(tspec)
            except Exception as exc:
                traces.append(None)
                build_errors.append(exc)
            else:
                traces.append(trace)
                build_errors.append(None)

        # The job's plan: fingerprint memoization and cache keys live
        # here (one fingerprint per trace per plan, not per cell).
        plan = ExecutionPlan(
            traces=[trace for trace in traces if trace is not None],
            schemes=list(spec.scheme_specs()),
            simulator=simulator,
        )

        def checkpoint_cell(scheme: str, trace_name: str, result_json) -> None:
            if recorder is not None:
                recorder.record_completed(scheme, trace_name, result_json)

        owned: list[tuple[CellTask, InFlightCell | None]] = []
        waiting: list[tuple[CellTask, InFlightCell]] = []
        index = 0
        for scheme_spec, skey in zip(spec.scheme_specs(), spec.scheme_keys()):
            for t_index, trace in enumerate(traces):
                cell_index = index
                index += 1
                if trace is None:
                    exc = build_errors[t_index]
                    job.record_cell(
                        scheme=skey, trace_name=labels[t_index], index=cell_index,
                        source=SOURCE_SIMULATED,
                        payload={
                            "status": "error",
                            "category": type(exc).__name__,
                            "message": str(exc),
                            "attempts": 1,
                        },
                    )
                    self.metrics.bump("cells_failed")
                    continue
                if trace.name in restored.get(skey, {}):
                    job.record_cell(
                        scheme=skey, trace_name=trace.name, index=cell_index,
                        source=SOURCE_CHECKPOINT,
                        payload={
                            "status": "ok",
                            "result": restored[skey][trace.name],
                            "attempts": 1,
                        },
                    )
                    self.metrics.bump("cells_checkpoint")
                    continue
                cell = CellTask(
                    spec=scheme_spec, scheme_key=skey, trace=trace,
                    trace_name=trace.name, index=cell_index,
                    cache_id=plan.cache_id(scheme_spec, trace),
                )
                resolved = self._try_cache(job, cell, checkpoint_cell)
                if resolved:
                    continue
                if cell.cache_id is None:
                    owned.append((cell, None))
                    continue
                entry, is_owner = self.inflight.claim(cell.cache_id, job.id)
                if is_owner:
                    owned.append((cell, entry))
                else:
                    waiting.append((cell, entry))

        if self.fabric is not None:
            finished = self._run_owned_fabric(job, owned, checkpoint_cell)
        else:
            finished = self._run_owned(job, simulator, owned, checkpoint_cell)
        finished = self._await_coalesced(
            job, simulator, waiting, checkpoint_cell
        ) and finished
        return finished

    def _try_cache(self, job: Job, cell: CellTask, checkpoint_cell) -> bool:
        """Serve *cell* from the result memo or the on-disk cache."""
        if cell.cache_id is None:
            return False
        with self._memo_lock:
            memo_json = self._result_memo.get(cell.cache_id)
        if memo_json is not None:
            # Content-addressed: relabel under this job's names.
            result_json = {
                **memo_json,
                "scheme": cell.scheme_key,
                "trace_name": cell.trace_name,
            }
        elif self.result_cache is not None:
            cached = self.result_cache.get(cell.cache_id)
            if cached is None:
                return False
            cached.scheme = cell.scheme_key
            cached.trace_name = cell.trace_name
            result_json = result_to_json(cached)
        else:
            return False
        job.record_cell(
            scheme=cell.scheme_key, trace_name=cell.trace_name, index=cell.index,
            source=SOURCE_CACHE,
            payload={"status": "ok", "result": result_json, "attempts": 1},
        )
        self.metrics.bump("cells_cache")
        checkpoint_cell(cell.scheme_key, cell.trace_name, result_json)
        return True

    def _finish_owned(
        self, job: Job, cell: CellTask, entry: InFlightCell | None,
        payload: dict[str, Any], checkpoint_cell,
    ) -> None:
        """Record one simulated cell: cache, manifest, in-flight, event.

        Terminal-outcome counters (``cells_ok``/``cells_failed``) are
        already bumped by the engine observer when the cell executes.
        """
        if payload["status"] == "ok":
            if cell.cache_id is not None:
                with self._memo_lock:
                    if len(self._result_memo) >= 4096:
                        self._result_memo.pop(next(iter(self._result_memo)))
                    self._result_memo[cell.cache_id] = payload["result"]
                if self.result_cache is not None:
                    try:
                        self.result_cache.put(
                            cell.cache_id, result_from_json(payload["result"])
                        )
                    except Exception:
                        pass  # the cache can only skip work, not break a job
            checkpoint_cell(cell.scheme_key, cell.trace_name, payload["result"])
        # Resolve after the cache write so late claimants hit the cache.
        if entry is not None:
            self.inflight.resolve_and_release(entry, payload)
        job.record_cell(
            scheme=cell.scheme_key, trace_name=cell.trace_name, index=cell.index,
            source=SOURCE_SIMULATED, payload=payload,
        )

    def _simulate_cell(self, simulator: Simulator, cell: CellTask) -> dict[str, Any]:
        """Run one owned cell in-thread through the engine unit."""
        self.metrics.cell_started(cell)
        outcome = run_cell(
            simulator, cell, retry=self.retry, observer=self.metrics
        )
        return outcome.to_payload()

    def _run_owned(
        self, job: Job, simulator: Simulator,
        owned: list[tuple[CellTask, InFlightCell | None]],
        checkpoint_cell: Callable[[str, str, Any], None],
    ) -> bool:
        """Execute this job's owned cells in stop-checked batches."""
        batch_size = self.sim_jobs if self.sim_jobs > 1 else 1
        position = 0
        while position < len(owned):
            if job.stop_requested:
                for cell, entry in owned[position:]:
                    if entry is not None:
                        self.inflight.abandon_and_release(entry)
                return False
            batch = owned[position : position + batch_size]
            position += len(batch)
            if len(batch) > 1:
                backend = ProcessPoolBackend(jobs=self.sim_jobs, retry=self.retry)
                for cell, _ in batch:
                    self.metrics.cell_started(cell)

                def on_complete(i: int, payload: dict[str, Any]) -> None:
                    cell, entry = batch[i]
                    self._finish_owned(job, cell, entry, payload, checkpoint_cell)

                backend.run(
                    simulator,
                    [cell for cell, _ in batch],
                    on_complete=on_complete,
                    observer=self.metrics,
                )
            else:
                cell, entry = batch[0]
                payload = self._simulate_cell(simulator, cell)
                self._finish_owned(job, cell, entry, payload, checkpoint_cell)
        return True

    def _finish_fabric(
        self, job: Job, cell: CellTask, entry: InFlightCell | None,
        payload: dict[str, Any], checkpoint_cell,
    ) -> None:
        """Record one fleet-settled cell: memo, manifest, in-flight, event.

        The worker that simulated the cell already wrote the shared
        on-disk cache (before settling, so reassigned twins hit it);
        here only the in-process memo is warmed.
        """
        if payload["status"] == "ok":
            if cell.cache_id is not None:
                with self._memo_lock:
                    if len(self._result_memo) >= 4096:
                        self._result_memo.pop(next(iter(self._result_memo)))
                    self._result_memo[cell.cache_id] = payload["result"]
            checkpoint_cell(cell.scheme_key, cell.trace_name, payload["result"])
            self.metrics.bump("cells_fabric")
        else:
            self.metrics.bump("cells_failed")
        if entry is not None:
            self.inflight.resolve_and_release(entry, payload)
        job.record_cell(
            scheme=cell.scheme_key, trace_name=cell.trace_name, index=cell.index,
            source=SOURCE_FABRIC, payload=payload,
        )

    def _run_owned_fabric(
        self, job: Job,
        owned: list[tuple[CellTask, InFlightCell | None]],
        checkpoint_cell: Callable[[str, str, Any], None],
    ) -> bool:
        """Hand this job's owned cells to the fleet and collect outcomes.

        Cells are inserted idempotently (``ON CONFLICT (job_id, idx)``),
        so resuming a checkpointed job re-offers the same rows and
        immediately collects whatever the fleet settled in the
        meantime.  Only *owned* cells reach the queue — everything the
        scheduler resolved from cache/checkpoint/coalescing stays out,
        which is what keeps the fleet from re-simulating known results.
        """
        from repro.fabric.queue import (
            DEAD as CELL_DEAD,
            DONE as CELL_DONE,
            FAILED as CELL_FAILED,
        )

        if not owned:
            return True
        spec = job.spec
        # The job row may be missing when this job was recovered from
        # state_dir before the fabric existed; (re)insert idempotently.
        self.fabric.submit(spec, job.id, expand=False)
        by_index: dict[int, tuple[CellTask, InFlightCell | None]] = {}
        descriptors: list[dict[str, Any]] = []
        for cell, entry in owned:
            by_index[cell.index] = (cell, entry)
            t_index = cell.index % len(spec.traces)
            scheme_i = cell.index // len(spec.traces)
            name, options = spec.schemes[scheme_i]
            descriptors.append(
                {
                    "idx": cell.index,
                    "scheme": {"name": name, "options": dict(options)},
                    "scheme_key": cell.scheme_key,
                    "trace_spec": spec.traces[t_index].canonical(),
                    "trace_label": cell.trace_name,
                    "sharer_key": spec.sharer_key,
                    "priority": spec.priority,
                    **(
                        {"max_attempts": spec.max_attempts}
                        if spec.max_attempts
                        else {}
                    ),
                }
            )
        self.fabric.add_cells(job.id, descriptors)

        pending = set(by_index)
        while pending:
            if job.stop_requested:
                # Leased cells keep running; their results settle in the
                # db and are collected on resume (or served from cache).
                for index in pending:
                    _, entry = by_index[index]
                    if entry is not None:
                        self.inflight.abandon_and_release(entry)
                return False
            for outcome in self.fabric.cell_outcomes(job.id):
                index = outcome["index"]
                if index not in pending:
                    continue
                state = outcome["state"]
                if state in (CELL_DONE, CELL_FAILED):
                    payload = outcome["payload"]
                elif state == CELL_DEAD:
                    payload = {
                        "status": "error",
                        "category": outcome["last_category"] or "ReproError",
                        "message": outcome["last_error"]
                        or "dead-lettered by the fabric",
                        "attempts": outcome["attempts"],
                    }
                else:
                    continue  # still pending/leased
                pending.discard(index)
                cell, entry = by_index[index]
                self._finish_fabric(job, cell, entry, payload, checkpoint_cell)
            if pending:
                try:
                    # The wait loop doubles as a reaper, so a fleet of
                    # external processes makes progress even if every
                    # dedicated reaper thread is dead.
                    self.fabric.reap()
                except Exception:
                    pass
                time.sleep(_WAIT_POLL)
        return True

    def _await_coalesced(
        self, job: Job, simulator: Simulator,
        waiting: list[tuple[CellTask, InFlightCell]],
        checkpoint_cell: Callable[[str, str, Any], None],
    ) -> bool:
        """Collect outcomes for cells another job is computing."""
        finished = True
        for cell, entry in waiting:
            while True:
                if job.stop_requested:
                    finished = False
                    break
                if not entry.wait(_WAIT_POLL):
                    continue
                if not entry.abandoned:
                    payload = entry.outcome
                    if payload["status"] == "ok":
                        self.metrics.bump("cells_coalesced")
                        checkpoint_cell(
                            cell.scheme_key, cell.trace_name, payload["result"]
                        )
                    else:
                        self.metrics.bump("cells_failed")
                    job.record_cell(
                        scheme=cell.scheme_key, trace_name=cell.trace_name,
                        index=cell.index, source=SOURCE_COALESCED, payload=payload,
                    )
                    break
                # Abandoned by a stopped owner: re-resolve ourselves.
                if self._try_cache(job, cell, checkpoint_cell):
                    break
                entry, is_owner = self.inflight.claim(cell.cache_id, job.id)
                if is_owner:
                    payload = self._simulate_cell(simulator, cell)
                    self._finish_owned(job, cell, entry, payload, checkpoint_cell)
                    break
        return finished
