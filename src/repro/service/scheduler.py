"""The scheduler: worker threads that turn queued jobs into results.

Each worker thread pops one job at a time from the
:class:`~repro.service.queue.JobQueue` and drives it through three
phases:

1. **Resolution** — every cell in sweep order is classified: already in
   this job's checkpoint manifest (``checkpoint``), present in the
   shared :class:`~repro.runner.cache.ResultCache` (``cache``), being
   computed right now by any job (``coalesced`` — the cell attaches to
   the in-flight entry), or owned by this job (``simulated``).
2. **Owned execution** — owned cells run in stop-checked batches, either
   serially through the runner's ``execute_cell`` unit or fanned across
   a :class:`~repro.runner.parallel.ParallelExecutor` process pool when
   ``sim_jobs > 1``.  Outcomes are cached *before* the in-flight entry
   resolves, so late claimants always find the cache.
3. **Waiting** — coalesced cells block on their in-flight entries; an
   abandoned entry (its owner was stopped mid-shutdown) sends the
   waiter back through resolution so no cell is ever stranded.

Graceful shutdown has two modes.  ``drain`` finishes every queued and
running job, then stops.  ``checkpoint`` stops running jobs at the next
cell boundary, persists their partial manifests and the queued jobs'
specs under ``state_dir``, and a scheduler restarted on the same
``state_dir`` resumes them — completed cells restored bit-for-bit from
the manifest, the remainder recomputed deterministically.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any

from repro.core.simulator import Simulator
from repro.errors import ServiceUnavailableError
from repro.runner.cache import ResultCache, cache_key, trace_fingerprint
from repro.runner.checkpoint import (
    CheckpointManager,
    result_from_json,
    result_to_json,
)
from repro.runner.resilient import RetryPolicy
from repro.service.coalesce import InFlightCell, InFlightTable
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SOURCE_CACHE,
    SOURCE_CHECKPOINT,
    SOURCE_COALESCED,
    SOURCE_SIMULATED,
    Job,
    JobStore,
)
from repro.service.queue import JobQueue
from repro.service.spec import JobSpec, TraceSpec

#: How long waiters sleep between stop-flag checks on an in-flight cell.
_WAIT_POLL = 0.1

JOB_FILE = "job.json"


class _Cell:
    """One cell of one job: sweep position plus resolved inputs."""

    __slots__ = (
        "index", "scheme_spec", "scheme_key", "trace", "trace_label", "key"
    )

    def __init__(self, index, scheme_spec, scheme_key, trace, trace_label, key):
        self.index = index
        self.scheme_spec = scheme_spec
        self.scheme_key = scheme_key
        self.trace = trace
        self.trace_label = trace_label
        self.key = key  # content-addressed cache key, or None


class Scheduler:
    """Owns the queue, the workers, and every shared dedup structure.

    Args:
        workers: concurrent jobs (one worker thread each).
        sim_jobs: processes per job's owned-cell batches (1 = in-thread).
        result_cache: shared content-addressed cache; created under
            ``state_dir/cache`` when a state dir is given and no cache
            is passed explicitly.
        state_dir: persistence root; enables checkpoint shutdown/resume.
        retry: per-cell transient-failure policy (runner semantics).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        sim_jobs: int = 1,
        result_cache: ResultCache | None = None,
        state_dir: str | Path | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.workers = max(1, workers)
        self.sim_jobs = max(1, sim_jobs)
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if result_cache is None and self.state_dir is not None:
            result_cache = ResultCache(self.state_dir / "cache")
        self.result_cache = result_cache
        self.retry = retry or RetryPolicy()

        self.queue = JobQueue()
        self.jobs = JobStore()
        self.inflight = InFlightTable()

        self._threads: list[threading.Thread] = []
        self._quit = threading.Event()
        self._checkpoint_mode = False
        #: jobs submitted but not yet terminal/parked (drain waits on 0).
        self._outstanding = 0
        self._idle = threading.Condition()
        self._started_at = time.monotonic()

        # Shared memos: canonical trace spec -> built Trace, and
        # cell key -> result JSON (the warm-process layer above the
        # on-disk ResultCache — works even with no cache configured).
        self._trace_memo: dict[str, Any] = {}
        self._result_memo: dict[str, Any] = {}
        self._memo_lock = threading.Lock()

        self._stats_lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "deduplicated": 0,
            "cells_simulated": 0,
            "cells_cache": 0,
            "cells_coalesced": 0,
            "cells_checkpoint": 0,
            "cell_errors": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Recover persisted jobs, then launch the worker threads."""
        if self.state_dir is not None:
            self._recover()
        for number in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{number}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, mode: str = "drain", timeout: float | None = None) -> None:
        """Stop the scheduler.

        Args:
            mode: ``"drain"`` finishes all queued and running jobs
                first; ``"checkpoint"`` stops running jobs at the next
                cell boundary and persists queue + partial manifests
                (requires ``state_dir`` for the persistence part — the
                stop-at-boundary behaviour works regardless).
            timeout: drain-mode bound on waiting for jobs to finish.
        """
        if mode not in ("drain", "checkpoint"):
            raise ValueError(f"shutdown mode must be drain/checkpoint, got {mode!r}")
        self.queue.close()
        if mode == "checkpoint":
            self._checkpoint_mode = True
            for job in self.jobs.all():
                if not job.finished:
                    job.request_stop()
        else:
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._idle:
                while self._outstanding:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                    self._idle.wait(remaining if remaining is not None else 0.5)
        self._quit.set()
        for job in self.queue.drain():
            # Still queued at quit: stays persisted for the next start.
            self._persist_job(job)
        for thread in self._threads:
            thread.join(timeout=10.0)

    @property
    def stopping(self) -> bool:
        return self.queue.closed

    # ------------------------------------------------------------------
    # Submission + views
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec, job_id: str | None = None) -> tuple[Job, bool]:
        """Queue a validated spec; returns ``(job, deduplicated)``."""
        if self._quit.is_set():
            raise ServiceUnavailableError("service is shutting down")
        job = Job(spec, job_id=job_id)
        accepted, deduplicated = self.queue.submit(job)
        with self._stats_lock:
            self._counters["submitted"] += 1
            if deduplicated:
                self._counters["deduplicated"] += 1
        if not deduplicated:
            self.jobs.add(accepted)
            with self._idle:
                self._outstanding += 1
            self._persist_job(accepted)
        return accepted, deduplicated

    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` payload: queue, job, cell, cache metrics."""
        with self._stats_lock:
            counters = dict(self._counters)
        cache_stats = None
        if self.result_cache is not None:
            cache_stats = {
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
                "quarantined": getattr(self.result_cache, "quarantined", 0),
                "entries": len(self.result_cache),
            }
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.workers,
            "sim_jobs": self.sim_jobs,
            "queue_depth": len(self.queue),
            "inflight_cells": len(self.inflight),
            "result_memo_entries": len(self._result_memo),
            "stopping": self.stopping,
            "jobs": {
                **self.jobs.state_counts(),
                "total": len(self.jobs),
                "submitted": counters["submitted"],
                "deduplicated": counters["deduplicated"],
            },
            "cells": {
                "simulated": counters["cells_simulated"],
                "cache": counters["cells_cache"],
                "coalesced": counters["cells_coalesced"],
                "checkpoint": counters["cells_checkpoint"],
                "errors": counters["cell_errors"],
            },
            "cache": cache_stats,
        }

    # ------------------------------------------------------------------
    # Persistence + recovery
    # ------------------------------------------------------------------

    def _job_dir(self, job_id: str) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / "jobs" / job_id

    def _persist_job(self, job: Job) -> None:
        """Write the job's spec + state to its directory (atomic)."""
        directory = self._job_dir(job.id)
        if directory is None:
            return
        directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "id": job.id,
                "state": job.state,
                "error": job.error,
                "spec": job.spec.canonical(),
            },
            indent=1,
            sort_keys=True,
        )
        path = directory / JOB_FILE
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(payload, "utf-8")
        os.replace(tmp, path)

    def _recover(self) -> None:
        """Re-create persisted jobs; unfinished ones go back on the queue."""
        from repro.service.jobs import TERMINAL_STATES
        from repro.service.spec import parse_job_spec

        jobs_root = self.state_dir / "jobs"
        if not jobs_root.is_dir():
            return
        for directory in sorted(jobs_root.iterdir()):
            job_file = directory / JOB_FILE
            if not job_file.is_file():
                continue
            try:
                persisted = json.loads(job_file.read_text("utf-8"))
                spec = parse_job_spec(persisted["spec"])
            except Exception:
                continue  # a corrupt job record never blocks startup
            job = Job(spec, job_id=persisted.get("id") or directory.name)
            self.jobs.add(job)
            if persisted.get("state") in TERMINAL_STATES:
                self._restore_terminal(job, persisted)
                continue
            _, deduplicated = self.queue.submit(job)
            if deduplicated:
                # Two persisted copies of one dedup'd spec: keep one.
                job.set_state(CANCELLED, error="deduplicated on recovery")
                self._persist_job(job)
            else:
                with self._idle:
                    self._outstanding += 1

    def _restore_terminal(self, job: Job, persisted: dict[str, Any]) -> None:
        """Rebuild a finished job's results from its manifest."""
        manager = CheckpointManager(self._job_dir(job.id))
        try:
            manifest = manager.load_manifest()
        except Exception:
            manifest = {"completed": {}}
        for scheme, per_trace in manifest.get("completed", {}).items():
            for trace_name, result_json in per_trace.items():
                job.record_cell(
                    scheme=scheme,
                    trace_name=trace_name,
                    index=-1,
                    source=SOURCE_CHECKPOINT,
                    payload={"status": "ok", "result": result_json, "attempts": 1},
                )
        job.set_state(persisted.get("state", DONE), error=persisted.get("error"))

    # ------------------------------------------------------------------
    # Trace plumbing
    # ------------------------------------------------------------------

    def _build_trace(self, tspec: TraceSpec) -> Any:
        """Build (or reuse) the trace for one trace spec.

        Workload traces are memoized on the canonical spec so identical
        jobs share one Trace object (and its fingerprint).  File-backed
        traces are rebuilt each time — they are lazy readers whose
        content can change between jobs.
        """
        if tspec.path is not None:
            return tspec.build()
        memo_key = json.dumps(tspec.canonical(), sort_keys=True)
        with self._memo_lock:
            trace = self._trace_memo.get(memo_key)
        if trace is not None:
            return trace
        trace = tspec.build()
        with self._memo_lock:
            if len(self._trace_memo) >= 32:
                self._trace_memo.pop(next(iter(self._trace_memo)))
            self._trace_memo.setdefault(memo_key, trace)
            return self._trace_memo[memo_key]

    def _cell_key(self, simulator: Simulator, scheme_spec, trace) -> str | None:
        """Content-addressed cell key (fingerprint memoized on the trace)."""
        try:
            fingerprint = getattr(trace, "_repro_fingerprint", None)
            if fingerprint is None:
                fingerprint = trace_fingerprint(trace)
                try:
                    trace._repro_fingerprint = fingerprint
                except AttributeError:
                    pass  # __slots__: recompute next time
            return cache_key(scheme_spec, simulator, fingerprint)
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._quit.is_set():
            job = self.queue.pop(timeout=0.2)
            if job is None:
                continue
            if self._checkpoint_mode:
                # Popped during a checkpoint shutdown: leave it queued.
                self._persist_job(job)
                self._settle(job)
                continue
            try:
                self._run_job(job)
            finally:
                self._settle(job)

    def _settle(self, job: Job) -> None:
        """One submitted job reached terminal/parked; unblock drainers."""
        with self._idle:
            self._outstanding -= 1
            self._idle.notify_all()

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[counter] += amount

    def _run_job(self, job: Job) -> None:
        job.set_state(RUNNING)
        self._persist_job(job)
        try:
            completed = self._execute_job(job)
        except Exception as exc:  # infrastructure failure, not a cell failure
            job.set_state(FAILED, error=f"{type(exc).__name__}: {exc}")
        else:
            if completed:
                job.set_state(DONE)
            else:
                # Stopped at a cell boundary: back to queued, resumable.
                job.state = QUEUED
                job.append_event(
                    {"type": "job", "job": job.id, "state": QUEUED,
                     "reason": "checkpointed"}
                )
        finally:
            if job.finished:
                self.queue.job_finished(job)
            self._persist_job(job)

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------

    def _execute_job(self, job: Job) -> bool:
        """Run one job's sweep; returns True when every cell finished."""
        spec = job.spec
        simulator = Simulator(sharer_key=spec.sharer_key)
        manager = None
        manifest: dict[str, Any] | None = None
        job_dir = self._job_dir(job.id)
        if job_dir is not None:
            manager = CheckpointManager(job_dir)
            fingerprint = {"job_spec": spec.spec_hash()}
            if manager.exists():
                manifest = manager.load_manifest(fingerprint)
            else:
                manifest = manager.new_manifest(fingerprint)
                manager.save_manifest(manifest)
        restored = manifest["completed"] if manifest is not None else {}

        # Build each trace once; a failed build poisons only its cells.
        traces: list[Any] = []
        build_errors: list[Exception | None] = []
        labels: list[str] = []
        for tspec in spec.traces:
            label = tspec.workload or os.path.basename(tspec.path or "?")
            labels.append(label)
            try:
                trace = self._build_trace(tspec)
            except Exception as exc:
                traces.append(None)
                build_errors.append(exc)
            else:
                traces.append(trace)
                build_errors.append(None)

        def checkpoint_cell(scheme: str, trace_name: str, result_json) -> None:
            if manifest is None:
                return
            manifest["completed"].setdefault(scheme, {})[trace_name] = result_json
            manager.save_manifest(manifest)

        owned: list[tuple[_Cell, InFlightCell | None]] = []
        waiting: list[tuple[_Cell, InFlightCell]] = []
        index = 0
        for scheme_spec, skey in zip(spec.scheme_specs(), spec.scheme_keys()):
            for t_index, trace in enumerate(traces):
                cell_index = index
                index += 1
                if trace is None:
                    exc = build_errors[t_index]
                    job.record_cell(
                        scheme=skey, trace_name=labels[t_index], index=cell_index,
                        source=SOURCE_SIMULATED,
                        payload={
                            "status": "error",
                            "category": type(exc).__name__,
                            "message": str(exc),
                            "attempts": 1,
                        },
                    )
                    self._bump("cell_errors")
                    continue
                if trace.name in restored.get(skey, {}):
                    job.record_cell(
                        scheme=skey, trace_name=trace.name, index=cell_index,
                        source=SOURCE_CHECKPOINT,
                        payload={
                            "status": "ok",
                            "result": restored[skey][trace.name],
                            "attempts": 1,
                        },
                    )
                    self._bump("cells_checkpoint")
                    continue
                cell = _Cell(
                    cell_index, scheme_spec, skey, trace, trace.name,
                    self._cell_key(simulator, scheme_spec, trace),
                )
                resolved = self._try_cache(job, cell, checkpoint_cell)
                if resolved:
                    continue
                if cell.key is None:
                    owned.append((cell, None))
                    continue
                entry, is_owner = self.inflight.claim(cell.key, job.id)
                if is_owner:
                    owned.append((cell, entry))
                else:
                    waiting.append((cell, entry))

        finished = self._run_owned(job, simulator, owned, checkpoint_cell)
        finished = self._await_coalesced(
            job, simulator, waiting, checkpoint_cell
        ) and finished
        return finished

    def _try_cache(self, job: Job, cell: _Cell, checkpoint_cell) -> bool:
        """Serve *cell* from the result memo or the on-disk cache."""
        if cell.key is None:
            return False
        with self._memo_lock:
            memo_json = self._result_memo.get(cell.key)
        if memo_json is not None:
            # Content-addressed: relabel under this job's names.
            result_json = {
                **memo_json,
                "scheme": cell.scheme_key,
                "trace_name": cell.trace_label,
            }
        elif self.result_cache is not None:
            cached = self.result_cache.get(cell.key)
            if cached is None:
                return False
            cached.scheme = cell.scheme_key
            cached.trace_name = cell.trace_label
            result_json = result_to_json(cached)
        else:
            return False
        job.record_cell(
            scheme=cell.scheme_key, trace_name=cell.trace_label, index=cell.index,
            source=SOURCE_CACHE,
            payload={"status": "ok", "result": result_json, "attempts": 1},
        )
        self._bump("cells_cache")
        checkpoint_cell(cell.scheme_key, cell.trace_label, result_json)
        return True

    def _finish_owned(
        self, job: Job, cell: _Cell, entry: InFlightCell | None,
        payload: dict[str, Any], checkpoint_cell,
    ) -> None:
        """Record one simulated cell: cache, manifest, in-flight, event."""
        if payload["status"] == "ok":
            if cell.key is not None:
                with self._memo_lock:
                    if len(self._result_memo) >= 4096:
                        self._result_memo.pop(next(iter(self._result_memo)))
                    self._result_memo[cell.key] = payload["result"]
                if self.result_cache is not None:
                    try:
                        self.result_cache.put(
                            cell.key, result_from_json(payload["result"])
                        )
                    except Exception:
                        pass  # the cache can only skip work, not break a job
            self._bump("cells_simulated")
            checkpoint_cell(cell.scheme_key, cell.trace_label, payload["result"])
        else:
            self._bump("cell_errors")
        # Resolve after the cache write so late claimants hit the cache.
        if entry is not None:
            self.inflight.resolve_and_release(entry, payload)
        job.record_cell(
            scheme=cell.scheme_key, trace_name=cell.trace_label, index=cell.index,
            source=SOURCE_SIMULATED, payload=payload,
        )

    def _run_owned(
        self, job: Job, simulator: Simulator,
        owned: list[tuple[_Cell, InFlightCell | None]], checkpoint_cell,
    ) -> bool:
        """Execute this job's owned cells in stop-checked batches."""
        from repro.runner.parallel import ParallelExecutor, execute_cell

        batch_size = self.sim_jobs if self.sim_jobs > 1 else 1
        position = 0
        while position < len(owned):
            if job.stop_requested:
                for cell, entry in owned[position:]:
                    if entry is not None:
                        self.inflight.abandon_and_release(entry)
                return False
            batch = owned[position : position + batch_size]
            position += len(batch)
            if len(batch) > 1:
                executor = ParallelExecutor(jobs=self.sim_jobs, retry=self.retry)
                cells = [
                    (cell.scheme_spec, cell.scheme_key, cell.trace)
                    for cell, _ in batch
                ]

                def on_complete(i: int, payload: dict[str, Any]) -> None:
                    cell, entry = batch[i]
                    self._finish_owned(job, cell, entry, payload, checkpoint_cell)

                executor.run(simulator, cells, on_complete=on_complete)
            else:
                cell, entry = batch[0]
                payload = execute_cell(
                    {
                        "simulator": simulator,
                        "spec": cell.scheme_spec,
                        "key": cell.scheme_key,
                        "trace": cell.trace,
                        "retry": self.retry,
                    }
                )
                self._finish_owned(job, cell, entry, payload, checkpoint_cell)
        return True

    def _await_coalesced(
        self, job: Job, simulator: Simulator,
        waiting: list[tuple[_Cell, InFlightCell]], checkpoint_cell,
    ) -> bool:
        """Collect outcomes for cells another job is computing."""
        from repro.runner.parallel import execute_cell

        finished = True
        for cell, entry in waiting:
            while True:
                if job.stop_requested:
                    finished = False
                    break
                if not entry.wait(_WAIT_POLL):
                    continue
                if not entry.abandoned:
                    payload = entry.outcome
                    if payload["status"] == "ok":
                        self._bump("cells_coalesced")
                        checkpoint_cell(
                            cell.scheme_key, cell.trace_label, payload["result"]
                        )
                    else:
                        self._bump("cell_errors")
                    job.record_cell(
                        scheme=cell.scheme_key, trace_name=cell.trace_label,
                        index=cell.index, source=SOURCE_COALESCED, payload=payload,
                    )
                    break
                # Abandoned by a stopped owner: re-resolve ourselves.
                if self._try_cache(job, cell, checkpoint_cell):
                    break
                entry, is_owner = self.inflight.claim(cell.key, job.id)
                if is_owner:
                    payload = execute_cell(
                        {
                            "simulator": simulator,
                            "spec": cell.scheme_spec,
                            "key": cell.scheme_key,
                            "trace": cell.trace,
                            "retry": self.retry,
                        }
                    )
                    self._finish_owned(job, cell, entry, payload, checkpoint_cell)
                    break
        return finished
