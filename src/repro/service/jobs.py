"""Jobs: the unit of work the service queues, runs, and streams.

A :class:`Job` wraps one validated :class:`~repro.service.spec.JobSpec`
with lifecycle state and an append-only event log.  Events are plain
JSON-safe dicts — exactly the NDJSON lines ``GET /jobs/<id>/events``
streams — and appending one wakes every streamer blocked in
:meth:`Job.wait_for_event`, so delivery is push-shaped even though the
transport is plain HTTP.

Thread model: every mutation goes through the job's condition variable.
The scheduler's worker threads append events and flip states; HTTP
handler threads only ever read (snapshot) or block waiting for the next
event.  :class:`JobStore` is the id → job map with the same discipline.
"""

from __future__ import annotations

import threading
import uuid
from typing import Any, Iterator

from repro.errors import JobNotFoundError
from repro.service.spec import JobSpec

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: How a cell outcome was obtained.
SOURCE_SIMULATED = "simulated"
SOURCE_CACHE = "cache"
SOURCE_COALESCED = "coalesced"
SOURCE_CHECKPOINT = "checkpoint"
SOURCE_FABRIC = "fabric"

CELL_SOURCES = (
    SOURCE_SIMULATED,
    SOURCE_CACHE,
    SOURCE_COALESCED,
    SOURCE_CHECKPOINT,
    SOURCE_FABRIC,
)


def new_job_id() -> str:
    """A fresh, URL-safe job id."""
    return uuid.uuid4().hex[:12]


class Job:
    """One submitted sweep: spec + lifecycle + event log.

    Args:
        spec: the validated job spec.
        job_id: explicit id (used when recovering a persisted job);
            a fresh one is generated when omitted.
    """

    def __init__(self, spec: JobSpec, job_id: str | None = None) -> None:
        self.id = job_id or new_job_id()
        self.spec = spec
        self.state = QUEUED
        self.error: str | None = None
        #: completed cells: results[scheme_key][trace_name] -> result JSON
        self.results: dict[str, dict[str, Any]] = {}
        #: per-source completed-cell counts (simulated/cache/coalesced/...)
        self.cell_sources: dict[str, int] = {source: 0 for source in CELL_SOURCES}
        self.cell_errors = 0
        self._events: list[dict[str, Any]] = []
        self._cond = threading.Condition()
        self.stop_requested = False

    # -- state ---------------------------------------------------------

    def set_state(self, state: str, error: str | None = None) -> None:
        """Move to *state* (appending the terminal event when terminal)."""
        with self._cond:
            if self.state in TERMINAL_STATES:
                return
            self.state = state
            if error is not None:
                self.error = error
            if state in TERMINAL_STATES:
                self._append_locked(
                    {
                        "type": "job",
                        "job": self.id,
                        "state": state,
                        "error": self.error,
                        "cells": dict(self.cell_sources),
                        "cell_errors": self.cell_errors,
                    }
                )
            self._cond.notify_all()

    def request_stop(self) -> None:
        """Ask the running sweep to stop at the next cell boundary."""
        with self._cond:
            self.stop_requested = True
            self._cond.notify_all()

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    # -- events --------------------------------------------------------

    def _append_locked(self, event: dict[str, Any]) -> None:
        event["seq"] = len(self._events)
        self._events.append(event)
        self._cond.notify_all()

    def append_event(self, event: dict[str, Any]) -> None:
        """Append one event (stamping ``seq``) and wake streamers."""
        with self._cond:
            self._append_locked(event)

    def record_cell(
        self,
        *,
        scheme: str,
        trace_name: str,
        index: int,
        source: str,
        payload: dict[str, Any],
    ) -> None:
        """Record one finished cell and emit its event.

        Args:
            scheme: the cell's scheme result key.
            trace_name: the cell's trace name.
            index: the cell's position in sweep order.
            source: one of :data:`CELL_SOURCES`.
            payload: the runner outcome payload (``status`` ok/error).
        """
        event: dict[str, Any] = {
            "type": "cell",
            "job": self.id,
            "scheme": scheme,
            "trace": trace_name,
            "index": index,
            "source": source,
            "status": payload["status"],
            "attempts": payload.get("attempts", 1),
        }
        with self._cond:
            if payload["status"] == "ok":
                self.results.setdefault(scheme, {})[trace_name] = payload["result"]
                self.cell_sources[source] = self.cell_sources.get(source, 0) + 1
                event["result"] = payload["result"]
            else:
                self.cell_errors += 1
                event["error"] = {
                    "category": payload.get("category", "ReproError"),
                    "message": payload.get("message", ""),
                }
            self._append_locked(event)

    def events_since(self, seq: int) -> list[dict[str, Any]]:
        """Snapshot of events with ``seq >= seq``."""
        with self._cond:
            return list(self._events[seq:])

    def wait_for_event(self, seq: int, timeout: float = 1.0) -> list[dict[str, Any]]:
        """Block until an event with ``seq >= seq`` exists (or timeout)."""
        with self._cond:
            if len(self._events) <= seq and not self.finished:
                self._cond.wait(timeout)
            return list(self._events[seq:])

    def stream_events(
        self, poll: float = 0.5, stop: threading.Event | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield every event in order, following until the job is terminal."""
        seq = 0
        while True:
            batch = self.wait_for_event(seq, timeout=poll)
            for event in batch:
                yield event
            seq += len(batch)
            with self._cond:
                drained = self.finished and seq >= len(self._events)
            if drained or (stop is not None and stop.is_set()):
                return

    # -- views ---------------------------------------------------------

    def completed_cells(self) -> int:
        with self._cond:
            return sum(self.cell_sources.values())

    def status(self, include_results: bool = False) -> dict[str, Any]:
        """JSON-safe status snapshot (the ``GET /jobs/<id>`` body)."""
        with self._cond:
            body: dict[str, Any] = {
                "id": self.id,
                "state": self.state,
                "error": self.error,
                "priority": self.spec.priority,
                "spec": self.spec.canonical(),
                "spec_hash": self.spec.spec_hash(),
                "events": len(self._events),
                "cells": {
                    "total": self.spec.cell_count(),
                    "completed": sum(self.cell_sources.values()),
                    "errors": self.cell_errors,
                    **{
                        source: count
                        for source, count in self.cell_sources.items()
                    },
                },
            }
            if include_results or self.state == DONE:
                body["results"] = {
                    scheme: dict(per_trace)
                    for scheme, per_trace in self.results.items()
                }
            return body


class JobStore:
    """Thread-safe id → :class:`Job` map."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()

    def add(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.id] = job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"unknown job id {job_id!r}")
        return job

    def all(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def state_counts(self) -> dict[str, int]:
        """``{state: job count}`` across every known job."""
        counts: dict[str, int] = {
            state: 0 for state in (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
        }
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)
