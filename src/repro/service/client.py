"""Thin synchronous client for the simulation service.

:class:`ServiceClient` speaks the service's HTTP/JSON dialect with
nothing but :mod:`urllib` — no dependency on the rest of the package is
*required* at call time, so a stripped-down deployment can vendor this
one file next to a ``repro list --json`` dump for client-side name
validation.  (The optional :meth:`ServiceClient.results` helper does
import the checkpoint codec to hand back real
:class:`~repro.core.result.SimulationResult` objects.)

Typical use::

    client = ServiceClient("http://127.0.0.1:8642")
    job = client.submit({"schemes": ["dir0b", "dragon"],
                         "traces": [{"workload": "pops", "length": 2000}]})
    for event in client.stream_events(job["id"]):
        print(event["type"], event.get("scheme"), event.get("status"))
    final = client.job(job["id"])
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.errors import (
    JobNotFoundError,
    JobSpecError,
    ServiceError,
    ServiceUnavailableError,
)

_ERROR_BY_STATUS = {
    400: JobSpecError,
    404: JobNotFoundError,
    503: ServiceUnavailableError,
}


class ServiceClient:
    """Synchronous HTTP client for one service endpoint.

    Args:
        base_url: e.g. ``http://127.0.0.1:8642`` (trailing slash ok).
        timeout: per-request socket timeout in seconds.  Streaming
            requests use it as the *read* timeout between events, so
            keep it above the server's 0.5 s event poll.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> Any:
        request = urllib.request.Request(
            self.base_url + path,
            method=method,
            data=None if body is None else json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._as_service_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"service at {self.base_url} unreachable: {exc.reason}"
            ) from None

    @staticmethod
    def _as_service_error(exc: urllib.error.HTTPError) -> ServiceError:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
            message = payload.get("error", str(exc))
        except Exception:
            message = str(exc)
        cls = _ERROR_BY_STATUS.get(exc.code, ServiceError)
        return cls(message)

    # -- API -----------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def submit(self, spec: dict[str, Any]) -> dict[str, Any]:
        """``POST /jobs``; returns the job status (plus ``deduplicated``)."""
        return self._request("POST", "/jobs", body=spec)

    def job(self, job_id: str) -> dict[str, Any]:
        """``GET /jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def shutdown(self, mode: str = "drain") -> dict[str, Any]:
        """``POST /shutdown`` — ask the server to stop gracefully."""
        return self._request("POST", "/shutdown", body={"mode": mode})

    def stream_events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """``GET /jobs/<id>/events`` — yield NDJSON events as they arrive.

        The iterator ends when the server closes the stream (job reached
        a terminal state, or the server is shutting down).
        """
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events", method="GET"
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raise self._as_service_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"service at {self.base_url} unreachable: {exc.reason}"
            ) from None
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(self, job_id: str) -> dict[str, Any]:
        """Follow the event stream until the job is terminal; final status."""
        for event in self.stream_events(job_id):
            if event.get("type") == "job" and event.get("state") in (
                "done", "failed", "cancelled"
            ):
                break
        return self.job(job_id)

    def results(self, job_id: str) -> dict[str, dict[str, Any]]:
        """A finished job's results as ``SimulationResult`` objects.

        Returns ``{scheme key: {trace name: SimulationResult}}``,
        decoded with the same codec the checkpoint manifest uses, so
        the objects are bit-identical to a local run's.
        """
        from repro.runner.checkpoint import result_from_json

        status = self.job(job_id)
        payload = status.get("results")
        if payload is None:
            raise ServiceError(
                f"job {job_id} has no results yet (state {status.get('state')!r})"
            )
        return {
            scheme: {
                trace_name: result_from_json(result_json)
                for trace_name, result_json in per_trace.items()
            }
            for scheme, per_trace in payload.items()
        }
