"""repro.service — the simulation service (async jobs over HTTP/JSON).

The first long-running subsystem in the repo: instead of one-shot CLI
sweeps, a server process keeps the trace memo, the content-addressed
:class:`~repro.runner.cache.ResultCache`, and a pool of simulation
workers warm, and multiplexes many callers onto them:

* :mod:`repro.service.spec` — the JSON job-spec format and validation.
* :mod:`repro.service.jobs` — job lifecycle + append-only event log.
* :mod:`repro.service.queue` — priority queue with job-level dedup.
* :mod:`repro.service.coalesce` — cell-level request coalescing: one
  simulation per identical in-flight cell, ever.
* :mod:`repro.service.scheduler` — worker threads fanning cells onto
  the engine's :class:`~repro.engine.backends.ProcessPoolBackend`,
  with checkpointed graceful shutdown and restart-resume.
* :mod:`repro.service.api` — the stdlib HTTP server (``POST /jobs``,
  ``GET /jobs/<id>``, NDJSON ``GET /jobs/<id>/events``, ``/healthz``,
  ``/stats``, ``POST /shutdown``).
* :mod:`repro.service.client` — :class:`ServiceClient`, a thin
  synchronous client.

See ``docs/SERVICE.md`` for the API reference and deployment notes,
and ``examples/service_client.py`` for an end-to-end walkthrough.
"""

from repro.service.api import ServiceServer, serve
from repro.service.client import ServiceClient
from repro.service.coalesce import InFlightCell, InFlightTable
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobStore,
)
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.spec import JobSpec, TraceSpec, parse_job_spec

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TERMINAL_STATES",
    "InFlightCell",
    "InFlightTable",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobStore",
    "Scheduler",
    "ServiceClient",
    "ServiceServer",
    "TraceSpec",
    "parse_job_spec",
    "serve",
]
