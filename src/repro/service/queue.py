"""The job queue: priority ordering, blocking pop, job-level dedup.

Jobs are ordered by ``(-priority, submission sequence)`` — larger
priority first, FIFO within a priority.  :meth:`JobQueue.submit`
optionally dedups: when the spec asks for it (``"dedup": true``) and an
identical spec (same :meth:`~repro.service.spec.JobSpec.spec_hash`) is
already queued or running, the existing job is returned instead of a
copy being enqueued.  Dedup is job-level sugar; even without it,
duplicate *work* is eliminated cell-by-cell by the scheduler's
coalescing layer (:mod:`repro.service.coalesce`).

``pop`` blocks with a timeout so scheduler workers can notice shutdown;
``close`` wakes every blocked worker and makes further submissions
raise :class:`~repro.errors.ServiceUnavailableError`.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro.errors import ServiceUnavailableError
from repro.service.jobs import Job


class JobQueue:
    """Priority queue of :class:`~repro.service.jobs.Job` with dedup."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Job]] = []
        self._cond = threading.Condition()
        self._seq = itertools.count()
        #: spec hash -> active (queued or running) job, for dedup.
        self._active: dict[str, Job] = {}
        self._closed = False

    # -- submission ----------------------------------------------------

    def submit(self, job: Job) -> tuple[Job, bool]:
        """Enqueue *job*; returns ``(job, deduplicated)``.

        When the job's spec has ``dedup`` set and an identical spec is
        already active, the active job is returned with
        ``deduplicated=True`` and *job* is discarded.
        """
        spec_hash = job.spec.spec_hash()
        with self._cond:
            if self._closed:
                raise ServiceUnavailableError("service is shutting down")
            if job.spec.dedup:
                existing = self._active.get(spec_hash)
                if existing is not None and not existing.finished:
                    return existing, True
            self._active[spec_hash] = job
            heapq.heappush(self._heap, (-job.spec.priority, next(self._seq), job))
            self._cond.notify()
            return job, False

    # -- consumption ---------------------------------------------------

    def pop(self, timeout: float = 0.5) -> Job | None:
        """The next job by priority, or ``None`` on timeout/closed queue.

        A closed, empty queue returns immediately — workers noticing
        shutdown must not sit out the full timeout first.
        """
        with self._cond:
            if not self._heap and not self._closed:
                self._cond.wait(timeout)
            if not self._heap:
                return None
            _, _, job = heapq.heappop(self._heap)
            return job

    def job_finished(self, job: Job) -> None:
        """Drop *job* from the dedup table once it is terminal."""
        spec_hash = job.spec.spec_hash()
        with self._cond:
            if self._active.get(spec_hash) is job:
                del self._active[spec_hash]

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Refuse further submissions and wake blocked workers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def drain(self) -> list[Job]:
        """Remove and return every queued job (used at shutdown)."""
        with self._cond:
            jobs = [job for _, _, job in sorted(self._heap)]
            self._heap.clear()
            return jobs

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)
