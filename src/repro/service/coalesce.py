"""Cell-level request coalescing: one simulation per identical cell.

A cell's identity is its content-addressed cache key
(:func:`repro.runner.cache.cache_key`): trace fingerprint + scheme +
options + simulator configuration.  When two jobs — or the same job
submitted twice — contain the same cell, only the first claimant
simulates it; everyone else blocks on the :class:`InFlightCell` entry
and receives the owner's outcome payload verbatim, so coalesced results
are bit-identical by construction.

Ownership can be *abandoned* (the owning job was stopped at a shutdown
boundary before computing the cell).  Waiters then wake with ``None``
and re-enter resolution — typically becoming the new owner themselves —
so an interrupted job never strands another job's cells.
"""

from __future__ import annotations

import threading
from typing import Any


class InFlightCell:
    """One cell being computed; waiters block until resolve/abandon."""

    def __init__(self, key: str, owner: str) -> None:
        self.key = key
        self.owner = owner
        self.outcome: dict[str, Any] | None = None
        self.abandoned = False
        self._event = threading.Event()

    def resolve(self, outcome: dict[str, Any]) -> None:
        """Publish the owner's outcome payload and wake waiters."""
        self.outcome = outcome
        self._event.set()

    def abandon(self) -> None:
        """The owner gave up without an outcome; wake waiters empty-handed."""
        self.abandoned = True
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """True once resolved or abandoned."""
        return self._event.wait(timeout)


class InFlightTable:
    """The shared key → :class:`InFlightCell` registry."""

    def __init__(self) -> None:
        self._cells: dict[str, InFlightCell] = {}
        self._lock = threading.Lock()
        #: cells whose computation was shared with at least one waiter
        self.coalesced_total = 0

    def claim(self, key: str, owner: str) -> tuple[InFlightCell, bool]:
        """Claim *key*; returns ``(entry, is_owner)``.

        The first claimant becomes the owner (and must later
        ``resolve_and_release`` or ``abandon_and_release`` the entry);
        later claimants get the same entry with ``is_owner=False`` and
        should :meth:`InFlightCell.wait` on it.
        """
        with self._lock:
            entry = self._cells.get(key)
            if entry is not None and not entry.abandoned:
                self.coalesced_total += 1
                return entry, False
            entry = InFlightCell(key, owner)
            self._cells[key] = entry
            return entry, True

    def _release(self, entry: InFlightCell) -> None:
        with self._lock:
            if self._cells.get(entry.key) is entry:
                del self._cells[entry.key]

    def resolve_and_release(self, entry: InFlightCell, outcome: dict[str, Any]) -> None:
        """Publish *outcome* and retire the entry from the table."""
        entry.resolve(outcome)
        self._release(entry)

    def abandon_and_release(self, entry: InFlightCell) -> None:
        """Retire the entry without an outcome (owner was stopped)."""
        entry.abandon()
        self._release(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)
