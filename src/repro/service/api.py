"""The HTTP/JSON face of the service (stdlib ``ThreadingHTTPServer``).

Endpoints::

    POST /jobs               submit a job spec        -> 202 job status
    GET  /jobs/<id>          job status (results when done)
    GET  /jobs/<id>/events   NDJSON stream, follows until terminal
    GET  /healthz            liveness
    GET  /stats              queue/cache/cell metrics (+ fabric fleet)
    GET  /dlq                fabric dead-letter queue (exhausted cells)
    POST /shutdown           graceful stop {"mode": "drain"|"checkpoint"}

Error mapping: :class:`~repro.errors.JobSpecError` → 400,
:class:`~repro.errors.JobNotFoundError` → 404,
:class:`~repro.errors.ServiceUnavailableError` → 503, anything else
→ 500; every error body is ``{"error": ..., "category": ...}``.

The event stream is plain HTTP/1.0-style: no ``Content-Length``, one
JSON object per line, flushed as produced, connection close marks the
end.  Each streaming client occupies one server thread
(``ThreadingHTTPServer`` with daemon threads), which is the intended
trade at this scale — the simulation workers live elsewhere.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import (
    JobNotFoundError,
    JobSpecError,
    ServiceUnavailableError,
)
from repro.service.scheduler import Scheduler
from repro.service.spec import parse_job_spec

#: Largest request body accepted, in bytes (a job spec, not a trace).
MAX_BODY = 4 * 1024 * 1024


class ServiceServer:
    """One scheduler wrapped in an HTTP server.

    Args:
        scheduler: the (not yet started) scheduler to serve.
        host: bind address.
        port: bind port; 0 picks a free one (see :attr:`port`).
    """

    def __init__(
        self, scheduler: Scheduler, host: str = "127.0.0.1", port: int = 8642
    ) -> None:
        self.scheduler = scheduler
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None
        self.stop_event = threading.Event()
        #: set by POST /shutdown so the serve loop can initiate the stop
        self.requested_shutdown_mode: str | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Start the scheduler workers and the HTTP accept loop."""
        self.scheduler.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-service-http",
            daemon=True,
        )
        self._serve_thread.start()

    def stop(self, mode: str = "drain", timeout: float | None = None) -> None:
        """Graceful shutdown: scheduler first, then the HTTP listener."""
        self.scheduler.shutdown(mode=mode, timeout=timeout)
        self.stop_event.set()
        self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._httpd.server_close()

    def request_shutdown(self, mode: str) -> None:
        """Record a client-requested shutdown (acted on by the serve loop)."""
        self.requested_shutdown_mode = mode
        self.stop_event.set()


def _make_handler(server: ServiceServer) -> type[BaseHTTPRequestHandler]:
    scheduler = server.scheduler

    class Handler(BaseHTTPRequestHandler):
        # One request per connection; close delimits the event stream.
        protocol_version = "HTTP/1.0"

        # -- plumbing --------------------------------------------------

        def log_message(self, format: str, *args: Any) -> None:
            pass  # the service logs through events, not per-request lines

        def _send_json(self, status: int, body: dict[str, Any]) -> None:
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_error_json(self, exc: Exception) -> None:
            if isinstance(exc, JobSpecError):
                status = 400
            elif isinstance(exc, JobNotFoundError):
                status = 404
            elif isinstance(exc, ServiceUnavailableError):
                status = 503
            else:
                status = 500
            self._send_json(
                status, {"error": str(exc), "category": type(exc).__name__}
            )

        def _read_body(self) -> Any:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY:
                raise JobSpecError(f"request body too large ({length} bytes)")
            raw = self.rfile.read(length) if length else b"{}"
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise JobSpecError(f"request body is not valid JSON: {exc}") from exc

        # -- routes ----------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            try:
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/healthz":
                    self._send_json(
                        200,
                        {
                            "status": "stopping" if scheduler.stopping else "ok",
                            "uptime_s": scheduler.stats()["uptime_s"],
                        },
                    )
                elif path == "/stats":
                    self._send_json(200, scheduler.stats())
                elif path == "/dlq":
                    fabric = scheduler.fabric
                    self._send_json(
                        200,
                        {
                            "enabled": fabric is not None,
                            "dead": fabric.dead_letters() if fabric else [],
                        },
                    )
                elif path.startswith("/jobs/") and path.endswith("/events"):
                    job_id = path[len("/jobs/"):-len("/events")].strip("/")
                    self._stream_events(job_id)
                elif path.startswith("/jobs/"):
                    job_id = path[len("/jobs/"):]
                    job = scheduler.jobs.get(job_id)
                    self._send_json(200, job.status())
                else:
                    self._send_json(404, {"error": f"no such route {path!r}",
                                          "category": "JobNotFoundError"})
            except BrokenPipeError:
                pass
            except Exception as exc:
                self._send_error_json(exc)

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            try:
                path = self.path.split("?", 1)[0].rstrip("/")
                if path == "/jobs":
                    spec = parse_job_spec(self._read_body())
                    job, deduplicated = scheduler.submit(spec)
                    body = job.status()
                    body["deduplicated"] = deduplicated
                    self._send_json(202, body)
                elif path == "/shutdown":
                    body = self._read_body()
                    mode = body.get("mode", "drain")
                    if mode not in ("drain", "checkpoint"):
                        raise JobSpecError(
                            f"shutdown mode must be drain/checkpoint, got {mode!r}"
                        )
                    self._send_json(202, {"stopping": True, "mode": mode})
                    server.request_shutdown(mode)
                else:
                    self._send_json(404, {"error": f"no such route {path!r}",
                                          "category": "JobNotFoundError"})
            except BrokenPipeError:
                pass
            except Exception as exc:
                self._send_error_json(exc)

        # -- streaming -------------------------------------------------

        def _stream_events(self, job_id: str) -> None:
            job = scheduler.jobs.get(job_id)
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Cache-Control", "no-cache")
            self.end_headers()
            try:
                for event in job.stream_events(poll=0.5, stop=server.stop_event):
                    line = json.dumps(event, sort_keys=True) + "\n"
                    self.wfile.write(line.encode("utf-8"))
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass  # client went away; nothing to clean up

    return Handler


def serve(
    scheduler: Scheduler, host: str = "127.0.0.1", port: int = 8642
) -> ServiceServer:
    """Build, start, and return a :class:`ServiceServer` (non-blocking)."""
    server = ServiceServer(scheduler, host=host, port=port)
    server.start()
    return server
