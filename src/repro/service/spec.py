"""Job specifications: the wire format a sweep request travels in.

A job spec is a plain JSON object describing one (scheme × trace)
sweep::

    {
      "schemes": ["dir0b", {"name": "dirinb", "options": {"num_pointers": 2}}],
      "traces":  [{"workload": "pops", "length": 2000, "seed": 7},
                  {"path": "traces/pero.bin"}],
      "sharer_key": "pid",
      "priority": 0,
      "dedup": false,
      "tags": {"study": "bus-discipline"}
    }

:func:`parse_job_spec` validates the shape eagerly — unknown schemes and
workloads are rejected at submission time with
:class:`~repro.errors.JobSpecError`, not discovered mid-sweep — and the
parsed :class:`JobSpec` canonicalizes to a stable JSON string whose
SHA-256 (:meth:`JobSpec.spec_hash`) is the identity the queue uses for
job-level dedup.  Trace *content* identity (used for cell-level
coalescing and the result cache) is separate and computed from the
built trace, so two specs naming the same file differently still
coalesce per cell.

Validation uses the same registries the CLI exposes via
``repro list --json``, so a remote client can pre-validate names from
that machine-readable listing without importing this package.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.experiment import scheme_key
from repro.errors import JobSpecError
from repro.protocols.registry import available_protocols
from repro.trace.stream import Trace
from repro.workloads.micro import MICRO_GENERATORS
from repro.workloads.modern import MODERN_GENERATORS
from repro.workloads.registry import DEFAULT_LENGTH, available_workloads, make_trace

_SHARER_KEYS = ("pid", "cpu")


def known_workloads() -> list[str]:
    """Full workloads plus ``micro-`` and ``modern-`` generator names."""
    return (
        available_workloads()
        + [f"micro-{name}" for name in MICRO_GENERATORS]
        + [f"modern-{name}" for name in MODERN_GENERATORS]
    )


@dataclass(frozen=True)
class TraceSpec:
    """One trace input: either a named workload or a trace file path."""

    workload: str | None = None
    path: str | None = None
    length: int = DEFAULT_LENGTH
    seed: int | None = None

    def canonical(self) -> dict[str, Any]:
        """JSON-safe dict with a stable field order (for hashing)."""
        if self.path is not None:
            return {"path": self.path}
        return {"workload": self.workload, "length": self.length, "seed": self.seed}

    def build(self) -> Trace:
        """Materialize the trace (generate the workload or load the file)."""
        if self.path is not None:
            from repro.trace.io import load_trace

            return load_trace(self.path, lazy=True)
        kwargs: dict[str, Any] = {} if self.seed is None else {"seed": self.seed}
        if self.workload.startswith("micro-"):
            generator = MICRO_GENERATORS[self.workload[len("micro-"):]]
            return generator(length=self.length, **kwargs)
        if self.workload.startswith("modern-"):
            generator = MODERN_GENERATORS[self.workload[len("modern-"):]]
            return generator(length=self.length, **kwargs)
        return make_trace(self.workload, length=self.length, **kwargs)


@dataclass(frozen=True)
class JobSpec:
    """A validated sweep request.

    Attributes:
        schemes: ``(name, options)`` pairs in sweep order.
        traces: the trace inputs, in sweep order.
        sharer_key: ``"pid"`` or ``"cpu"`` (simulator configuration).
        priority: larger runs earlier; ties run in submission order.
        dedup: when True, submitting a spec identical to a queued or
            running job returns that job instead of enqueueing a copy.
        tags: caller-supplied labels, echoed back verbatim (and part of
            the spec identity, so differently-tagged jobs never dedup).
        max_attempts: fabric-mode lease budget per cell before it
            dead-letters; ``None`` defers to the fleet's default.
    """

    schemes: tuple[tuple[str, tuple[tuple[str, Any], ...]], ...]
    traces: tuple[TraceSpec, ...]
    sharer_key: str = "pid"
    priority: int = 0
    dedup: bool = False
    tags: tuple[tuple[str, Any], ...] = field(default_factory=tuple)
    max_attempts: int | None = None

    # -- identity ------------------------------------------------------

    def canonical(self) -> dict[str, Any]:
        """The spec as a JSON-safe dict with stable ordering.

        ``max_attempts`` appears only when set, so specs that never
        mention it hash exactly as they did before the field existed.
        """
        body = {
            "schemes": [
                {"name": name, "options": dict(options)}
                for name, options in self.schemes
            ],
            "traces": [trace.canonical() for trace in self.traces],
            "sharer_key": self.sharer_key,
            "priority": self.priority,
            "dedup": self.dedup,
            "tags": dict(self.tags),
        }
        if self.max_attempts is not None:
            body["max_attempts"] = self.max_attempts
        return body

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON — the queue's dedup identity."""
        payload = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- sweep shape ---------------------------------------------------

    def scheme_specs(self) -> list[str | tuple[str, dict[str, Any]]]:
        """Scheme specs in the form the runner layer consumes."""
        return [
            name if not options else (name, dict(options))
            for name, options in self.schemes
        ]

    def scheme_keys(self) -> list[str]:
        """Result keys, in sweep order (``dir2nb`` for 2-pointer DiriNB)."""
        return [scheme_key(name, dict(options)) for name, options in self.schemes]

    def cell_count(self) -> int:
        """Cells in the sweep grid."""
        return len(self.schemes) * len(self.traces)


def _parse_scheme_entry(entry: Any, protocols: list[str]) -> tuple[str, tuple]:
    if isinstance(entry, str):
        name, options = entry, {}
        if "@" in entry:
            # "dir0b@1024x4" — finite geometry as a scheme suffix.
            from repro.memory.geometry import parse_geometry

            name, _, geometry = entry.partition("@")
            try:
                options = {"geometry": parse_geometry(geometry).canonical()}
            except Exception as exc:
                raise JobSpecError(
                    f"bad geometry suffix in scheme {entry!r}: {exc}"
                ) from exc
    elif isinstance(entry, dict):
        name = entry.get("name")
        options = entry.get("options", {})
        unknown = set(entry) - {"name", "options"}
        if unknown:
            raise JobSpecError(
                f"scheme entry has unknown fields {sorted(unknown)}: {entry!r}"
            )
        if not isinstance(options, dict):
            raise JobSpecError(f"scheme options must be an object, got {options!r}")
    else:
        raise JobSpecError(
            f"each scheme must be a name or {{name, options}} object, got {entry!r}"
        )
    if not isinstance(name, str) or not name:
        raise JobSpecError(f"scheme name must be a non-empty string, got {name!r}")
    if name not in protocols:
        raise JobSpecError(
            f"unknown scheme {name!r}; available: {', '.join(protocols)}"
        )
    try:
        json.dumps(options, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"scheme options are not JSON-safe: {exc}") from exc
    return name, tuple(sorted(options.items()))


def _parse_trace_entry(entry: Any, workloads: list[str]) -> TraceSpec:
    if isinstance(entry, str):
        entry = {"workload": entry}
    if not isinstance(entry, dict):
        raise JobSpecError(
            f"each trace must be a workload name or an object, got {entry!r}"
        )
    unknown = set(entry) - {"workload", "path", "length", "seed"}
    if unknown:
        raise JobSpecError(
            f"trace entry has unknown fields {sorted(unknown)}: {entry!r}"
        )
    workload = entry.get("workload")
    path = entry.get("path")
    if (workload is None) == (path is None):
        raise JobSpecError(
            f"a trace needs exactly one of 'workload' or 'path', got {entry!r}"
        )
    if path is not None and not isinstance(path, str):
        raise JobSpecError(f"trace path must be a string, got {path!r}")
    if workload is not None and workload not in workloads:
        raise JobSpecError(
            f"unknown workload {workload!r}; available: {', '.join(workloads)}"
        )
    length = entry.get("length", DEFAULT_LENGTH)
    if not isinstance(length, int) or isinstance(length, bool) or length < 1:
        raise JobSpecError(f"trace length must be a positive integer, got {length!r}")
    seed = entry.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise JobSpecError(f"trace seed must be an integer, got {seed!r}")
    return TraceSpec(workload=workload, path=path, length=length, seed=seed)


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate a JSON job spec; raises :class:`JobSpecError` on any defect."""
    if not isinstance(payload, dict):
        raise JobSpecError(f"job spec must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - {
        "schemes", "traces", "sharer_key", "priority", "dedup", "tags",
        "max_attempts",
    }
    if unknown:
        raise JobSpecError(f"job spec has unknown fields {sorted(unknown)}")

    raw_schemes = payload.get("schemes")
    if not isinstance(raw_schemes, list) or not raw_schemes:
        raise JobSpecError("job spec needs a non-empty 'schemes' list")
    protocols = available_protocols()
    schemes = tuple(_parse_scheme_entry(entry, protocols) for entry in raw_schemes)

    raw_traces = payload.get("traces")
    if not isinstance(raw_traces, list) or not raw_traces:
        raise JobSpecError("job spec needs a non-empty 'traces' list")
    workloads = known_workloads()
    traces = tuple(_parse_trace_entry(entry, workloads) for entry in raw_traces)

    sharer_key = payload.get("sharer_key", "pid")
    if sharer_key not in _SHARER_KEYS:
        raise JobSpecError(
            f"sharer_key must be one of {_SHARER_KEYS}, got {sharer_key!r}"
        )
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise JobSpecError(f"priority must be an integer, got {priority!r}")
    dedup = payload.get("dedup", False)
    if not isinstance(dedup, bool):
        raise JobSpecError(f"dedup must be a boolean, got {dedup!r}")
    max_attempts = payload.get("max_attempts")
    if max_attempts is not None and (
        not isinstance(max_attempts, int)
        or isinstance(max_attempts, bool)
        or max_attempts < 1
    ):
        raise JobSpecError(
            f"max_attempts must be a positive integer, got {max_attempts!r}"
        )
    tags = payload.get("tags", {})
    if not isinstance(tags, dict):
        raise JobSpecError(f"tags must be an object, got {tags!r}")
    try:
        canonical_tags = tuple(sorted(tags.items()))
        json.dumps(tags, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise JobSpecError(f"tags are not JSON-safe: {exc}") from exc

    return JobSpec(
        schemes=schemes,
        traces=traces,
        sharer_key=sharer_key,
        priority=priority,
        dedup=dedup,
        tags=canonical_tags,
        max_attempts=max_attempts,
    )
