"""The paper's ``Dir_iX`` taxonomy (Section 2).

Directory schemes are classified by two axes: *i*, the number of cache
pointers (indices) a directory entry keeps, and whether the scheme may
fall back to *Broadcast* (B) or never broadcasts (NB).  In this
terminology Tang's and Censier–Feautrier's schemes are ``DirnNB``,
Archibald–Baer is ``Dir0B``, and ``Dir0NB`` is the one combination that
"does not make sense, since there is no way to obtain exclusive
access".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.protocols.base import CoherenceProtocol, DirectoryProtocol
from repro.protocols.directory.coarse import CoarseVectorProtocol
from repro.protocols.directory.dir0b import Dir0BProtocol
from repro.protocols.directory.dir1nb import Dir1NBProtocol
from repro.protocols.directory.diri import DirIBProtocol, DirINBProtocol
from repro.protocols.directory.dirnnb import DirNNBProtocol


@dataclass(frozen=True)
class DirClass:
    """A point in the Dir_iX design space.

    Attributes:
        pointers: number of cache indices kept per entry.  ``None``
            stands for *n* (one per cache: the full map).
        broadcast: True for B schemes, False for NB.
    """

    pointers: int | None
    broadcast: bool

    def __post_init__(self) -> None:
        if self.pointers is not None and self.pointers < 0:
            raise ConfigurationError("pointer count must be non-negative")
        if self.pointers == 0 and not self.broadcast:
            raise ConfigurationError(
                "Dir0NB does not exist: with no pointers and no broadcast "
                "there is no way to obtain exclusive access (Section 2)"
            )

    @property
    def label(self) -> str:
        """The paper's notation, e.g. ``Dir1NB``, ``Dir0B``, ``DirnNB``."""
        index = "n" if self.pointers is None else str(self.pointers)
        suffix = "B" if self.broadcast else "NB"
        return f"Dir{index}{suffix}"

    def storage_bits_per_block(self, num_caches: int) -> int:
        """Directory storage this class needs per memory block (§6).

        Full map: n presence bits + dirty.  Limited pointers: i pointers
        of ceil(log2 n) bits + dirty (+ broadcast bit for B).  Dir0B:
        2 bits.
        """
        if num_caches < 1:
            raise ConfigurationError("num_caches must be >= 1")
        if self.pointers is None:
            return num_caches + 1
        if self.pointers == 0:
            return 2
        pointer_bits = max(1, math.ceil(math.log2(max(2, num_caches))))
        return self.pointers * pointer_bits + 1 + (1 if self.broadcast else 0)

    def max_copies(self, num_caches: int) -> int:
        """Largest number of simultaneous cached copies the class allows."""
        if self.broadcast or self.pointers is None:
            return num_caches
        return self.pointers


#: The classification of every named scheme from the literature survey.
LITERATURE_CLASSIFICATION: dict[str, DirClass] = {
    "tang": DirClass(pointers=None, broadcast=False),
    "censier-feautrier": DirClass(pointers=None, broadcast=False),
    "archibald-baer": DirClass(pointers=0, broadcast=True),
    "yen-fu": DirClass(pointers=None, broadcast=False),
}


def classify(protocol: CoherenceProtocol) -> DirClass | None:
    """Classify a protocol instance in the Dir_iX taxonomy.

    Snoopy protocols have no directory and return None.
    """
    if isinstance(protocol, Dir1NBProtocol):
        return DirClass(pointers=1, broadcast=False)
    if isinstance(protocol, Dir0BProtocol):
        # Note: Berkeley subclasses Dir0B for event-frequency purposes
        # but is a snoopy scheme; it still sits at Dir0B's point in the
        # state-change design space.
        return DirClass(pointers=0, broadcast=True)
    if isinstance(protocol, DirNNBProtocol):
        return DirClass(pointers=None, broadcast=False)
    if isinstance(protocol, DirIBProtocol):
        return DirClass(pointers=protocol.num_pointers, broadcast=True)
    if isinstance(protocol, DirINBProtocol):
        return DirClass(pointers=protocol.num_pointers, broadcast=False)
    if isinstance(protocol, CoarseVectorProtocol):
        # The coarse vector is information-wise between Dir1 and Dirn;
        # it never broadcasts.
        return DirClass(pointers=None, broadcast=False)
    if isinstance(protocol, DirectoryProtocol):
        return None
    return None


_SCHEME_LABELS = {
    "dir1nb": "Dir1NB",
    "dir0b": "Dir0B",
    "dirnnb": "DirnNB",
    "coarse-vector": "DirCV-NB",
    "wti": "WTI",
    "dragon": "Dragon",
    "berkeley": "Berkeley",
}


def scheme_label(protocol_or_name: CoherenceProtocol | str) -> str:
    """Human-readable scheme label as the paper prints it."""
    if isinstance(protocol_or_name, str):
        return _SCHEME_LABELS.get(protocol_or_name, protocol_or_name)
    label = getattr(protocol_or_name, "scheme_label", None)
    if label:
        return label
    return _SCHEME_LABELS.get(protocol_or_name.name, protocol_or_name.name)
