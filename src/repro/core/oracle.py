"""A value-coherence oracle: catches stale reads, not just bad states.

The invariant checker validates *structural* properties (single writer,
directory agreement).  The oracle validates the *semantic* property a
coherence protocol exists to provide: **every read observes the value
of the most recent write** to its block.

It works by shadowing block versions: each write bumps the block's
global version; each cache line remembers the version it last saw.
The oracle derives the per-line bookkeeping purely from the protocol's
observable behaviour:

* a read/write **miss-fill** brings the current version into the cache
  (coherent supply from memory or the owner);
* a **write** sets the writer's line to the new version;
* for **update protocols** the write refreshes every other holder;
* for **invalidation protocols** other holders must have *lost* their
  copies — any copy that survives a write keeps its old version, and a
  later read **hit** on it is reported as a stale read.

Wrap any protocol with :class:`CoherentOracle` and drive it as usual;
:class:`StaleReadError` fires the moment a processor would have
consumed stale data.

Under **finite capacity** the oracle additionally audits evictions:
every reference, it snapshots which caches hold dirty lines, and any
dirty copy of a *non-accessed* block that silently vanishes must be
covered by a ``WRITE_BACK`` bus operation in the reference's result —
a dirty victim evicted without a write-back is exactly the
"dropped write-back" bug class, and memory would be left stale.
``writebacks_observed`` and ``recalls_observed`` count the finite
machinery's traffic for the conformance harness.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.memory.cache import FiniteCache
from repro.protocols.base import CoherenceProtocol
from repro.protocols.events import EventType, OpKind, ProtocolResult


class StaleReadError(ProtocolError):
    """A cache read hit observed an outdated value."""


class CoherentOracle:
    """Wraps a protocol and validates read-the-latest-write semantics.

    The oracle is a pass-through: :meth:`on_read` / :meth:`on_write`
    forward to the wrapped protocol, return its results unchanged, and
    raise :class:`StaleReadError` on a semantic violation.  It can wrap
    any registered protocol, including update-based ones.
    """

    def __init__(self, protocol: CoherenceProtocol) -> None:
        self.protocol = protocol
        # Global version per block (bumped on every write).
        self._version: dict[int, int] = {}
        # Version each cache last observed: (cache, block) -> version.
        self._seen: dict[tuple[int, int], int] = {}
        #: WRITE_BACK bus operations seen across all references.
        self.writebacks_observed = 0
        #: Directory-entry recalls seen across all references.
        self.recalls_observed = 0
        # Eviction auditing only matters where copies can silently
        # vanish: finite caches or a bounded directory.
        self._audit_evictions = bool(
            getattr(protocol, "dir_capacity", None)
        ) or any(
            isinstance(cache, FiniteCache)
            for cache in getattr(protocol, "_caches", ())
        )

    # ------------------------------------------------------------------

    def _current(self, block: int) -> int:
        return self._version.get(block, 0)

    def _sync_holders(self, block: int) -> None:
        """Grant the current version to every holder (miss supply paths
        can refresh bystanders, e.g. a Dir0B flush leaves the old owner
        with a clean, current copy)."""
        for cache in self.protocol.holders(block):
            self._seen[(cache, block)] = self._current(block)

    def _drop_lost_copies(self, block: int) -> None:
        """Forget bookkeeping for caches that no longer hold the block."""
        holders = set(self.protocol.holders(block))
        for key in [k for k in self._seen if k[1] == block and k[0] not in holders]:
            del self._seen[key]

    # ------------------------------------------------------------------
    # Finite-capacity eviction audit
    # ------------------------------------------------------------------

    def _dirty_snapshot(self) -> list[tuple[int, int]]:
        """Every (cache, block) pair currently holding a dirty line."""
        dirty: list[tuple[int, int]] = []
        for block in self.protocol.tracked_blocks():
            for cache, state in self.protocol.holders(block).items():
                if getattr(state, "is_dirty", False):
                    dirty.append((cache, block))
        return dirty

    def _audit(
        self,
        accessed: int,
        result: ProtocolResult,
        pre_dirty: list[tuple[int, int]],
    ) -> None:
        """Verify every silently-evicted dirty line was written back.

        The accessed block's own dirty copy may legally move or vanish
        through the protocol's miss/invalidation paths, so only
        *collateral* losses (replacement victims, directory recalls)
        are audited.  Write-back operations are attributed to victims
        first: a correct protocol emits one per displaced dirty line on
        top of whatever the access itself cost, so running short means
        dirty data never reached memory.
        """
        writebacks = sum(
            op.count for op in result.ops if op.kind is OpKind.WRITE_BACK
        )
        self.writebacks_observed += writebacks
        self.recalls_observed += result.directory_recalls
        covered = writebacks
        for cache, block in pre_dirty:
            if block == accessed:
                continue
            if cache in self.protocol.holders(block):
                continue
            if covered > 0:
                covered -= 1
            else:
                raise ProtocolError(
                    f"[{self.protocol.name}] cache {cache} lost its dirty "
                    f"copy of block {block:#x} without a write-back "
                    f"(memory left stale)"
                )

    # ------------------------------------------------------------------
    # Introspection (used by the conformance harness and edge-case tests)
    # ------------------------------------------------------------------

    def expected_version(self, block: int) -> int:
        """The version the latest write gave *block* (0 = never written)."""
        return self._current(block)

    def observed_version(self, cache: int, block: int) -> int | None:
        """The version *cache* last observed for *block*, if tracked."""
        return self._seen.get((cache, block))

    # ------------------------------------------------------------------

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        before = self.protocol.holders(block)
        had_copy = cache in before
        pre_dirty = self._dirty_snapshot() if self._audit_evictions else []
        result = self.protocol.on_read(cache, block, first_ref)
        if self._audit_evictions:
            self._audit(block, result, pre_dirty)

        if result.event is EventType.RD_HIT:
            if not had_copy:
                raise ProtocolError(
                    f"protocol reported a read hit but cache {cache} held no copy "
                    f"of block {block:#x}"
                )
            seen = self._seen.get((cache, block))
            current = self._current(block)
            if seen is not None and seen != current:
                raise StaleReadError(
                    f"[{self.protocol.name}] cache {cache} read block {block:#x} "
                    f"at version {seen}, but the latest write is version {current}"
                )
            self._seen[(cache, block)] = current
        else:
            # Miss fill: the coherent supply path (memory after a flush,
            # or the owner directly) delivers the current version — and
            # a dirty owner's flush refreshes memory for everyone.
            self._drop_lost_copies(block)
            self._seen[(cache, block)] = self._current(block)
            if result.event is EventType.RM_BLK_DRTY:
                self._sync_holders(block)
        return result

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        pre_dirty = self._dirty_snapshot() if self._audit_evictions else []
        result = self.protocol.on_write(cache, block, first_ref)
        if self._audit_evictions:
            self._audit(block, result, pre_dirty)
        self._version[block] = self._current(block) + 1
        self._drop_lost_copies(block)
        self._seen[(cache, block)] = self._current(block)
        if self.protocol.update_based:
            # Write-update protocols refresh every surviving copy.
            self._sync_holders(block)
        else:
            # Invalidation protocols: any *other* surviving copy is now
            # stale; a later hit on it will trip the oracle.  (A correct
            # protocol leaves no such copy.)
            pass
        return result

    # Pass-throughs so the oracle can stand in for the protocol in the
    # simulator and the invariant checker.

    @property
    def name(self) -> str:
        """The wrapped protocol's registry name."""
        return self.protocol.name

    @property
    def num_caches(self) -> int:
        """Number of caches in the machine."""
        return self.protocol.num_caches

    @property
    def max_copies(self):
        """The wrapped protocol's copy bound."""
        return self.protocol.max_copies

    @property
    def writes_through(self) -> bool:
        """Whether the wrapped protocol writes through."""
        return self.protocol.writes_through

    @property
    def update_based(self) -> bool:
        """Whether the wrapped protocol is update-based."""
        return self.protocol.update_based

    def holders(self, block: int):
        """Holder map of one block (delegated to the protocol)."""
        return self.protocol.holders(block)

    def tracked_blocks(self):
        """Blocks resident in any cache (delegated)."""
        return self.protocol.tracked_blocks()
