"""A value-coherence oracle: catches stale reads, not just bad states.

The invariant checker validates *structural* properties (single writer,
directory agreement).  The oracle validates the *semantic* property a
coherence protocol exists to provide: **every read observes the value
of the most recent write** to its block.

It works by shadowing block versions: each write bumps the block's
global version; each cache line remembers the version it last saw.
The oracle derives the per-line bookkeeping purely from the protocol's
observable behaviour:

* a read/write **miss-fill** brings the current version into the cache
  (coherent supply from memory or the owner);
* a **write** sets the writer's line to the new version;
* for **update protocols** the write refreshes every other holder;
* for **invalidation protocols** other holders must have *lost* their
  copies — any copy that survives a write keeps its old version, and a
  later read **hit** on it is reported as a stale read.

Wrap any protocol with :class:`CoherentOracle` and drive it as usual;
:class:`StaleReadError` fires the moment a processor would have
consumed stale data.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.protocols.base import CoherenceProtocol
from repro.protocols.events import EventType, ProtocolResult


class StaleReadError(ProtocolError):
    """A cache read hit observed an outdated value."""


class CoherentOracle:
    """Wraps a protocol and validates read-the-latest-write semantics.

    The oracle is a pass-through: :meth:`on_read` / :meth:`on_write`
    forward to the wrapped protocol, return its results unchanged, and
    raise :class:`StaleReadError` on a semantic violation.  It can wrap
    any registered protocol, including update-based ones.
    """

    def __init__(self, protocol: CoherenceProtocol) -> None:
        self.protocol = protocol
        # Global version per block (bumped on every write).
        self._version: dict[int, int] = {}
        # Version each cache last observed: (cache, block) -> version.
        self._seen: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------

    def _current(self, block: int) -> int:
        return self._version.get(block, 0)

    def _sync_holders(self, block: int) -> None:
        """Grant the current version to every holder (miss supply paths
        can refresh bystanders, e.g. a Dir0B flush leaves the old owner
        with a clean, current copy)."""
        for cache in self.protocol.holders(block):
            self._seen[(cache, block)] = self._current(block)

    def _drop_lost_copies(self, block: int) -> None:
        """Forget bookkeeping for caches that no longer hold the block."""
        holders = set(self.protocol.holders(block))
        for key in [k for k in self._seen if k[1] == block and k[0] not in holders]:
            del self._seen[key]

    # ------------------------------------------------------------------
    # Introspection (used by the conformance harness and edge-case tests)
    # ------------------------------------------------------------------

    def expected_version(self, block: int) -> int:
        """The version the latest write gave *block* (0 = never written)."""
        return self._current(block)

    def observed_version(self, cache: int, block: int) -> int | None:
        """The version *cache* last observed for *block*, if tracked."""
        return self._seen.get((cache, block))

    # ------------------------------------------------------------------

    def on_read(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data read; see :meth:`CoherenceProtocol.on_read`."""
        before = self.protocol.holders(block)
        had_copy = cache in before
        result = self.protocol.on_read(cache, block, first_ref)

        if result.event is EventType.RD_HIT:
            if not had_copy:
                raise ProtocolError(
                    f"protocol reported a read hit but cache {cache} held no copy "
                    f"of block {block:#x}"
                )
            seen = self._seen.get((cache, block))
            current = self._current(block)
            if seen is not None and seen != current:
                raise StaleReadError(
                    f"[{self.protocol.name}] cache {cache} read block {block:#x} "
                    f"at version {seen}, but the latest write is version {current}"
                )
            self._seen[(cache, block)] = current
        else:
            # Miss fill: the coherent supply path (memory after a flush,
            # or the owner directly) delivers the current version — and
            # a dirty owner's flush refreshes memory for everyone.
            self._drop_lost_copies(block)
            self._seen[(cache, block)] = self._current(block)
            if result.event is EventType.RM_BLK_DRTY:
                self._sync_holders(block)
        return result

    def on_write(self, cache: int, block: int, first_ref: bool) -> ProtocolResult:
        """Handle a data write; see :meth:`CoherenceProtocol.on_write`."""
        result = self.protocol.on_write(cache, block, first_ref)
        self._version[block] = self._current(block) + 1
        self._drop_lost_copies(block)
        self._seen[(cache, block)] = self._current(block)
        if self.protocol.update_based:
            # Write-update protocols refresh every surviving copy.
            self._sync_holders(block)
        else:
            # Invalidation protocols: any *other* surviving copy is now
            # stale; a later hit on it will trip the oracle.  (A correct
            # protocol leaves no such copy.)
            pass
        return result

    # Pass-throughs so the oracle can stand in for the protocol in the
    # simulator and the invariant checker.

    @property
    def name(self) -> str:
        """The wrapped protocol's registry name."""
        return self.protocol.name

    @property
    def num_caches(self) -> int:
        """Number of caches in the machine."""
        return self.protocol.num_caches

    @property
    def max_copies(self):
        """The wrapped protocol's copy bound."""
        return self.protocol.max_copies

    @property
    def writes_through(self) -> bool:
        """Whether the wrapped protocol writes through."""
        return self.protocol.writes_through

    @property
    def update_based(self) -> bool:
        """Whether the wrapped protocol is update-based."""
        return self.protocol.update_based

    def holders(self, block: int):
        """Holder map of one block (delegated to the protocol)."""
        return self.protocol.holders(block)

    def tracked_blocks(self):
        """Blocks resident in any cache (delegated)."""
        return self.protocol.tracked_blocks()
