"""Experiment runner: protocols × traces, the paper's evaluation loop.

The paper's evaluation simulates four schemes over three traces and
reports both per-trace numbers (Figure 3) and reference-weighted
averages (Table 4, Table 5, Figures 1/2/4/5).  :class:`Experiment`
packages that loop; since event frequencies are cost-independent, the
result object can be priced under any bus model afterwards.

:class:`ExperimentResult` also carries per-cell :class:`CellFailure`
records so a fault-tolerant sweep (see :mod:`repro.runner.resilient`)
can return a partial-but-usable result instead of aborting: healthy
(scheme, trace) cells keep their :class:`SimulationResult`, failed
cells are documented, and the combined views work over whatever
completed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import Simulator
from repro.cost.bus import BusModel
from repro.errors import ConfigurationError
from repro.trace.stream import Trace


@dataclass(frozen=True)
class CellFailure:
    """One (scheme, trace) cell that could not produce a result.

    Attributes:
        scheme: scheme key of the failed cell (e.g. ``"dir2nb"``).
        trace_name: name of the trace the cell was running.
        category: coarse failure class — the error's type name
            (``"TraceFormatError"``, ``"InvariantViolation"``, ...).
        message: the final error message.
        attempts: how many times the cell was attempted before giving up.
    """

    scheme: str
    trace_name: str
    category: str
    message: str
    attempts: int = 1

    def __str__(self) -> str:
        tries = f" after {self.attempts} attempts" if self.attempts > 1 else ""
        return f"({self.scheme}, {self.trace_name}) {self.category}{tries}: {self.message}"


@dataclass
class ExperimentResult:
    """Per-(scheme, trace) simulation results with combined views."""

    #: results[scheme][trace_name] -> SimulationResult
    results: dict[str, dict[str, SimulationResult]] = field(default_factory=dict)
    #: failures[scheme][trace_name] -> CellFailure (error-isolated sweeps)
    failures: dict[str, dict[str, CellFailure]] = field(default_factory=dict)

    @property
    def schemes(self) -> list[str]:
        """Scheme keys present in the results."""
        return list(self.results)

    @property
    def trace_names(self) -> list[str]:
        """Trace names present, in first-seen order."""
        names: list[str] = []
        for per_trace in self.results.values():
            for name in per_trace:
                if name not in names:
                    names.append(name)
        return names

    @property
    def ok(self) -> bool:
        """True when every attempted cell produced a result."""
        return not any(per_trace for per_trace in self.failures.values())

    def all_failures(self) -> list[CellFailure]:
        """Every recorded cell failure, in scheme-then-trace order."""
        return [
            failure
            for per_trace in self.failures.values()
            for failure in per_trace.values()
        ]

    def record_failure(self, failure: CellFailure) -> None:
        """Document one failed (scheme, trace) cell."""
        self.failures.setdefault(failure.scheme, {})[failure.trace_name] = failure

    def result(self, scheme: str, trace_name: str) -> SimulationResult:
        """The result for one (scheme, trace) pair."""
        try:
            return self.results[scheme][trace_name]
        except KeyError:
            failure = self.failures.get(scheme, {}).get(trace_name)
            if failure is not None:
                raise ConfigurationError(
                    f"cell ({scheme!r}, {trace_name!r}) failed: {failure}"
                ) from None
            raise ConfigurationError(
                f"no result for scheme {scheme!r} on trace {trace_name!r}"
            ) from None

    def combined(self, scheme: str) -> SimulationResult:
        """Reference-weighted pool of one scheme's runs over all traces."""
        per_trace = self.results.get(scheme)
        if not per_trace:
            raise ConfigurationError(f"no results for scheme {scheme!r}")
        return merge_results(list(per_trace.values()), name="combined")

    def bus_cycles_table(self, bus: BusModel) -> dict[str, float]:
        """Scheme -> combined bus cycles per reference under *bus*."""
        return {
            scheme: self.combined(scheme).bus_cycles_per_reference(bus)
            for scheme in self.schemes
        }

    def per_trace_bus_cycles(self, bus: BusModel) -> dict[str, dict[str, float]]:
        """scheme -> trace -> bus cycles per reference (Figure 3)."""
        return {
            scheme: {
                name: result.bus_cycles_per_reference(bus)
                for name, result in per_trace.items()
            }
            for scheme, per_trace in self.results.items()
        }


@dataclass
class Experiment:
    """A set of schemes evaluated over a set of traces.

    Args:
        traces: the input traces (e.g. the three workload analogues).
        schemes: registry names, or ``(name, options)`` pairs for
            parameterized schemes such as ``("dirib", {"num_pointers": 2})``.
        simulator: a configured :class:`~repro.core.simulator.Simulator`;
            a paper-default one is built when omitted.
    """

    traces: Sequence[Trace]
    schemes: Sequence[str | tuple[str, dict]]
    simulator: Simulator | None = None

    def run(self, progress: Callable[[str, str], None] | None = None) -> ExperimentResult:
        """Simulate every scheme over every trace.

        Any cell failure propagates immediately; use
        :class:`repro.runner.resilient.ResilientExperiment` for the
        error-isolated variant.

        Args:
            progress: optional callback invoked with (scheme, trace name)
                before each run.
        """
        if not self.traces:
            raise ConfigurationError("experiment needs at least one trace")
        if not self.schemes:
            raise ConfigurationError("experiment needs at least one scheme")
        simulator = self.simulator or Simulator()
        outcome = ExperimentResult()
        for scheme_spec in self.schemes:
            name, options = parse_scheme(scheme_spec)
            key = scheme_key(name, options)
            per_trace = outcome.results.setdefault(key, {})
            for trace in self.traces:
                if progress is not None:
                    progress(key, trace.name)
                result = simulator.run(trace, name, **options)
                result.scheme = key
                per_trace[trace.name] = result
        return outcome


def parse_scheme(spec: str | tuple[str, dict]) -> tuple[str, dict]:
    """Split a scheme spec into (registry name, option dict).

    String specs accept an ``@`` geometry suffix — ``dir0b@1024x4`` or
    ``dir2nb@4096x4@dir:256`` — so finite capacity rides every surface
    that passes scheme names around (CLI, engine plans, result-cache
    keys, service job specs, fabric cells).  A ``geometry`` option is
    normalized to its canonical string form so every spelling of the
    same finite shape produces identical option dicts (and therefore
    identical result-cache keys and scheme keys).
    """
    if isinstance(spec, str):
        if "@" in spec:
            from repro.memory.geometry import parse_geometry

            name, _, geometry = spec.partition("@")
            return name, {"geometry": parse_geometry(geometry).canonical()}
        return spec, {}
    name, options = spec
    options = dict(options)
    if options.get("geometry") is not None:
        from repro.memory.geometry import parse_geometry

        options["geometry"] = parse_geometry(options["geometry"]).canonical()
    return name, options


def scheme_key(name: str, options: dict) -> str:
    """The result key for a scheme spec (``dir2nb`` for 2-pointer DiriNB).

    Finite-geometry cells get an ``@LINESxASSOC[@dir:N]`` suffix so the
    same scheme at different capacities never collides in a sweep.
    """
    pointers = options.get("num_pointers")
    if pointers is not None and name in ("dirib", "dirinb"):
        key = f"dir{pointers}{'b' if name == 'dirib' else 'nb'}"
    else:
        key = name
    geometry = options.get("geometry")
    if geometry is not None:
        from repro.memory.geometry import parse_geometry

        key = f"{key}@{parse_geometry(geometry).canonical()}"
    return key


# Backwards-compatible aliases (pre-runner internal names).
_parse_scheme = parse_scheme
_scheme_key = scheme_key


def run_experiment(
    traces: Sequence[Trace],
    schemes: Iterable[str | tuple[str, dict]] = ("dir1nb", "wti", "dir0b", "dragon"),
    **simulator_options: Any,
) -> ExperimentResult:
    """Run the paper's default four-scheme evaluation (or any variant)."""
    simulator = Simulator(**simulator_options) if simulator_options else None
    experiment = Experiment(
        traces=list(traces), schemes=list(schemes), simulator=simulator
    )
    return experiment.run()
