"""Core evaluation framework: simulator, results, experiments, taxonomy."""

from repro.core.frequencies import EventFrequencies
from repro.core.result import SimulationResult, merge_results
from repro.core.simulator import SimulationContext, Simulator, simulate
from repro.core.classification import DirClass, classify, scheme_label
from repro.core.experiment import (
    CellFailure,
    Experiment,
    ExperimentResult,
    run_experiment,
)
from repro.core.invariants import InvariantChecker
from repro.core.oracle import CoherentOracle, StaleReadError
from repro.core.statespace import ExplorationReport, explore_block_states

__all__ = [
    "EventFrequencies",
    "SimulationResult",
    "merge_results",
    "Simulator",
    "SimulationContext",
    "simulate",
    "DirClass",
    "classify",
    "scheme_label",
    "CellFailure",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "InvariantChecker",
    "CoherentOracle",
    "StaleReadError",
    "ExplorationReport",
    "explore_block_states",
]
