"""The trace-driven multi-cache simulator (paper Section 4).

The simulator walks a trace once, feeding data references to a
coherence protocol and accumulating the Table-4 event counts and bus
operations into a :class:`~repro.core.result.SimulationResult`.

Methodology choices match the paper:

* **Infinite caches** by default, so remaining misses are coherence
  misses (pass ``cache_factory`` to the protocol for the finite-cache
  extension).
* **First references** are detected globally (first data reference to a
  block anywhere in the machine) and classified as first-reference
  misses, which carry no bus cost.
* **Instructions** cause no coherence traffic and are not charged.
* **Sharing is keyed by process** (pid) by default; ``sharer_key="cpu"``
  switches to the processor-sharing view (Section 4.4).
"""

from __future__ import annotations

from operator import attrgetter
from typing import Any, Iterable

from repro.core.invariants import InvariantChecker
from repro.core.result import SimulationResult
from repro.errors import ConfigurationError
from repro.memory.address import BlockMapper
from repro.protocols.base import CoherenceProtocol
from repro.protocols.kernels import kernel_run, open_kernel_session
from repro.protocols.registry import make_protocol
from repro.trace.columnar import TYPE_READ, ColumnarTrace
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace

_SHARER_KEYS = ("pid", "cpu")


class SimulationContext:
    """Carry-over state for simulating one trace in several segments.

    Holds the global first-reference set and the sharer-to-cache-index
    mapping so that feeding a trace window by window through the *same*
    protocol instance behaves exactly like one continuous run.

    ``records_done`` counts every record fed through this context
    (instructions included); checkpoint/resume uses it to verify that a
    restored context really is positioned where the snapshot claims.
    """

    def __init__(self) -> None:
        self.seen_blocks: set[int] = set()
        self.sharer_index: dict[int, int] = {}
        self.records_done: int = 0


class Simulator:
    """Runs coherence protocols over multiprocessor address traces.

    Args:
        block_mapper: byte-address -> block mapping (16-byte blocks by
            default, as in the paper).
        sharer_key: ``"pid"`` (paper default: process sharing) or
            ``"cpu"`` (processor sharing).
        check_invariants: if truthy, run the
            :class:`~repro.core.invariants.InvariantChecker` on the
            referenced block after every data reference (``True``), or
            after every N-th reference (an integer interval).
    """

    def __init__(
        self,
        block_mapper: BlockMapper | None = None,
        sharer_key: str = "pid",
        check_invariants: bool | int = False,
    ) -> None:
        if sharer_key not in _SHARER_KEYS:
            raise ConfigurationError(
                f"sharer_key must be one of {_SHARER_KEYS}, got {sharer_key!r}"
            )
        self.block_mapper = block_mapper or BlockMapper()
        self.sharer_key = sharer_key
        if check_invariants is True:
            self.check_interval = 1
        elif check_invariants is False:
            self.check_interval = 0
        else:
            if check_invariants < 0:
                raise ConfigurationError("check_invariants interval must be >= 0")
            self.check_interval = int(check_invariants)

    def _sharer_of(self, record: TraceRecord) -> int:
        return record.pid if self.sharer_key == "pid" else record.cpu

    def run(
        self,
        trace: Trace | ColumnarTrace | Iterable[TraceRecord],
        protocol: CoherenceProtocol | str,
        num_caches: int | None = None,
        trace_name: str | None = None,
        context: SimulationContext | None = None,
        **protocol_options: Any,
    ) -> SimulationResult:
        """Simulate *protocol* over *trace* and return the measurements.

        A :class:`~repro.trace.columnar.ColumnarTrace` input takes the
        columnar fast path, which produces a result identical to the
        record path (see ``docs/PERFORMANCE.md``); any other input is
        processed record by record.

        Args:
            trace: a :class:`~repro.trace.stream.Trace`, a
                :class:`~repro.trace.columnar.ColumnarTrace`, or any
                iterable of records.
            protocol: a protocol instance, or a registry name to build.
            num_caches: machine size when building by name; inferred
                from a materialized trace's sharer ids when omitted.
            trace_name: label for the result (defaults to the trace's).
            context: carry-over first-reference/sharer state for
                segmented simulation of one logical trace (pass the
                same context and protocol instance to every segment).
            protocol_options: forwarded to the protocol factory.
        """
        if isinstance(trace, (Trace, ColumnarTrace)) or hasattr(trace, "iter_chunks"):
            records: Iterable[TraceRecord] = trace.records
            name = trace_name or trace.name
        else:
            records = trace
            name = trace_name or "stream"

        built = self._resolve_protocol(protocol, trace, num_caches, protocol_options)
        result = SimulationResult(scheme=built.name, trace_name=name)
        checker = InvariantChecker(built) if self.check_interval else None

        context = context or SimulationContext()
        if checker is None and hasattr(trace, "iter_chunks"):
            # Chunk-streamed simulation: decode and feed one chunk at a
            # time, so peak memory is bounded by the chunk size, not the
            # trace.  (The invariant checker needs the record path's
            # per-data-ref cadence, same as the columnar fast path.)
            return self._run_chunked(trace, built, result, context)
        if isinstance(trace, ColumnarTrace) and checker is None:
            # Invariant checking needs the per-data-ref cadence of the
            # record path, so it opts out of the fast path.
            if type(trace) is ColumnarTrace:
                # State-table kernels for the exact stock protocols;
                # they bail (return None) on wrappers, finite caches,
                # or any state outside their verified encoding.
                ran = kernel_run(self, trace, built, result, context)
                if ran is not None:
                    return ran
            return self._run_columnar(trace, built, result, context)

        sharer_index = context.sharer_index
        seen_blocks = context.seen_blocks
        seen_add = seen_blocks.add
        data_refs = 0

        # Hoisted per-record overheads (satellite of the columnar fast
        # path, but these pay off on the record path too): the sharer
        # key resolves to one attrgetter per run instead of a string
        # compare per record, and the sharer -> cache-index mapping uses
        # a plain get instead of allocating a setdefault default.
        sharer_of = attrgetter(self.sharer_key)
        sharer_lookup = sharer_index.get
        block_of = self.block_mapper.block_of
        num_caches_limit = built.num_caches
        on_read = built.on_read
        on_write = built.on_write
        record_outcome = result.record
        instr = RefType.INSTR
        read = RefType.READ

        for record in records:
            context.records_done += 1
            if record.ref_type is instr:
                result.record_instruction()
                continue

            sharer = sharer_of(record)
            cache = sharer_lookup(sharer)
            if cache is None:
                cache = len(sharer_index)
                if cache >= num_caches_limit:
                    raise ConfigurationError(
                        f"trace contains more than num_caches={num_caches_limit} "
                        f"distinct sharers (sharer id {sharer})"
                    )
                sharer_index[sharer] = cache
            block = block_of(record.address)
            first_ref = block not in seen_blocks
            seen_add(block)

            if record.ref_type is read:
                outcome = on_read(cache, block, first_ref)
            else:
                outcome = on_write(cache, block, first_ref)
            record_outcome(outcome)

            data_refs += 1
            if checker is not None and data_refs % self.check_interval == 0:
                checker.check_block(block)

        return result

    def _run_columnar(
        self,
        trace: ColumnarTrace,
        built: CoherenceProtocol,
        result: SimulationResult,
        context: SimulationContext,
    ) -> SimulationResult:
        """The columnar fast path: iterate packed columns, not records.

        Produces a result identical to the record path (the differential
        test in ``tests/test_columnar_differential.py`` holds this for
        every registered protocol): the same protocol calls are made in
        the same order with the same arguments, and accumulation is
        batched only across runs of the *same* shared outcome instance.
        Instruction fetches never reach the protocol and are counted in
        bulk.  ``context.records_done`` is updated once per call, so on
        an exception mid-run the context must be discarded (callers that
        retry — the resilient runner — always restart from a snapshot).
        """
        instr_count, type_codes, sharer_col, addresses = (
            trace.data_view(self.sharer_key)
        )
        sharer_index = context.sharer_index
        sharer_lookup = sharer_index.get
        seen_blocks = context.seen_blocks
        seen_add = seen_blocks.add
        seen_len = seen_blocks.__len__
        shift = self.block_mapper.offset_bits
        num_caches_limit = built.num_caches
        on_read = built.on_read
        on_write = built.on_write
        record_batch = result.record_batch
        read = TYPE_READ

        # Outcomes are gathered into identity-keyed batches: protocols
        # return shared instances for the hot events (read hits, local
        # write hits, Dragon write updates), so most references collapse
        # into a handful of (outcome, count) pairs that are accumulated
        # once at the end.  Batching is valid because record() is purely
        # additive; keeping the outcome object in the entry pins its id.
        pending: dict[int, list] = {}
        pending_lookup = pending.get
        previous = None
        run_length = 0
        for code, sharer, address in zip(type_codes, sharer_col, addresses):
            cache = sharer_lookup(sharer)
            if cache is None:
                cache = len(sharer_index)
                if cache >= num_caches_limit:
                    raise ConfigurationError(
                        f"trace contains more than num_caches={num_caches_limit} "
                        f"distinct sharers (sharer id {sharer})"
                    )
                sharer_index[sharer] = cache
            block = address >> shift
            before = seen_len()
            seen_add(block)
            if code == read:
                outcome = on_read(cache, block, seen_len() != before)
            else:
                outcome = on_write(cache, block, seen_len() != before)
            if outcome is previous:
                run_length += 1
            elif previous is None:
                previous = outcome
                run_length = 1
            else:
                entry = pending_lookup(id(previous))
                if entry is None:
                    pending[id(previous)] = [previous, run_length]
                else:
                    entry[1] += run_length
                previous = outcome
                run_length = 1
        if previous is not None:
            entry = pending_lookup(id(previous))
            if entry is None:
                pending[id(previous)] = [previous, run_length]
            else:
                entry[1] += run_length
        for outcome, count in pending.values():
            record_batch(outcome, count)
        result.record_instructions(instr_count)
        context.records_done += len(trace)
        return result

    def _run_chunked(
        self,
        trace: Any,
        built: CoherenceProtocol,
        result: SimulationResult,
        context: SimulationContext,
    ) -> SimulationResult:
        """Bounded-memory simulation of a chunked on-disk trace.

        When a state-table kernel applies, the protocol state is
        imported into the compact encoding once and stays resident
        across chunks (:class:`~repro.protocols.kernels.KernelSession`);
        otherwise each chunk runs through the generic columnar loop with
        the shared context and result, which — because accumulation is
        purely additive and the context carries all cross-chunk state —
        is exactly one continuous run.  Either way at most one decoded
        chunk is live at a time.
        """
        session = open_kernel_session(self, built, result, context)
        if session is not None:
            for chunk in trace.iter_chunks():
                session.run_chunk(chunk)
            return session.finish()
        for chunk in trace.iter_chunks():
            self._run_columnar(chunk, built, result, context)
        return result

    def _resolve_protocol(
        self,
        protocol: CoherenceProtocol | str,
        trace: Trace | ColumnarTrace | Iterable[TraceRecord],
        num_caches: int | None,
        options: dict,
    ) -> CoherenceProtocol:
        if not isinstance(protocol, str):
            # A protocol instance — or anything protocol-shaped, such as
            # a CoherentOracle wrapper — is used as-is.
            if options:
                raise ConfigurationError(
                    "protocol options are only valid when building by name"
                )
            return protocol
        if num_caches is None:
            # Any trace that can report its sharer-id sets will do —
            # chunked traces answer from their index without a scan.
            sharers = getattr(
                trace, "pids" if self.sharer_key == "pid" else "cpus", None
            )
            if sharers is None:
                raise ConfigurationError(
                    "num_caches is required when simulating a raw record stream"
                )
            num_caches = max(1, len(sharers))
        return make_protocol(protocol, num_caches, **options)


def simulate(
    trace: Trace | Iterable[TraceRecord],
    protocol: CoherenceProtocol | str,
    num_caches: int | None = None,
    sharer_key: str = "pid",
    block_mapper: BlockMapper | None = None,
    check_invariants: bool | int = False,
    **protocol_options: Any,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(
        block_mapper=block_mapper,
        sharer_key=sharer_key,
        check_invariants=check_invariants,
    )
    return simulator.run(trace, protocol, num_caches=num_caches, **protocol_options)
