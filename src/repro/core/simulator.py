"""The trace-driven multi-cache simulator (paper Section 4).

The simulator walks a trace once, feeding data references to a
coherence protocol and accumulating the Table-4 event counts and bus
operations into a :class:`~repro.core.result.SimulationResult`.

Methodology choices match the paper:

* **Infinite caches** by default, so remaining misses are coherence
  misses (pass ``cache_factory`` to the protocol for the finite-cache
  extension).
* **First references** are detected globally (first data reference to a
  block anywhere in the machine) and classified as first-reference
  misses, which carry no bus cost.
* **Instructions** cause no coherence traffic and are not charged.
* **Sharing is keyed by process** (pid) by default; ``sharer_key="cpu"``
  switches to the processor-sharing view (Section 4.4).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.invariants import InvariantChecker
from repro.core.result import SimulationResult
from repro.errors import ConfigurationError
from repro.memory.address import BlockMapper
from repro.protocols.base import CoherenceProtocol
from repro.protocols.registry import make_protocol
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace

_SHARER_KEYS = ("pid", "cpu")


class SimulationContext:
    """Carry-over state for simulating one trace in several segments.

    Holds the global first-reference set and the sharer-to-cache-index
    mapping so that feeding a trace window by window through the *same*
    protocol instance behaves exactly like one continuous run.

    ``records_done`` counts every record fed through this context
    (instructions included); checkpoint/resume uses it to verify that a
    restored context really is positioned where the snapshot claims.
    """

    def __init__(self) -> None:
        self.seen_blocks: set[int] = set()
        self.sharer_index: dict[int, int] = {}
        self.records_done: int = 0


class Simulator:
    """Runs coherence protocols over multiprocessor address traces.

    Args:
        block_mapper: byte-address -> block mapping (16-byte blocks by
            default, as in the paper).
        sharer_key: ``"pid"`` (paper default: process sharing) or
            ``"cpu"`` (processor sharing).
        check_invariants: if truthy, run the
            :class:`~repro.core.invariants.InvariantChecker` on the
            referenced block after every data reference (``True``), or
            after every N-th reference (an integer interval).
    """

    def __init__(
        self,
        block_mapper: BlockMapper | None = None,
        sharer_key: str = "pid",
        check_invariants: bool | int = False,
    ) -> None:
        if sharer_key not in _SHARER_KEYS:
            raise ConfigurationError(
                f"sharer_key must be one of {_SHARER_KEYS}, got {sharer_key!r}"
            )
        self.block_mapper = block_mapper or BlockMapper()
        self.sharer_key = sharer_key
        if check_invariants is True:
            self.check_interval = 1
        elif check_invariants is False:
            self.check_interval = 0
        else:
            if check_invariants < 0:
                raise ConfigurationError("check_invariants interval must be >= 0")
            self.check_interval = int(check_invariants)

    def _sharer_of(self, record: TraceRecord) -> int:
        return record.pid if self.sharer_key == "pid" else record.cpu

    def run(
        self,
        trace: Trace | Iterable[TraceRecord],
        protocol: CoherenceProtocol | str,
        num_caches: int | None = None,
        trace_name: str | None = None,
        context: SimulationContext | None = None,
        **protocol_options: Any,
    ) -> SimulationResult:
        """Simulate *protocol* over *trace* and return the measurements.

        Args:
            trace: a :class:`~repro.trace.stream.Trace` or any iterable
                of records.
            protocol: a protocol instance, or a registry name to build.
            num_caches: machine size when building by name; inferred
                from a materialized trace's sharer ids when omitted.
            trace_name: label for the result (defaults to the trace's).
            context: carry-over first-reference/sharer state for
                segmented simulation of one logical trace (pass the
                same context and protocol instance to every segment).
            protocol_options: forwarded to the protocol factory.
        """
        if isinstance(trace, Trace):
            records: Iterable[TraceRecord] = trace.records
            name = trace_name or trace.name
        else:
            records = trace
            name = trace_name or "stream"

        built = self._resolve_protocol(protocol, trace, num_caches, protocol_options)
        result = SimulationResult(scheme=built.name, trace_name=name)
        checker = InvariantChecker(built) if self.check_interval else None

        context = context or SimulationContext()
        sharer_index = context.sharer_index
        seen_blocks = context.seen_blocks
        data_refs = 0

        for record in records:
            context.records_done += 1
            if record.ref_type is RefType.INSTR:
                result.record_instruction()
                continue

            sharer = self._sharer_of(record)
            cache = sharer_index.setdefault(sharer, len(sharer_index))
            if cache >= built.num_caches:
                raise ConfigurationError(
                    f"trace contains more than num_caches={built.num_caches} "
                    f"distinct sharers (sharer id {sharer})"
                )
            block = self.block_mapper.block_of(record.address)
            first_ref = block not in seen_blocks
            seen_blocks.add(block)

            if record.ref_type is RefType.READ:
                outcome = built.on_read(cache, block, first_ref)
            else:
                outcome = built.on_write(cache, block, first_ref)
            result.record(outcome)

            data_refs += 1
            if checker is not None and data_refs % self.check_interval == 0:
                checker.check_block(block)

        return result

    def _resolve_protocol(
        self,
        protocol: CoherenceProtocol | str,
        trace: Trace | Iterable[TraceRecord],
        num_caches: int | None,
        options: dict,
    ) -> CoherenceProtocol:
        if not isinstance(protocol, str):
            # A protocol instance — or anything protocol-shaped, such as
            # a CoherentOracle wrapper — is used as-is.
            if options:
                raise ConfigurationError(
                    "protocol options are only valid when building by name"
                )
            return protocol
        if num_caches is None:
            if not isinstance(trace, Trace):
                raise ConfigurationError(
                    "num_caches is required when simulating a raw record stream"
                )
            sharers = trace.pids if self.sharer_key == "pid" else trace.cpus
            num_caches = max(1, len(sharers))
        return make_protocol(protocol, num_caches, **options)


def simulate(
    trace: Trace | Iterable[TraceRecord],
    protocol: CoherenceProtocol | str,
    num_caches: int | None = None,
    sharer_key: str = "pid",
    block_mapper: BlockMapper | None = None,
    check_invariants: bool | int = False,
    **protocol_options: Any,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(
        block_mapper=block_mapper,
        sharer_key=sharer_key,
        check_invariants=check_invariants,
    )
    return simulator.run(trace, protocol, num_caches=num_caches, **protocol_options)
