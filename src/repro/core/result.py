"""Simulation results: event counts decoupled from bus-cycle costs.

One simulation run per (trace, protocol) measures event frequencies and
aggregated bus operations; any number of bus models can then be priced
against the same result without re-simulating — the paper's "we need
just one simulation run per protocol ... and we can then vary costs for
different hardware models" (Section 4.1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.frequencies import EventFrequencies
from repro.cost.accounting import CycleBreakdown, charge_ops
from repro.cost.bus import BusModel
from repro.protocols.events import EventType


@dataclass
class SimulationResult:
    """Everything measured by one simulation of one protocol on one trace.

    Attributes:
        scheme: protocol registry name (e.g. ``"dir0b"``).
        trace_name: name of the input trace.
        total_refs: all references processed (instructions included).
        event_counts: occurrences of each Table 4 event.
        op_units: per-event aggregated bus-operation unit counts;
            ``op_units[event][kind]`` is the total number of
            kind-operations (an ``invalidate(3)`` contributes 3 units).
        bus_transactions: references that performed at least one bus
            operation (the Figure 5 denominator).
        clean_write_histogram: the Figure 1 population — for each write
            to a previously-clean block, the number of *other* caches
            holding the block, bucketed by that number.
        wasted_invalidations: invalidation messages to non-holders
            (coarse-vector directories).
        pointer_evictions: DiriNB sharer displacements due to pointer
            overflow.
        directory_recalls: directory entries recalled (sharers
            invalidated) under a finite directory capacity.
    """

    scheme: str
    trace_name: str
    total_refs: int = 0
    event_counts: Counter = field(default_factory=Counter)
    op_units: dict = field(default_factory=dict)
    bus_transactions: int = 0
    clean_write_histogram: Counter = field(default_factory=Counter)
    wasted_invalidations: int = 0
    pointer_evictions: int = 0
    directory_recalls: int = 0

    # ------------------------------------------------------------------
    # Accumulation (used by the simulator)
    # ------------------------------------------------------------------

    def record(self, result) -> None:
        """Accumulate one :class:`~repro.protocols.events.ProtocolResult`."""
        self.total_refs += 1
        self.event_counts[result.event] += 1
        if result.ops:
            self.bus_transactions += 1
            units = self.op_units.setdefault(result.event, Counter())
            for op in result.ops:
                units[op.kind] += op.count
        if result.clean_write_sharers is not None:
            self.clean_write_histogram[result.clean_write_sharers] += 1
        self.wasted_invalidations += result.wasted_invalidations
        self.pointer_evictions += result.pointer_evictions
        self.directory_recalls += result.directory_recalls

    def record_instruction(self) -> None:
        """Accumulate one instruction fetch (never reaches the protocol)."""
        self.total_refs += 1
        self.event_counts[EventType.INSTR] += 1

    def record_batch(self, result, count: int) -> None:
        """Accumulate one :class:`ProtocolResult` *count* times at once.

        Equivalent to calling :meth:`record` *count* times with the same
        outcome; the simulator's columnar fast path uses this to batch
        runs of identical (shared-instance) outcomes.
        """
        if count <= 0:
            return
        self.total_refs += count
        self.event_counts[result.event] += count
        if result.ops:
            self.bus_transactions += count
            units = self.op_units.setdefault(result.event, Counter())
            for op in result.ops:
                units[op.kind] += op.count * count
        if result.clean_write_sharers is not None:
            self.clean_write_histogram[result.clean_write_sharers] += count
        self.wasted_invalidations += result.wasted_invalidations * count
        self.pointer_evictions += result.pointer_evictions * count
        self.directory_recalls += result.directory_recalls * count

    def record_instructions(self, count: int) -> None:
        """Accumulate *count* instruction fetches at once."""
        if count <= 0:
            return
        self.total_refs += count
        self.event_counts[EventType.INSTR] += count

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------

    def frequencies(self) -> EventFrequencies:
        """Table 4 event frequencies for this run."""
        return EventFrequencies(Counter(self.event_counts), self.total_refs)

    def all_op_units(self) -> Counter:
        """Op-kind unit counts summed over every event type."""
        total: Counter = Counter()
        for units in self.op_units.values():
            total.update(units)
        return total

    def breakdown_per_reference(self, bus: BusModel) -> CycleBreakdown:
        """Table 5: bus cycles per reference by cost category."""
        if self.total_refs == 0:
            return CycleBreakdown()
        return charge_ops(self.all_op_units(), bus).per_reference(self.total_refs)

    def bus_cycles_per_reference(self, bus: BusModel) -> float:
        """The paper's primary metric (Figures 2 and 3)."""
        return self.breakdown_per_reference(bus).total

    def transactions_per_reference(self) -> float:
        """Bus transactions per memory reference (the §5.1 slope)."""
        if self.total_refs == 0:
            return 0.0
        return self.bus_transactions / self.total_refs

    def cycles_per_transaction(self, bus: BusModel) -> float:
        """Figure 5: average bus cycles per bus transaction."""
        if self.bus_transactions == 0:
            return 0.0
        return charge_ops(self.all_op_units(), bus).total / self.bus_transactions

    def cycles_with_overhead(self, bus: BusModel, q: float) -> float:
        """Section 5.1: cycles/reference with q extra cycles per transaction."""
        if q < 0:
            raise ValueError(f"q must be non-negative, got {q}")
        return self.bus_cycles_per_reference(bus) + q * self.transactions_per_reference()

    def event_cycles_per_reference(self, bus: BusModel) -> dict[EventType, float]:
        """Cycles per reference attributed to each event type."""
        if self.total_refs == 0:
            return {}
        return {
            event: charge_ops(units, bus).total / self.total_refs
            for event, units in self.op_units.items()
        }

    def invalidation_distribution(self) -> dict[int, float]:
        """Figure 1: P(#other caches invalidated = k) for clean-block writes."""
        population = sum(self.clean_write_histogram.values())
        if population == 0:
            return {}
        return {
            sharers: count / population
            for sharers, count in sorted(self.clean_write_histogram.items())
        }

    def single_invalidation_fraction(self) -> float:
        """Fraction of clean-block writes invalidating at most one cache.

        The paper's headline structural result: over 85%.
        """
        population = sum(self.clean_write_histogram.values())
        if population == 0:
            return 0.0
        covered = sum(
            count for sharers, count in self.clean_write_histogram.items() if sharers <= 1
        )
        return covered / population


def merge_results(
    results: Sequence[SimulationResult], name: str = "combined"
) -> SimulationResult:
    """Pool runs of the *same scheme* over several traces.

    Counts are summed, which weights each trace by its reference count —
    this is how the paper's "averaged across the three traces" Table 4
    column is produced.
    """
    if not results:
        raise ValueError("cannot merge an empty result list")
    schemes = {result.scheme for result in results}
    if len(schemes) != 1:
        raise ValueError(f"cannot merge results from different schemes: {schemes}")
    merged = SimulationResult(scheme=results[0].scheme, trace_name=name)
    for result in results:
        merged.total_refs += result.total_refs
        merged.event_counts.update(result.event_counts)
        merged.bus_transactions += result.bus_transactions
        merged.clean_write_histogram.update(result.clean_write_histogram)
        merged.wasted_invalidations += result.wasted_invalidations
        merged.pointer_evictions += result.pointer_evictions
        merged.directory_recalls += result.directory_recalls
        for event, units in result.op_units.items():
            merged.op_units.setdefault(event, Counter()).update(units)
    return merged
