"""Event frequencies (paper Table 4) and derived miss-rate measures.

An :class:`EventFrequencies` wraps the per-event reference counts of a
simulation and exposes them the way the paper reports them: as
percentages of *all* references, with roll-ups for reads, writes,
misses, and the miss-rate decomposition of Section 5 (native vs.
coherence-induced misses).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.protocols.events import EventType


@dataclass(frozen=True)
class EventFrequencies:
    """Per-event counts over a reference stream, with Table 4 accessors."""

    counts: Counter
    total_refs: int

    def __post_init__(self) -> None:
        if self.total_refs < 0:
            raise ValueError("total_refs must be non-negative")
        counted = sum(self.counts.values())
        if counted > self.total_refs:
            raise ValueError(
                f"event counts ({counted}) exceed total references ({self.total_refs})"
            )

    def count(self, event: EventType) -> int:
        """Raw occurrence count of one event type."""
        return self.counts.get(event, 0)

    def fraction(self, event: EventType) -> float:
        """Event occurrences as a fraction of all references."""
        if self.total_refs == 0:
            return 0.0
        return self.count(event) / self.total_refs

    def percent(self, event: EventType) -> float:
        """Event occurrences as a percentage of all references (Table 4)."""
        return 100.0 * self.fraction(event)

    def _sum_fraction(self, events) -> float:
        return sum(self.fraction(event) for event in events)

    # ------------------------------------------------------------------
    # Table 4 roll-up rows
    # ------------------------------------------------------------------

    @property
    def instr_fraction(self) -> float:
        """Instruction fetches as a fraction of all references."""
        return self.fraction(EventType.INSTR)

    @property
    def read_fraction(self) -> float:
        """All data reads: hits + coherence misses + first references."""
        return self._sum_fraction(
            (
                EventType.RD_HIT,
                EventType.RM_BLK_CLN,
                EventType.RM_BLK_DRTY,
                EventType.RM_FIRST_REF,
            )
        )

    @property
    def write_fraction(self) -> float:
        """All data writes: hits + coherence misses + first references."""
        return self._sum_fraction(
            (
                EventType.WH_BLK_CLN,
                EventType.WH_BLK_DRTY,
                EventType.WH_DISTRIB,
                EventType.WH_LOCAL,
                EventType.WM_BLK_CLN,
                EventType.WM_BLK_DRTY,
                EventType.WM_FIRST_REF,
            )
        )

    @property
    def read_miss_fraction(self) -> float:
        """Coherence read misses (first references excluded, as in Table 4)."""
        return self._sum_fraction((EventType.RM_BLK_CLN, EventType.RM_BLK_DRTY))

    @property
    def write_miss_fraction(self) -> float:
        """Coherence write misses (first references excluded)."""
        return self._sum_fraction((EventType.WM_BLK_CLN, EventType.WM_BLK_DRTY))

    @property
    def write_hit_fraction(self) -> float:
        """Write hits as a fraction of all references."""
        return self._sum_fraction(
            (
                EventType.WH_BLK_CLN,
                EventType.WH_BLK_DRTY,
                EventType.WH_DISTRIB,
                EventType.WH_LOCAL,
            )
        )

    @property
    def first_ref_fraction(self) -> float:
        """First-reference misses as a fraction of all references."""
        return self._sum_fraction((EventType.RM_FIRST_REF, EventType.WM_FIRST_REF))

    @property
    def data_miss_fraction(self) -> float:
        """All coherence data misses (reads + writes), per reference."""
        return self.read_miss_fraction + self.write_miss_fraction

    def data_miss_rate(self) -> float:
        """Coherence data misses as a fraction of *data* references.

        Section 5 compares schemes by this "data component" of the miss
        rate (e.g. Dir0B's 1.13% against Dragon's native 0.72%).
        """
        data_fraction = self.read_fraction + self.write_fraction
        if data_fraction == 0:
            return 0.0
        return self.data_miss_fraction / data_fraction

    def coherence_miss_fraction(self, native: "EventFrequencies") -> float:
        """Misses caused by invalidations, relative to a native baseline.

        The paper uses Dragon (which never invalidates) as the native
        miss rate: the coherence component of a scheme's miss rate is
        its data miss rate minus Dragon's.
        """
        return max(0.0, self.data_miss_fraction - native.data_miss_fraction)

    def as_percent_dict(self) -> dict[str, float]:
        """All Table 4 rows as ``{event value: percent}``."""
        rows = {event.value: self.percent(event) for event in EventType}
        rows["read"] = 100.0 * self.read_fraction
        rows["write"] = 100.0 * self.write_fraction
        rows["rd-miss(rm)"] = 100.0 * self.read_miss_fraction
        rows["wrt-miss(wm)"] = 100.0 * self.write_miss_fraction
        rows["wrt-hit(wh)"] = 100.0 * self.write_hit_fraction
        return rows
