"""Runtime coherence-invariant checking.

The protocols are executable state machines; this module validates,
after any reference, that the global cache + directory state still
satisfies the protocol's declared invariants:

* **single writer** — at most one dirty copy of a block anywhere;
* **copy bound** — no more copies than ``protocol.max_copies`` allows;
* **write-through purity** — WTI caches never hold dirty lines;
* **directory agreement** — full-map / limited-pointer directories list
  exactly the holding caches; coarse vectors denote a superset; the
  two-bit states are consistent with the true holder count;
* **Dragon ownership** — at most one owner; sole holders are never in a
  shared state's owner-half inconsistently.

The simulator can run the checker after every data reference (tests do)
or at an interval.
"""

from __future__ import annotations

from repro.errors import InvariantViolation
from repro.memory.cache import FiniteCache
from repro.memory.directory import (
    CoarseVectorDirectory,
    FullMapDirectory,
    LimitedPointerDirectory,
    TwoBitDirectory,
    TwoBitState,
)
from repro.memory.line import LineState
from repro.protocols.base import CoherenceProtocol, DirectoryProtocol


def unwrap_protocol(protocol) -> CoherenceProtocol:
    """Strip protocol-shaped wrappers down to the real protocol instance.

    Instrumentation layers (the value-coherence oracle, fault-injection
    saboteurs) delegate the :class:`CoherenceProtocol` surface but are
    not protocol subclasses themselves, which would silently disable the
    ``isinstance``-gated checks (directory agreement, write-through
    purity on :class:`~repro.memory.line.LineState`).  Wrappers expose
    their wrapped instance as ``protocol`` (the oracle) or ``inner``
    (the saboteur); this follows the chain until it reaches a genuine
    protocol, so ``InvariantChecker(CoherentOracle(p))`` checks exactly
    what ``InvariantChecker(p)`` does.
    """
    seen: set[int] = set()
    while not isinstance(protocol, CoherenceProtocol) and id(protocol) not in seen:
        seen.add(id(protocol))
        inner = protocol.__dict__.get("protocol") or protocol.__dict__.get("inner")
        if inner is None:
            break
        protocol = inner
    return protocol


class InvariantChecker:
    """Checks one protocol instance's global state for consistency.

    Accepts either a protocol or a protocol-shaped wrapper around one
    (see :func:`unwrap_protocol`); checks always run against the real
    protocol so every ``isinstance``-gated invariant participates.
    """

    def __init__(self, protocol: CoherenceProtocol) -> None:
        self._protocol = unwrap_protocol(protocol)
        # Finite caches evict copies the two-bit directory cannot
        # observe, so a holder-less CLEAN_MANY entry is legal there.
        self._allow_unheld_clean_many = any(
            isinstance(cache, FiniteCache)
            for cache in getattr(self._protocol, "_caches", ())
        )

    def check_block(self, block: int) -> None:
        """Validate every invariant for one block; raise on violation."""
        holders = self._protocol.holders(block)
        self._check_dirty_uniqueness(block, holders)
        self._check_copy_bound(block, holders)
        self._check_write_through(block, holders)
        self._check_directory(block, holders)

    def check_all(self) -> None:
        """Validate every block any cache currently holds."""
        for block in self._protocol.tracked_blocks():
            self.check_block(block)

    # ------------------------------------------------------------------

    def _fail(self, block: int, message: str) -> None:
        raise InvariantViolation(
            f"[{self._protocol.name}] block {block:#x}: {message}"
        )

    def _check_dirty_uniqueness(self, block: int, holders) -> None:
        # Duck-typed so protocol-specific state alphabets (Dragon,
        # write-once) participate: any state with a truthy ``is_dirty``
        # marks memory as stale with respect to that line.
        dirty = [
            cache
            for cache, state in holders.items()
            if getattr(state, "is_dirty", False)
        ]
        if len(dirty) > 1:
            self._fail(block, f"multiple dirty owners: {sorted(dirty)}")
        if dirty and not self._protocol.update_based and len(holders) > 1:
            self._fail(
                block,
                f"dirty copy coexists with other copies: holders={sorted(holders)}",
            )

    def _check_copy_bound(self, block: int, holders) -> None:
        bound = self._protocol.max_copies
        if bound is not None and len(holders) > bound:
            self._fail(
                block,
                f"{len(holders)} copies exceed the protocol bound of {bound}",
            )

    def _check_write_through(self, block: int, holders) -> None:
        if not self._protocol.writes_through:
            return
        for cache, state in holders.items():
            if isinstance(state, LineState) and state.is_dirty:
                self._fail(block, f"write-through cache {cache} holds a dirty line")

    def _check_directory(self, block: int, holders) -> None:
        if not isinstance(self._protocol, DirectoryProtocol):
            return
        directory = self._protocol.directory
        holder_set = set(holders)
        if isinstance(directory, (FullMapDirectory, LimitedPointerDirectory)):
            entry = directory.entry(block)
            if entry.sharers is not None and set(entry.sharers) != holder_set:
                self._fail(
                    block,
                    f"directory sharers {sorted(entry.sharers)} != holders {sorted(holder_set)}",
                )
            dirty_holders = {
                cache
                for cache, state in holders.items()
                if isinstance(state, LineState) and state.is_dirty
            }
            if entry.dirty and entry.sharers is not None and not dirty_holders:
                self._fail(block, "directory says dirty but no cache holds it dirty")
            if dirty_holders and not entry.dirty:
                self._fail(block, "a cache holds the block dirty but directory says clean")
        elif isinstance(directory, CoarseVectorDirectory):
            code = directory.code_of(block)
            for cache in holder_set:
                if not code.contains(cache):
                    self._fail(
                        block,
                        f"coarse vector does not cover holder {cache} "
                        f"(digits={code.digits})",
                    )
        elif isinstance(directory, TwoBitDirectory):
            state = directory.state_of(block)
            count = len(holder_set)
            if state is TwoBitState.NOT_CACHED and count != 0:
                self._fail(block, f"directory NOT_CACHED but {count} holders exist")
            if state is TwoBitState.CLEAN_ONE and count != 1:
                self._fail(block, f"directory CLEAN_ONE but {count} holders exist")
            if state is TwoBitState.DIRTY_ONE:
                if count != 1:
                    self._fail(block, f"directory DIRTY_ONE but {count} holders exist")
                only_state = next(iter(holders.values()))
                if not (isinstance(only_state, LineState) and only_state.is_dirty):
                    self._fail(block, "directory DIRTY_ONE but the holder's line is clean")
            if (
                state is TwoBitState.CLEAN_MANY
                and count == 0
                and not self._allow_unheld_clean_many
            ):
                # Legal only transiently for a two-bit directory that
                # cannot observe individual evictions; under infinite
                # caches copies never silently vanish, so flag it.
                self._fail(block, "directory CLEAN_MANY but no holders exist")
