"""Exhaustive reachable-state exploration for one block (model checking lite).

Trace-driven simulation only exercises the states a workload happens to
reach.  This module enumerates **every** global state a protocol can
reach for a single block on an n-cache machine — breadth-first over all
(cache, read/write) actions — and validates the coherence invariants in
each one, the way a Murphi-style model checker would.

The global state is the pair (per-cache line states, directory state),
fingerprinted structurally; protocols are branched with ``deepcopy``.
State counts are tiny (tens of states for the protocols here), so the
exploration is exhaustive in milliseconds and makes a strong
complement to the randomized property tests.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field

from repro.core.invariants import InvariantChecker
from repro.errors import ConfigurationError
from repro.memory.directory import (
    CoarseVectorDirectory,
    FullMapDirectory,
    LimitedPointerDirectory,
    TwoBitDirectory,
)
from repro.protocols.base import CoherenceProtocol, DirectoryProtocol
from repro.protocols.registry import make_protocol

_BLOCK = 0


def default_caches_for(scheme: str, num_caches: int) -> int:
    """Adjust a requested machine size to one the scheme can model.

    The coarse-vector directory encodes sharers in ternary digits over a
    power-of-two machine, so its size rounds up to the next power of
    two; any other scheme takes the size as given.  Shared by the
    ``repro verify`` CLI and the conformance harness so every entry
    point applies the same fixup.
    """
    if scheme == "coarse-vector" and num_caches & (num_caches - 1):
        return 1 << num_caches.bit_length()
    return num_caches


def _directory_fingerprint(protocol: CoherenceProtocol):
    if not isinstance(protocol, DirectoryProtocol):
        return None
    directory = protocol.directory
    if isinstance(directory, TwoBitDirectory):
        return directory.state_of(_BLOCK).value
    if isinstance(directory, LimitedPointerDirectory):
        stored = directory._entries.get(_BLOCK)
        if stored is None:
            return ("lp", False, (), False)
        return ("lp", stored.dirty, tuple(stored.pointers), stored.broadcast)
    if isinstance(directory, CoarseVectorDirectory):
        code = directory.code_of(_BLOCK)
        return ("cv", code.digits, directory._dirty.get(_BLOCK, False))
    if isinstance(directory, FullMapDirectory):
        entry = directory.entry(_BLOCK)
        sharers = tuple(sorted(entry.sharers)) if entry.sharers else ()
        return ("fm", entry.dirty, sharers)
    raise ConfigurationError(
        f"no fingerprint handler for directory type {type(directory).__name__}"
    )


def fingerprint(protocol: CoherenceProtocol):
    """A hashable, structural snapshot of one block's global state."""
    holders = tuple(
        sorted(
            (cache, state.value)
            for cache, state in protocol.holders(_BLOCK).items()
        )
    )
    extra = None
    single_bits = getattr(protocol, "_single_bits", None)
    if single_bits is not None:
        extra = tuple(sorted(key for key in single_bits if key[1] == _BLOCK))
    return holders, _directory_fingerprint(protocol), extra


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive exploration."""

    scheme: str
    num_caches: int
    states: int = 0
    transitions: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every reachable state satisfied the invariants."""
        return not self.violations


@dataclass(frozen=True)
class Transition:
    """One deduplicated protocol transition, from the requester's view.

    Attributes:
        requester_state: the acting cache's line state value before the
            action (None = not cached).
        others: sorted line-state values of the other caches' copies.
        operation: ``"r"`` or ``"w"``.
        first_ref: whether this was the block's first reference.
        event: the Table-4 event the protocol reported.
        ops: bus-operation kinds performed (with counts).
        requester_after: the acting cache's line state value afterwards.
    """

    requester_state: str | None
    others: tuple[str, ...]
    operation: str
    first_ref: bool
    event: str
    ops: tuple[tuple[str, int], ...]
    requester_after: str | None


def enumerate_transitions(
    scheme: str,
    num_caches: int = 3,
    max_states: int = 100_000,
    **protocol_options,
) -> list[Transition]:
    """Derive a protocol's transition table by exhaustive probing.

    Walks the same reachable state space as :func:`explore_block_states`
    and records each distinct (requester state, other copies, action)
    situation with its observable outcome — an automatically generated,
    provably complete protocol specification table.
    """
    initial = make_protocol(scheme, num_caches, **protocol_options)
    seen_states = {(False, fingerprint(initial))}
    frontier = deque([(initial, False)])
    transitions: dict[tuple, Transition] = {}
    states = 0

    while frontier:
        protocol, touched = frontier.popleft()
        states += 1
        if states > max_states:
            raise ConfigurationError(
                f"state space of {scheme!r} exceeded max_states={max_states}"
            )
        for cache in range(num_caches):
            for operation in ("r", "w"):
                branch = copy.deepcopy(protocol)
                holders = branch.holders(_BLOCK)
                requester_state = (
                    holders[cache].value if cache in holders else None
                )
                others = tuple(
                    sorted(
                        state.value
                        for holder, state in holders.items()
                        if holder != cache
                    )
                )
                first_ref = not touched
                if operation == "r":
                    result = branch.on_read(cache, _BLOCK, first_ref)
                else:
                    result = branch.on_write(cache, _BLOCK, first_ref)
                after = branch.holders(_BLOCK)
                transition = Transition(
                    requester_state=requester_state,
                    others=others,
                    operation=operation,
                    first_ref=first_ref,
                    event=result.event.value,
                    ops=tuple((op.kind.value, op.count) for op in result.ops),
                    requester_after=(
                        after[cache].value if cache in after else None
                    ),
                )
                key = (requester_state, others, operation, first_ref)
                transitions.setdefault(key, transition)
                state_key = (True, fingerprint(branch))
                if state_key not in seen_states:
                    seen_states.add(state_key)
                    frontier.append((branch, True))
    return sorted(
        transitions.values(),
        key=lambda t: (t.operation, t.first_ref, str(t.requester_state), t.others),
    )


def explore_block_states(
    scheme: str,
    num_caches: int = 3,
    max_states: int = 100_000,
    stop_on_violation: bool = False,
    **protocol_options,
) -> ExplorationReport:
    """Enumerate and validate every reachable single-block global state.

    Starts from the untouched block (first references included as the
    initial actions) and applies every (cache, read/write) pair from
    every discovered state.

    Args:
        scheme: protocol registry name.
        num_caches: machine size (3 suffices to exercise every
            interaction class: requester, owner, bystander).
        max_states: safety bound on the exploration.
        stop_on_violation: abort at the first invariant violation
            instead of collecting all of them.
        protocol_options: forwarded to the protocol factory.
    """
    initial = make_protocol(scheme, num_caches, **protocol_options)
    report = ExplorationReport(scheme=scheme, num_caches=num_caches)

    # State key includes whether the block has been touched yet, since
    # that changes the legal first_ref flag of the next action.
    start_key = (False, fingerprint(initial))
    seen = {start_key}
    frontier = deque([(initial, False)])
    actions = [
        (cache, operation)
        for cache in range(num_caches)
        for operation in ("r", "w")
    ]

    while frontier:
        protocol, touched = frontier.popleft()
        report.states += 1
        if report.states > max_states:
            raise ConfigurationError(
                f"state space of {scheme!r} exceeded max_states={max_states}"
            )
        for cache, operation in actions:
            branch = copy.deepcopy(protocol)
            first_ref = not touched
            try:
                if operation == "r":
                    branch.on_read(cache, _BLOCK, first_ref)
                else:
                    branch.on_write(cache, _BLOCK, first_ref)
                InvariantChecker(branch).check_block(_BLOCK)
            except Exception as exc:  # collect, don't mask, violations
                message = f"{operation} by cache {cache}: {exc}"
                report.violations.append(message)
                if stop_on_violation:
                    return report
                continue
            report.transitions += 1
            key = (True, fingerprint(branch))
            if key not in seen:
                seen.add(key)
                frontier.append((branch, True))
    return report
