"""Bus models: per-event cycle costs (paper Table 2, Section 4.3).

Two bus organizations of "widely diverse complexity" bracket the design
space:

* **Pipelined bus** — separate address and data paths, not held during
  memory/cache access: a block access costs 1 (address) + 4 (data) = 5
  cycles; write-backs cost 4 (address + first word together, then 3
  words); single-word writes cost 1; directory checks cost 1 standalone.
* **Non-pipelined bus** — address and data multiplexed, bus held during
  the access: memory access 7 (1 + 2 wait + 4 data), remote-cache
  access 6 (1 + 1 wait + 4 data), write-back still 4 (memory wait not
  on the critical path when memory is interleaved), word writes 2,
  standalone directory checks 3 (1 + 2 wait).

In both models a directory check that can be overlapped with a memory
access costs nothing extra, and a (broadcast) invalidate costs 1 cycle
by default — Section 6 studies the broadcast cost as a parameter *b*,
exposed here as ``broadcast_cost``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cost.timing import PAPER_TIMING, BusTiming
from repro.protocols.events import BusOp, OpKind


@dataclass(frozen=True)
class BusModel:
    """Per-event bus cycle costs (one column of paper Table 2).

    Attributes are cycle counts per occurrence; ``charge`` prices an
    abstract :class:`~repro.protocols.events.BusOp`.
    """

    name: str
    mem_access: int
    cache_access: int
    write_back: int
    write_word: int
    dir_check: int
    invalidate: int
    broadcast_cost: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "mem_access",
            "cache_access",
            "write_back",
            "write_word",
            "dir_check",
            "invalidate",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.broadcast_cost < 0:
            raise ValueError("broadcast_cost must be non-negative")

    def charge(self, op: BusOp) -> float:
        """Bus cycles consumed by one abstract bus operation."""
        kind = op.kind
        if kind is OpKind.MEM_ACCESS:
            return self.mem_access * op.count
        if kind is OpKind.CACHE_ACCESS:
            return self.cache_access * op.count
        if kind is OpKind.WRITE_BACK:
            return self.write_back * op.count
        if kind is OpKind.WRITE_WORD:
            return self.write_word * op.count
        if kind is OpKind.DIR_CHECK:
            return self.dir_check * op.count
        if kind is OpKind.DIR_CHECK_OVERLAPPED:
            return 0.0
        if kind is OpKind.INVALIDATE:
            return self.invalidate * op.count
        if kind is OpKind.BROADCAST_INVALIDATE:
            return self.broadcast_cost * op.count
        if kind is OpKind.SINGLE_BIT_UPDATE:
            # A single-word control message, like an invalidate.
            return self.invalidate * op.count
        raise ValueError(f"unpriceable bus op kind: {kind}")

    def with_broadcast_cost(self, broadcast_cost: float) -> "BusModel":
        """A copy of this model with a different broadcast cost b (§6)."""
        return replace(self, broadcast_cost=broadcast_cost)

    def as_table_rows(self) -> list[tuple[str, float]]:
        """Rows matching one column of paper Table 2."""
        return [
            ("memory access", float(self.mem_access)),
            ("cache access", float(self.cache_access)),
            ("write-back", float(self.write_back)),
            ("write-through / write update", float(self.write_word)),
            ("directory check", float(self.dir_check)),
            ("invalidate", float(self.invalidate)),
            ("broadcast invalidate", float(self.broadcast_cost)),
        ]


def pipelined_bus(
    timing: BusTiming = PAPER_TIMING, broadcast_cost: float = 1.0
) -> BusModel:
    """The sophisticated bus: separate address/data paths, not held.

    Derivation from Table 1 (Section 4.3): a memory or remote-cache
    access costs address + block words; the wait cycles do not hold the
    bus.  A write-back sends address and first word together.
    """
    block_words = timing.words_per_block
    return BusModel(
        name="pipelined",
        mem_access=timing.send_address + block_words * timing.transfer_word,
        cache_access=timing.send_address + block_words * timing.transfer_word,
        write_back=max(timing.send_address, timing.transfer_word)
        + (block_words - 1) * timing.transfer_word,
        write_word=timing.transfer_word,
        dir_check=timing.send_address,
        invalidate=timing.invalidate,
        broadcast_cost=broadcast_cost,
    )


def non_pipelined_bus(
    timing: BusTiming = PAPER_TIMING, broadcast_cost: float = 1.0
) -> BusModel:
    """The simple bus: multiplexed address/data, held during accesses.

    Derivation from Table 1 (Section 4.3): memory access additionally
    holds the bus for the memory wait; a remote-cache access waits one
    cycle less; a write-back's memory wait is off the critical path
    (interleaved memory); a word write sends address then data; a
    standalone directory check waits for the directory.
    """
    block_words = timing.words_per_block
    return BusModel(
        name="non-pipelined",
        mem_access=timing.send_address
        + timing.wait_memory
        + block_words * timing.transfer_word,
        cache_access=timing.send_address
        + timing.wait_cache
        + block_words * timing.transfer_word,
        write_back=max(timing.send_address, timing.transfer_word)
        + (block_words - 1) * timing.transfer_word,
        write_word=timing.send_address + timing.transfer_word,
        dir_check=timing.send_address + timing.wait_directory,
        invalidate=timing.invalidate,
        broadcast_cost=broadcast_cost,
    )


PAPER_PIPELINED = pipelined_bus()
PAPER_NON_PIPELINED = non_pipelined_bus()
