"""Bus-cycle cost models (paper Tables 1 and 2)."""

from repro.cost.timing import BusTiming
from repro.cost.bus import BusModel, pipelined_bus, non_pipelined_bus
from repro.cost.accounting import CostCategory, CycleBreakdown, charge_ops
from repro.cost.network import (
    NetworkModel,
    Topology,
    average_distance,
    network_cycles_per_reference,
)

__all__ = [
    "BusTiming",
    "BusModel",
    "pipelined_bus",
    "non_pipelined_bus",
    "CostCategory",
    "CycleBreakdown",
    "charge_ops",
    "NetworkModel",
    "Topology",
    "average_distance",
    "network_cycles_per_reference",
]
