"""Cycle accounting by operation category (paper Table 5 rows).

Table 5 breaks the bus cycles per reference down by the *kind* of bus
work: memory access, cache access, write-back, invalidation,
write-through-or-update, and directory access.  :class:`CostCategory`
names those rows; :func:`charge_ops` prices a bag of abstract bus
operations under a bus model and attributes the cycles to categories.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.cost.bus import BusModel
from repro.protocols.events import BusOp, OpKind


class CostCategory(enum.Enum):
    """Table 5 breakdown rows."""

    MEM_ACCESS = "mem access"
    CACHE_ACCESS = "cache access"
    WRITE_BACK = "write-back"
    INVALIDATION = "invalidation"
    WRITE_THROUGH_OR_UPDATE = "wt or wup"
    DIR_ACCESS = "dir access"


_CATEGORY_OF: dict[OpKind, CostCategory] = {
    OpKind.MEM_ACCESS: CostCategory.MEM_ACCESS,
    OpKind.CACHE_ACCESS: CostCategory.CACHE_ACCESS,
    OpKind.WRITE_BACK: CostCategory.WRITE_BACK,
    OpKind.WRITE_WORD: CostCategory.WRITE_THROUGH_OR_UPDATE,
    OpKind.DIR_CHECK: CostCategory.DIR_ACCESS,
    OpKind.DIR_CHECK_OVERLAPPED: CostCategory.DIR_ACCESS,
    OpKind.INVALIDATE: CostCategory.INVALIDATION,
    OpKind.BROADCAST_INVALIDATE: CostCategory.INVALIDATION,
    OpKind.SINGLE_BIT_UPDATE: CostCategory.DIR_ACCESS,
}


def category_of(kind: OpKind) -> CostCategory:
    """The Table 5 category an op kind's cycles are attributed to."""
    return _CATEGORY_OF[kind]


@dataclass
class CycleBreakdown:
    """Bus cycles attributed to each cost category.

    Values are raw cycle totals until :meth:`per_reference` scales them.
    """

    cycles: dict[CostCategory, float] = field(default_factory=dict)

    def add(self, category: CostCategory, cycles: float) -> None:
        """Accumulate cycles into one category."""
        self.cycles[category] = self.cycles.get(category, 0.0) + cycles

    @property
    def total(self) -> float:
        """Sum of cycles over all categories."""
        return sum(self.cycles.values())

    def get(self, category: CostCategory) -> float:
        """Return the block's state, or None if absent."""
        return self.cycles.get(category, 0.0)

    def per_reference(self, total_refs: int) -> "CycleBreakdown":
        """Scale to cycles per memory reference (the paper's metric)."""
        if total_refs <= 0:
            raise ValueError(f"total_refs must be positive, got {total_refs}")
        return CycleBreakdown(
            {category: cycles / total_refs for category, cycles in self.cycles.items()}
        )

    def fractions(self) -> dict[CostCategory, float]:
        """Each category as a fraction of the total (paper Figure 4)."""
        total = self.total
        if total == 0:
            return {category: 0.0 for category in self.cycles}
        return {category: cycles / total for category, cycles in self.cycles.items()}

    def merged_with(self, other: "CycleBreakdown") -> "CycleBreakdown":
        """A new breakdown combining this one with another."""
        merged = CycleBreakdown(dict(self.cycles))
        for category, cycles in other.cycles.items():
            merged.add(category, cycles)
        return merged


def charge_ops(
    ops: Iterable[BusOp] | Mapping[OpKind, int], bus: BusModel
) -> CycleBreakdown:
    """Price bus operations under *bus*, attributing cycles to categories.

    Accepts either an iterable of :class:`BusOp` or a mapping of op kind
    to total unit count (the aggregated form the simulator stores).
    """
    breakdown = CycleBreakdown()
    if isinstance(ops, Mapping):
        items: Iterable[BusOp] = (BusOp(kind, count) for kind, count in ops.items())
    else:
        items = ops
    for op in items:
        breakdown.add(category_of(op.kind), bus.charge(op))
    return breakdown


def aggregate_ops(ops: Iterable[BusOp]) -> Counter:
    """Collapse bus operations into an op-kind unit counter."""
    counter: Counter = Counter()
    for op in ops:
        counter[op.kind] += op.count
    return counter
