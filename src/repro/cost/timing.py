"""Fundamental bus operation timing (paper Table 1).

These are the primitive cycle counts from which both bus models derive
their per-event costs.  All values are in bus cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BusTiming:
    """Paper Table 1: timing for fundamental bus operations.

    Attributes:
        send_address: cycles to place an address on the bus.
        transfer_word: cycles to move one 32-bit data word.
        invalidate: cycles for an invalidation request.
        wait_directory: dead cycles waiting for a directory access.
        wait_memory: dead cycles waiting for a memory access.
        wait_cache: dead cycles waiting for a remote cache access.
        words_per_block: block transfer length (4 words = 16 bytes, §4).
    """

    send_address: int = 1
    transfer_word: int = 1
    invalidate: int = 1
    wait_directory: int = 2
    wait_memory: int = 2
    wait_cache: int = 1
    words_per_block: int = 4

    def __post_init__(self) -> None:
        for name in (
            "send_address",
            "transfer_word",
            "invalidate",
            "wait_directory",
            "wait_memory",
            "wait_cache",
            "words_per_block",
        ):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.words_per_block < 1:
            raise ValueError("words_per_block must be >= 1")

    def as_table_rows(self) -> list[tuple[str, int]]:
        """Rows matching paper Table 1."""
        return [
            ("Send Address", self.send_address),
            ("Transfer 1 data word", self.transfer_word),
            ("Invalidate", self.invalidate),
            ("Wait for Directory", self.wait_directory),
            ("Wait for Memory", self.wait_memory),
            ("Wait for Cache", self.wait_cache),
        ]


PAPER_TIMING = BusTiming()
"""The exact Table 1 configuration used throughout the paper."""
