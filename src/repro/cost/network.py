"""Interconnection-network cost models (the paper's scaling argument).

The paper's case for directories is that their messages are *directed*:
"they can be easily sent over any arbitrary interconnection network, as
opposed to just a bus" (Section 2), which removes the broadcast
dependence that stops snoopy schemes at ~20 processors.  The bus models
of :mod:`repro.cost.bus` price everything in shared-bus cycles; this
module prices the same abstract operations on point-to-point networks,
so the claim can be evaluated instead of asserted.

Model: a message costs ``(header_flits + payload_flits) + hop_latency *
average_distance`` network cycles of *occupancy attributable to the
reference* — a deliberately simple store-and-forward-ish cost that
captures the two things that matter here: payload size and distance.
Block transfers carry ``words_per_block`` payload flits; control
messages (requests, invalidations, single-bit updates) carry none.
Directory checks are messages to the block's home node.  A broadcast on
a network without hardware broadcast support is ``n - 1`` directed
messages; :class:`NetworkModel` exposes whether a scheme is even
*implementable* (snoopy schemes snoop every transaction, which only a
bus provides).

Topologies: bus (1 hop, broadcasts native), fully connected (1 hop),
2D mesh, hypercube, and unidirectional ring.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.protocols.events import BusOp, OpKind


class Topology(enum.Enum):
    """Supported interconnect topologies."""

    BUS = "bus"
    FULLY_CONNECTED = "fully-connected"
    MESH_2D = "mesh-2d"
    HYPERCUBE = "hypercube"
    RING = "ring"

    @property
    def supports_snooping(self) -> bool:
        """Only a shared bus lets every cache observe every transaction."""
        return self is Topology.BUS

    @property
    def native_broadcast(self) -> bool:
        """True when one transaction reaches every node (bus only)."""
        return self is Topology.BUS


def average_distance(topology: Topology, num_nodes: int) -> float:
    """Mean hop count between two distinct uniformly random nodes."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if num_nodes == 1:
        return 0.0
    if topology in (Topology.BUS, Topology.FULLY_CONNECTED):
        return 1.0
    if topology is Topology.RING:
        # Unidirectional ring: distances 1..n-1 equally likely.
        return num_nodes / 2.0
    if topology is Topology.HYPERCUBE:
        dimensions = math.log2(num_nodes)
        if not dimensions.is_integer():
            raise ValueError(
                f"hypercube needs a power-of-two node count, got {num_nodes}"
            )
        # Mean Hamming distance over non-equal pairs: d * 2^(d-1) / (n-1).
        d = int(dimensions)
        return d * (num_nodes / 2) / (num_nodes - 1)
    if topology is Topology.MESH_2D:
        side = math.isqrt(num_nodes)
        if side * side != num_nodes:
            raise ValueError(
                f"2D mesh needs a square node count, got {num_nodes}"
            )
        # Mean 1D distance on a line of k nodes is (k^2 - 1) / (3k);
        # Manhattan distance is the sum over the two axes, rescaled to
        # exclude the zero self-distance pairs.
        if side == 1:
            return 0.0
        mean_1d = (side * side - 1) / (3 * side)
        mean_manhattan = 2 * mean_1d
        return mean_manhattan * num_nodes / (num_nodes - 1)
    raise ValueError(f"unknown topology: {topology}")


@dataclass(frozen=True)
class NetworkModel:
    """Prices abstract bus operations on a point-to-point network.

    Attributes:
        topology: interconnect shape.
        num_nodes: processor/memory node count.
        header_flits: control overhead per message.
        words_per_block: payload flits of a block transfer (paper: 4).
        hop_latency: cycles added per hop traversed.
    """

    topology: Topology
    num_nodes: int
    header_flits: int = 1
    words_per_block: int = 4
    hop_latency: int = 1

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.header_flits < 0 or self.hop_latency < 0:
            raise ValueError("header_flits and hop_latency must be non-negative")
        if self.words_per_block < 1:
            raise ValueError("words_per_block must be >= 1")
        average_distance(self.topology, self.num_nodes)  # validate shape

    @property
    def mean_distance(self) -> float:
        """Average hop count between two distinct nodes."""
        return average_distance(self.topology, self.num_nodes)

    def message_cost(self, payload_flits: int) -> float:
        """Cycles for one directed message with *payload_flits* payload."""
        return (
            self.header_flits
            + payload_flits
            + self.hop_latency * self.mean_distance
        )

    def _broadcast_cost(self) -> float:
        if self.topology.native_broadcast:
            return self.message_cost(0)
        # Emulated broadcast: one directed message per other node.
        return (self.num_nodes - 1) * self.message_cost(0)

    def charge(self, op: BusOp) -> float:
        """Network cycles attributable to one abstract operation."""
        kind = op.kind
        if kind is OpKind.MEM_ACCESS or kind is OpKind.CACHE_ACCESS:
            # Request message + block reply.
            return (self.message_cost(0) + self.message_cost(self.words_per_block)) * op.count
        if kind is OpKind.WRITE_BACK:
            return self.message_cost(self.words_per_block) * op.count
        if kind is OpKind.WRITE_WORD:
            return self.message_cost(1) * op.count
        if kind is OpKind.DIR_CHECK:
            return self.message_cost(0) * op.count
        if kind is OpKind.DIR_CHECK_OVERLAPPED:
            # Rides on the request message to the home node.
            return 0.0
        if kind is OpKind.INVALIDATE or kind is OpKind.SINGLE_BIT_UPDATE:
            return self.message_cost(0) * op.count
        if kind is OpKind.BROADCAST_INVALIDATE:
            return self._broadcast_cost() * op.count
        raise ValueError(f"unpriceable op kind: {kind}")

    def supports_scheme(self, protocol_or_kind) -> bool:
        """Can this network host the given protocol at all?

        Snoopy protocols require every cache to observe every
        transaction, which only a bus provides.
        """
        kind = getattr(protocol_or_kind, "scheme_kind", protocol_or_kind)
        if kind == "snoopy":
            return self.topology.supports_snooping
        return True


def network_cycles_per_reference(result, network: NetworkModel) -> float:
    """Average network cycles per memory reference for one scheme.

    Raises ``ValueError`` when the scheme cannot be hosted (a snoopy
    protocol on a non-bus network) — the paper's point, made executable.
    """
    from repro.protocols.registry import protocol_class

    try:
        kind = getattr(protocol_class(result.scheme), "scheme_kind", "directory")
    except Exception:
        kind = "directory"
    if kind == "snoopy" and not network.topology.supports_snooping:
        raise ValueError(
            f"snoopy scheme {result.scheme!r} cannot run on a "
            f"{network.topology.value} network: it relies on observing "
            "every transaction (paper Section 1)"
        )
    if result.total_refs == 0:
        return 0.0
    total = 0.0
    for units in result.op_units.values():
        for op_kind, count in units.items():
            total += network.charge(BusOp(op_kind, count))
    return total / result.total_refs
