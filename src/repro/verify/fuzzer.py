"""Seeded generation of adversarial sharing patterns as real traces.

Random reference streams exercise protocols broadly but shallowly: a
uniform mix rarely builds the deep sharing structures — long migratory
chains, wide read-sharing broken by one write, interleaved first
references — where coherence bugs hide.  :class:`TraceFuzzer` generates
*structured* adversarial traces instead: each trace instantiates one of
the classic sharing pathologies with randomized parameters (process
count, block count, phase lengths), so a fuzz run sweeps the corners of
the protocol state machines rather than their centers.

Everything is deterministic: trace ``index`` under ``seed`` always
yields byte-identical records, so any fuzz failure is reproducible from
``(seed, index)`` alone and a re-run of the whole campaign digests
identically (the CLI's byte-identical re-run guarantee).

The generated traces are plain :class:`~repro.trace.stream.Trace`
objects made of data references only — instruction fetches never reach
protocols, so conformance budgets are spent entirely on coherence
transitions.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import ConfigurationError
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace

#: Pattern names in generation (round-robin) order.
PATTERNS = (
    "migratory",
    "producer-consumer",
    "spinlock",
    "wide-sharing",
    "interleaved-blocks",
    "chaos",
)

#: Byte address of a fuzz block (16-byte paper blocks, distinct region).
_BLOCK_BYTES = 16
_WORDS_PER_BLOCK = 4

# Large odd multiplier decorrelates per-trace RNG streams without
# relying on hash() (which is randomized per process).
_SEED_STRIDE = 0x9E3779B1


def _address(block: int, word: int = 0) -> int:
    return block * _BLOCK_BYTES + 4 * (word % _WORDS_PER_BLOCK)


class TraceFuzzer:
    """Deterministic generator of adversarial conformance traces.

    Args:
        seed: campaign seed; equal seeds yield byte-identical traces.
        min_processes / max_processes: sharer-count range (>= 2, so
            every trace has real cross-cache interaction).
        min_refs / max_refs: data-reference budget range per trace.
    """

    def __init__(
        self,
        seed: int = 0,
        min_processes: int = 2,
        max_processes: int = 6,
        min_refs: int = 40,
        max_refs: int = 160,
    ) -> None:
        if min_processes < 2:
            raise ConfigurationError(
                f"min_processes must be >= 2 for cross-cache sharing, "
                f"got {min_processes}"
            )
        if max_processes < min_processes:
            raise ConfigurationError("max_processes must be >= min_processes")
        if min_refs < 4:
            raise ConfigurationError(f"min_refs must be >= 4, got {min_refs}")
        if max_refs < min_refs:
            raise ConfigurationError("max_refs must be >= min_refs")
        self.seed = seed
        self.min_processes = min_processes
        self.max_processes = max_processes
        self.min_refs = min_refs
        self.max_refs = max_refs

    # ------------------------------------------------------------------

    def trace(self, index: int) -> Trace:
        """The *index*-th trace of this campaign (pure function of seed)."""
        pattern = PATTERNS[index % len(PATTERNS)]
        rng = random.Random(self.seed * _SEED_STRIDE + index)
        processes = rng.randint(self.min_processes, self.max_processes)
        length = rng.randint(self.min_refs, self.max_refs)
        generator = getattr(self, f"_{pattern.replace('-', '_')}")
        data = generator(rng, processes, length)
        return Trace(
            name=f"fuzz-{self.seed}-{index:04d}-{pattern}",
            records=data[:length],
            description=(
                f"TraceFuzzer seed={self.seed} index={index} "
                f"pattern={pattern} processes={processes}"
            ),
        )

    def traces(self, count: int, start: int = 0) -> Iterator[Trace]:
        """Yield *count* traces starting at campaign index *start*."""
        for index in range(start, start + count):
            yield self.trace(index)

    # ------------------------------------------------------------------
    # Pattern generators: each returns >= length data records.
    # ------------------------------------------------------------------

    @staticmethod
    def _ref(pid: int, op: str, block: int, word: int = 0, **flags) -> TraceRecord:
        ref_type = RefType.READ if op == "r" else RefType.WRITE
        return TraceRecord(
            cpu=pid, pid=pid, ref_type=ref_type,
            address=_address(block, word), **flags,
        )

    def _migratory(self, rng, processes, length) -> list[TraceRecord]:
        """Objects passed around; each visit reads then rewrites them."""
        objects = [rng.randrange(64) for _ in range(rng.randint(1, 3))]
        data: list[TraceRecord] = []
        while len(data) < length:
            pid = rng.randrange(processes)
            block = rng.choice(objects)
            for _ in range(rng.randint(1, 3)):
                data.append(self._ref(pid, "r", block))
                data.append(self._ref(pid, "w", block))
        return data

    def _producer_consumer(self, rng, processes, length) -> list[TraceRecord]:
        """One writer fills a ring buffer; every other process drains it."""
        producer = rng.randrange(processes)
        slots = rng.randint(2, 8)
        data: list[TraceRecord] = []
        slot = 0
        while len(data) < length:
            block = 256 + slot % slots
            data.append(self._ref(producer, "w", block))
            consumers = [pid for pid in range(processes) if pid != producer]
            rng.shuffle(consumers)
            for pid in consumers:
                for _ in range(rng.randint(1, 2)):
                    data.append(self._ref(pid, "r", block))
            slot += 1
        return data

    def _spinlock(self, rng, processes, length) -> list[TraceRecord]:
        """A contended test-and-test-and-set lock plus protected data."""
        lock = 512
        protected = [513 + i for i in range(rng.randint(1, 4))]
        data: list[TraceRecord] = []
        holder = rng.randrange(processes)
        while len(data) < length:
            waiters = [pid for pid in range(processes) if pid != holder]
            for _ in range(rng.randint(2, 6)):
                data.append(self._ref(holder, rng.choice("rw"), rng.choice(protected)))
                for pid in waiters:
                    data.append(self._ref(pid, "r", lock, lock=True, spin=True))
            # Release, then the next holder's test + test-and-set.
            data.append(self._ref(holder, "w", lock, lock=True))
            holder = rng.choice(waiters)
            data.append(self._ref(holder, "r", lock, lock=True))
            data.append(self._ref(holder, "w", lock, lock=True))
        return data

    def _wide_sharing(self, rng, processes, length) -> list[TraceRecord]:
        """Everyone reads a hot set; rare writes hit maximal sharing."""
        hot = [768 + i for i in range(rng.randint(1, 6))]
        data: list[TraceRecord] = []
        while len(data) < length:
            block = rng.choice(hot)
            for pid in range(processes):
                data.append(self._ref(pid, "r", block, word=rng.randrange(4)))
            if rng.random() < 0.4:
                data.append(self._ref(rng.randrange(processes), "w", block))
        return data

    def _interleaved_blocks(self, rng, processes, length) -> list[TraceRecord]:
        """First references and upgrades interleaved across many blocks.

        Blocks enter the trace staggered, so first-reference handling,
        read-to-write upgrades, and re-reads of freshly written blocks
        all overlap in one stream — the oracle's bookkeeping must keep
        every block's version history independent.
        """
        blocks = [1024 + i for i in range(rng.randint(3, 10))]
        data: list[TraceRecord] = []
        introduced = 0
        while len(data) < length:
            if introduced < len(blocks) and rng.random() < 0.5:
                # A fresh block enters mid-stream: read-first or write-first.
                block = blocks[introduced]
                introduced += 1
                pid = rng.randrange(processes)
                data.append(self._ref(pid, rng.choice("rw"), block))
            if introduced:
                block = blocks[rng.randrange(introduced)]
                pid = rng.randrange(processes)
                data.append(self._ref(pid, "r", block))
                if rng.random() < 0.5:
                    data.append(self._ref(pid, "w", block))  # upgrade
                if rng.random() < 0.5:
                    other = rng.randrange(processes)
                    data.append(self._ref(other, "r", block))
        return data

    def _chaos(self, rng, processes, length) -> list[TraceRecord]:
        """Uniform random references over a small, highly contended set."""
        blocks = [1536 + i for i in range(rng.randint(2, 6))]
        return [
            self._ref(
                rng.randrange(processes),
                "w" if rng.random() < 0.3 else "r",
                rng.choice(blocks),
                word=rng.randrange(4),
            )
            for _ in range(length)
        ]
