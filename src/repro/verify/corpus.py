"""The golden regression corpus: minimized reproducers kept forever.

Every fuzz failure, once shrunk, becomes a permanent regression test: a
tiny text-format trace plus a JSON sidecar recording where it came from
(seed, pattern, failing scheme, failure kind).  The corpus lives under
``tests/corpus/`` and is replayed by the tier-1 CI job, so a protocol
bug fixed once can never silently return.

Entries are content-addressed — the file stem embeds a short hash of
the records — so saving the same reproducer twice is a no-op and two
fuzz campaigns that find the same minimal trace converge on one file.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.trace.io import format_record, load_trace, write_trace_file
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

_TRACE_SUFFIX = ".trace"
_META_SUFFIX = ".json"


def _content_key(records: Sequence[TraceRecord]) -> str:
    """Short content hash of a record list (the dedup key)."""
    text = "\n".join(format_record(record) for record in records)
    return hashlib.sha256(text.encode("ascii")).hexdigest()[:12]


@dataclass(frozen=True)
class CorpusEntry:
    """One golden reproducer: the minimized trace plus its provenance."""

    name: str
    trace_path: Path
    meta: dict[str, Any]

    def load(self) -> Trace:
        """The reproducer as a live trace (records read eagerly)."""
        return load_trace(self.trace_path, name=self.name)


class Corpus:
    """A directory of minimized reproducer traces with JSON provenance.

    Args:
        root: the corpus directory (created on first save).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------

    def save(self, trace: Trace, meta: dict[str, Any] | None = None) -> Path | None:
        """Persist a reproducer; returns its path, or None when already present.

        The stored name is ``<trace name>-<content hash>`` so distinct
        failures from one campaign never collide while byte-identical
        reproducers deduplicate regardless of which run found them.
        """
        records = list(trace.records)
        key = _content_key(records)
        if any(key == entry.meta.get("content_key") for entry in self.entries()):
            return None
        self.root.mkdir(parents=True, exist_ok=True)
        stem = f"{trace.name}-{key}"
        trace_path = self.root / f"{stem}{_TRACE_SUFFIX}"
        payload = dict(meta or {})
        payload.setdefault("name", trace.name)
        payload["content_key"] = key
        payload["refs"] = len(records)
        if trace.description:
            payload.setdefault("description", trace.description)
        write_trace_file(
            records,
            trace_path,
            header=[
                f"golden reproducer {stem}",
                json.dumps(payload, sort_keys=True),
            ],
        )
        meta_path = self.root / f"{stem}{_META_SUFFIX}"
        meta_path.write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="ascii"
        )
        return trace_path

    # ------------------------------------------------------------------

    def entries(self) -> list[CorpusEntry]:
        """Every corpus entry, sorted by name (deterministic replay order)."""
        if not self.root.is_dir():
            return []
        found = []
        for trace_path in sorted(self.root.glob(f"*{_TRACE_SUFFIX}")):
            meta_path = trace_path.with_suffix(_META_SUFFIX)
            meta: dict[str, Any] = {}
            if meta_path.is_file():
                try:
                    meta = json.loads(meta_path.read_text(encoding="ascii"))
                except (ValueError, OSError):
                    meta = {}
            found.append(
                CorpusEntry(name=trace_path.stem, trace_path=trace_path, meta=meta)
            )
        return found

    def traces(self) -> Iterator[Trace]:
        """The corpus as live traces, in replay order."""
        for entry in self.entries():
            yield entry.load()

    def __len__(self) -> int:
        return len(self.entries())

    # ------------------------------------------------------------------

    def replay(self, checker) -> "ConformanceReport":
        """Run every corpus trace through *checker*; all must pass clean.

        Corpus traces are *minimized reproducers of fixed bugs*: the
        checker must now find nothing on them.  Entries whose metadata
        carries a ``geometry`` replay as finite-capacity cells (every
        scheme simulates the trace under that cache geometry, with the
        oracle's eviction audit engaged).  Returns one merged
        :class:`~repro.verify.checker.ConformanceReport` covering every
        geometry group.
        """
        from repro.verify.checker import ConformanceReport

        groups: dict[str | None, list[Trace]] = {}
        for entry in self.entries():
            geometry = entry.meta.get("geometry")
            groups.setdefault(geometry, []).append(entry.load())

        merged = ConformanceReport()
        # Infinite entries first, then finite groups in geometry order,
        # so replay order (and the report digest) is deterministic.
        for geometry in sorted(groups, key=lambda g: (g is not None, g or "")):
            specs = None
            if geometry is not None:
                specs = checker.specs_for((geometry,))
            report = checker.check(groups[geometry], specs=specs)
            for scheme in report.schemes:
                if scheme not in merged.schemes:
                    merged.schemes.append(scheme)
            merged.trace_names.extend(report.trace_names)
            merged.cells += report.cells
            merged.findings.extend(report.findings)
            merged.summaries.update(report.summaries)
        return merged
