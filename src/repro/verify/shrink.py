"""Deterministic reduction of failing traces to minimal reproducers.

A fuzz failure on a 160-reference trace is evidence; a failure on a
7-reference trace is a diagnosis.  :func:`shrink_records` reduces a
failing reference list while preserving the failure, using the classic
two-phase strategy:

1. **ddmin** (Zeller's delta debugging): repeatedly try to keep only a
   chunk, or drop a chunk, halving granularity when stuck — removes
   large irrelevant spans in O(log n) rounds;
2. **greedy 1-minimality**: attempt to delete each remaining reference
   individually, restarting after any success, until no single deletion
   preserves the failure.

The result is *1-minimal*: removing any single reference makes the
failure disappear.  Both phases are pure functions of the input and the
predicate, so the same failing trace always shrinks to the same
reproducer — which is what makes the golden corpus stable enough to
commit.

The predicate runs one in-process conformance cell per candidate, so
shrinking never needs a pool and never perturbs engine state.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.simulator import Simulator
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

Predicate = Callable[[Sequence[TraceRecord]], bool]


def failure_predicate(
    spec,
    sharer_key: str = "pid",
    check_interval: int = 1,
) -> Predicate:
    """A predicate that is True when *spec* fails conformance on records.

    Re-runs a single conformance cell in-process: build the instrumented
    protocol via ``spec(num_caches)``, simulate with per-reference
    invariant checks, and report whether *any* conformance exception
    escaped.  Empty candidate lists are False by definition (an empty
    trace cannot reproduce anything).
    """

    def predicate(records: Sequence[TraceRecord]) -> bool:
        records = list(records)
        if not records:
            return False
        trace = Trace(name="shrink-candidate", records=records)
        sharers = trace.pids if sharer_key == "pid" else trace.cpus
        simulator = Simulator(
            sharer_key=sharer_key, check_invariants=check_interval
        )
        try:
            protocol = spec(max(1, len(sharers)))
            simulator.run(trace, protocol, trace_name=trace.name)
        except Exception:
            return True
        return False

    return predicate


def _ddmin(records: list[TraceRecord], predicate: Predicate) -> list[TraceRecord]:
    """Delta-debugging pass: remove large irrelevant spans quickly."""
    granularity = 2
    while len(records) >= 2:
        chunk = max(1, len(records) // granularity)
        subsets = [
            records[start : start + chunk]
            for start in range(0, len(records), chunk)
        ]
        reduced = False
        for position, subset in enumerate(subsets):
            if len(subset) < len(records) and predicate(subset):
                # A single chunk reproduces: restart on it at base
                # granularity.
                records = subset
                granularity = 2
                reduced = True
                break
            complement = [
                record
                for other, piece in enumerate(subsets)
                if other != position
                for record in piece
            ]
            if len(complement) < len(records) and predicate(complement):
                records = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if granularity >= len(records):
                break
            granularity = min(len(records), granularity * 2)
    return records


def _one_minimal(
    records: list[TraceRecord], predicate: Predicate
) -> list[TraceRecord]:
    """Greedy pass: delete single references until none can be removed."""
    changed = True
    while changed:
        changed = False
        for position in range(len(records)):
            candidate = records[:position] + records[position + 1 :]
            if candidate and predicate(candidate):
                records = candidate
                changed = True
                break
    return records


def shrink_records(
    records: Sequence[TraceRecord], predicate: Predicate
) -> list[TraceRecord]:
    """Reduce *records* to a 1-minimal list still satisfying *predicate*.

    The input must already satisfy the predicate; the output always
    does, is never longer than the input, and removing any single
    record from it no longer satisfies the predicate.  Deterministic:
    equal inputs shrink to equal outputs.
    """
    records = list(records)
    if not predicate(records):
        raise ValueError("shrink_records needs a failing input to start from")
    records = _ddmin(records, predicate)
    return _one_minimal(records, predicate)


def shrink_trace(
    trace: Trace, predicate: Predicate, name: str | None = None
) -> Trace:
    """Shrink a failing trace to a minimal reproducer trace.

    The reduced trace keeps the original's name (suffixed ``-min``
    unless *name* overrides it) and records its provenance in the
    description.
    """
    reduced = shrink_records(trace.records, predicate)
    return Trace(
        name=name or f"{trace.name}-min",
        records=reduced,
        description=(
            f"minimized from {trace.name} "
            f"({len(trace.records)} -> {len(reduced)} refs)"
        ),
    )
