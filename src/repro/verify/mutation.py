"""Mutation testing: prove the conformance gate actually catches bugs.

A checker that never fires is indistinguishable from a checker that
works.  This module turns the repository's fault injector into a
sensitivity test for :mod:`repro.verify` itself: every registered
protocol is wrapped in a :class:`~repro.runner.faults.SaboteurProtocol`
mutant — planting illegal dirty copies, or raising an injected
transient — and driven through the exact conformance pipeline a real
fuzz run uses.  A mutant the gate fails to flag is a **survivor**: a
class of protocol bug the harness would wave through.  The acceptance
bar is a 100% kill rate.

Determinism matters here too: the driving trace is a pure function of
the seed, and triggers are fixed reference counts, so a survivor is
exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.protocols.registry import available_protocols
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace

from repro.verify.checker import ConformanceChecker, ConformanceSpec

#: Saboteur modes exercised by default.  ``"kill"`` is excluded: it
#: simulates process death for checkpoint/resume tests, which is the
#: resilient runner's containment problem, not a conformance property.
DEFAULT_MODES = ("illegal-state", "transient")

#: Data-reference counts after which mutants fire (one early, one deep).
DEFAULT_TRIGGERS = (3, 17)

_MUTATION_REFS = 200
_MUTATION_PROCESSES = 4
_MUTATION_BLOCKS = 6


def mutation_trace(seed: int = 0) -> Trace:
    """The deterministic driving trace for one mutation campaign.

    A contended read/write mix over a handful of blocks and processes:
    enough sharing that every trigger point lands on a block with
    cross-cache state, all data references so trigger counts line up
    with protocol callbacks one-to-one.
    """
    rng = random.Random(seed)
    records = []
    for _ in range(_MUTATION_REFS):
        pid = rng.randrange(_MUTATION_PROCESSES)
        block = rng.randrange(_MUTATION_BLOCKS)
        ref_type = RefType.WRITE if rng.random() < 0.35 else RefType.READ
        records.append(
            TraceRecord(cpu=pid, pid=pid, ref_type=ref_type, address=block * 16)
        )
    return Trace(
        name=f"mutation-{seed}",
        records=records,
        description=f"mutation-testing driver, seed={seed}",
    )


@dataclass(frozen=True)
class Mutant:
    """One injected protocol bug and whether the gate caught it."""

    scheme: str
    mode: str
    trigger: int
    killed: bool
    finding_kinds: tuple[str, ...] = ()

    @property
    def key(self) -> str:
        return f"{self.scheme}+{self.mode}@{self.trigger}"


@dataclass
class MutationReport:
    """Outcome of one mutation campaign.

    Attributes:
        mutants: every mutant tried, in sweep order.
        trace_name: the driving trace.
    """

    mutants: list[Mutant] = field(default_factory=list)
    trace_name: str = ""

    @property
    def total(self) -> int:
        return len(self.mutants)

    @property
    def killed(self) -> int:
        return sum(1 for mutant in self.mutants if mutant.killed)

    @property
    def survivors(self) -> list[Mutant]:
        """Mutants the conformance gate failed to detect (must be empty)."""
        return [mutant for mutant in self.mutants if not mutant.killed]

    @property
    def kill_rate(self) -> float:
        """Fraction of mutants detected (1.0 when the gate is airtight)."""
        return self.killed / self.total if self.mutants else 1.0

    def summary(self) -> str:
        """One-line human-readable account of the campaign."""
        line = (
            f"{self.killed}/{self.total} mutants killed "
            f"({self.kill_rate:.0%}) on {self.trace_name}"
        )
        if self.survivors:
            names = ", ".join(mutant.key for mutant in self.survivors[:5])
            line += f"; SURVIVORS: {names}"
        return line


def run_mutation_testing(
    schemes: Sequence[str] | None = None,
    seed: int = 0,
    triggers: Sequence[int] = DEFAULT_TRIGGERS,
    modes: Sequence[str] = DEFAULT_MODES,
    jobs: int = 1,
) -> MutationReport:
    """Drive saboteur mutants of every scheme through the conformance gate.

    Each (scheme × mode × trigger) mutant simulates the deterministic
    :func:`mutation_trace`; a mutant counts as killed when the checker
    reports at least one finding against its cell.  Differential
    comparison is disabled — mutants are *supposed* to diverge.
    """
    trace = mutation_trace(seed)
    data_refs = len(trace.records)
    for trigger in triggers:
        if not 1 <= trigger <= data_refs:
            raise ConfigurationError(
                f"trigger {trigger} outside the driving trace's "
                f"1..{data_refs} data references; the mutant would never fire"
            )
    checker = ConformanceChecker(schemes=schemes, jobs=jobs)
    specs = [
        ConformanceSpec(scheme, saboteur_trigger=trigger, saboteur_mode=mode)
        for scheme in checker.schemes
        for mode in modes
        for trigger in triggers
    ]
    report = checker.check([trace], specs=specs, differential=False)

    kinds_by_key: dict[str, list[str]] = {}
    for finding in report.findings:
        kinds_by_key.setdefault(finding.scheme, []).append(finding.kind)

    outcome = MutationReport(trace_name=trace.name)
    for spec in specs:
        kinds = tuple(kinds_by_key.get(spec.scheme_key, ()))
        outcome.mutants.append(
            Mutant(
                scheme=spec.scheme,
                mode=spec.saboteur_mode,
                trigger=spec.saboteur_trigger,
                killed=bool(kinds),
                finding_kinds=kinds,
            )
        )
    return outcome
