"""Mutation testing: prove the conformance gate actually catches bugs.

A checker that never fires is indistinguishable from a checker that
works.  This module turns the repository's fault injector into a
sensitivity test for :mod:`repro.verify` itself: every registered
protocol is wrapped in a :class:`~repro.runner.faults.SaboteurProtocol`
mutant — planting illegal dirty copies, or raising an injected
transient — and driven through the exact conformance pipeline a real
fuzz run uses.  A mutant the gate fails to flag is a **survivor**: a
class of protocol bug the harness would wave through.  The acceptance
bar is a 100% kill rate.

Determinism matters here too: the driving trace is a pure function of
the seed, and triggers are fixed reference counts, so a survivor is
exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.protocols.registry import available_protocols
from repro.trace.record import RefType, TraceRecord
from repro.trace.stream import Trace

from repro.verify.checker import ConformanceChecker, ConformanceSpec

#: Saboteur modes exercised by default.  ``"kill"`` is excluded: it
#: simulates process death for checkpoint/resume tests, which is the
#: resilient runner's containment problem, not a conformance property.
DEFAULT_MODES = ("illegal-state", "transient")

#: Eviction-logic saboteur modes (finite-capacity bug classes).
EVICTION_MODES = ("lru-mru", "drop-writeback", "stale-directory")

#: Cache geometry for eviction campaigns: 2 sets x 2 ways over the
#: driving trace's 6 hot blocks (3 contending per set) guarantees
#: steady replacement traffic, and associativity > 1 makes LRU-vs-MRU
#: victim selection observable.
DEFAULT_EVICTION_GEOMETRY = "4x2"

#: Data-reference counts after which mutants fire (one early, one deep).
DEFAULT_TRIGGERS = (3, 17)

_MUTATION_REFS = 200
_MUTATION_PROCESSES = 4
_MUTATION_BLOCKS = 6


def mutation_trace(seed: int = 0) -> Trace:
    """The deterministic driving trace for one mutation campaign.

    A contended read/write mix over a handful of blocks and processes:
    enough sharing that every trigger point lands on a block with
    cross-cache state, all data references so trigger counts line up
    with protocol callbacks one-to-one.
    """
    rng = random.Random(seed)
    records = []
    for _ in range(_MUTATION_REFS):
        pid = rng.randrange(_MUTATION_PROCESSES)
        block = rng.randrange(_MUTATION_BLOCKS)
        ref_type = RefType.WRITE if rng.random() < 0.35 else RefType.READ
        records.append(
            TraceRecord(cpu=pid, pid=pid, ref_type=ref_type, address=block * 16)
        )
    return Trace(
        name=f"mutation-{seed}",
        records=records,
        description=f"mutation-testing driver, seed={seed}",
    )


@dataclass(frozen=True)
class Mutant:
    """One injected protocol bug and whether the gate caught it."""

    scheme: str
    mode: str
    trigger: int
    killed: bool
    finding_kinds: tuple[str, ...] = ()

    @property
    def key(self) -> str:
        return f"{self.scheme}+{self.mode}@{self.trigger}"


@dataclass
class MutationReport:
    """Outcome of one mutation campaign.

    Attributes:
        mutants: every mutant tried, in sweep order.
        trace_name: the driving trace.
    """

    mutants: list[Mutant] = field(default_factory=list)
    trace_name: str = ""

    @property
    def total(self) -> int:
        return len(self.mutants)

    @property
    def killed(self) -> int:
        return sum(1 for mutant in self.mutants if mutant.killed)

    @property
    def survivors(self) -> list[Mutant]:
        """Mutants the conformance gate failed to detect (must be empty)."""
        return [mutant for mutant in self.mutants if not mutant.killed]

    @property
    def kill_rate(self) -> float:
        """Fraction of mutants detected (1.0 when the gate is airtight)."""
        return self.killed / self.total if self.mutants else 1.0

    def summary(self) -> str:
        """One-line human-readable account of the campaign."""
        line = (
            f"{self.killed}/{self.total} mutants killed "
            f"({self.kill_rate:.0%}) on {self.trace_name}"
        )
        if self.survivors:
            names = ", ".join(mutant.key for mutant in self.survivors[:5])
            line += f"; SURVIVORS: {names}"
        return line


def run_mutation_testing(
    schemes: Sequence[str] | None = None,
    seed: int = 0,
    triggers: Sequence[int] = DEFAULT_TRIGGERS,
    modes: Sequence[str] = DEFAULT_MODES,
    jobs: int = 1,
) -> MutationReport:
    """Drive saboteur mutants of every scheme through the conformance gate.

    Each (scheme × mode × trigger) mutant simulates the deterministic
    :func:`mutation_trace`; a mutant counts as killed when the checker
    reports at least one finding against its cell.  Differential
    comparison is disabled — mutants are *supposed* to diverge.
    """
    trace = mutation_trace(seed)
    data_refs = len(trace.records)
    for trigger in triggers:
        if not 1 <= trigger <= data_refs:
            raise ConfigurationError(
                f"trigger {trigger} outside the driving trace's "
                f"1..{data_refs} data references; the mutant would never fire"
            )
    checker = ConformanceChecker(schemes=schemes, jobs=jobs)
    specs = [
        ConformanceSpec(scheme, saboteur_trigger=trigger, saboteur_mode=mode)
        for scheme in checker.schemes
        for mode in modes
        for trigger in triggers
    ]
    report = checker.check([trace], specs=specs, differential=False)

    kinds_by_key: dict[str, list[str]] = {}
    for finding in report.findings:
        kinds_by_key.setdefault(finding.scheme, []).append(finding.kind)

    outcome = MutationReport(trace_name=trace.name)
    for spec in specs:
        kinds = tuple(kinds_by_key.get(spec.scheme_key, ()))
        outcome.mutants.append(
            Mutant(
                scheme=spec.scheme,
                mode=spec.saboteur_mode,
                trigger=spec.saboteur_trigger,
                killed=bool(kinds),
                finding_kinds=kinds,
            )
        )
    return outcome


def _kind_of(exc: Exception) -> str:
    from repro.verify.checker import _CATEGORY_KINDS

    return _CATEGORY_KINDS.get(type(exc).__name__, "error")


def _machine_digest(protocol) -> tuple:
    """Full final cache state, per-set residency order included.

    Replacement-policy mutants can coincidentally reproduce a clean
    run's aggregate event counts; the machine they leave behind — which
    lines survive, and in what recency order — still betrays them.
    """
    from repro.core.invariants import unwrap_protocol

    real = unwrap_protocol(protocol)
    return tuple(
        tuple((block, str(cache.get(block))) for block in cache.blocks())
        for cache in real._caches
    )


def run_eviction_mutation_testing(
    schemes: Sequence[str] | None = None,
    seed: int = 0,
    geometry: str = DEFAULT_EVICTION_GEOMETRY,
    triggers: Sequence[int] = DEFAULT_TRIGGERS,
    modes: Sequence[str] = EVICTION_MODES,
) -> MutationReport:
    """Prove the gate catches eviction-logic bugs under finite capacity.

    Every (scheme × mode × trigger) mutant simulates the deterministic
    :func:`mutation_trace` under a tight finite *geometry* with per-ref
    invariant checking and the oracle's eviction audit.  A mutant is
    killed when the run raises (oracle / invariant / protocol error) —
    or, for coherent-but-wrong mutants like LRU-becomes-MRU, when its
    event counts or final machine state (cache contents in recency
    order) diverge from the clean finite baseline of the same cell
    (recorded as a ``differential`` kill).

    ``drop-writeback`` is vacuous for write-through protocols (their
    caches never hold dirty lines, so there is no write-back to drop);
    those cells are skipped rather than counted as survivors.
    """
    from repro.core.simulator import Simulator
    from repro.errors import ReproError

    trace = mutation_trace(seed)
    num_caches = len(trace.pids)

    def run_cell(spec: ConformanceSpec):
        simulator = Simulator(check_invariants=1)
        protocol = spec(num_caches)
        result = simulator.run(trace, protocol)
        return result, _machine_digest(protocol)

    checker = ConformanceChecker(schemes=schemes)
    outcome = MutationReport(trace_name=trace.name)
    for scheme in checker.schemes:
        clean_spec = ConformanceSpec(scheme, geometry=geometry)
        # The clean cell must pass, or the gate itself is broken.
        baseline, baseline_digest = run_cell(clean_spec)
        writes_through = clean_spec(num_caches).writes_through
        for mode in modes:
            if mode == "drop-writeback" and writes_through:
                continue
            for trigger in triggers:
                spec = ConformanceSpec(
                    scheme,
                    saboteur_trigger=trigger,
                    saboteur_mode=mode,
                    geometry=geometry,
                )
                try:
                    mutated, mutated_digest = run_cell(spec)
                except ReproError as exc:
                    killed, kinds = True, (_kind_of(exc),)
                else:
                    killed = (
                        mutated.event_counts != baseline.event_counts
                        or mutated_digest != baseline_digest
                    )
                    kinds = ("differential",) if killed else ()
                outcome.mutants.append(
                    Mutant(
                        scheme=scheme,
                        mode=mode,
                        trigger=trigger,
                        killed=killed,
                        finding_kinds=kinds,
                    )
                )
    return outcome
