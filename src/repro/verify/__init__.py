"""repro.verify — the unified conformance harness.

One subsystem for "is this protocol implementation correct":

* :class:`TraceFuzzer` — seeded, deterministic generation of
  adversarial sharing patterns as real traces;
* :class:`ConformanceChecker` — every checker the repository has
  (value-coherence oracle, per-step invariants, cross-protocol event
  differentials, exhaustive statespace exploration) behind one call;
* :func:`shrink_trace` — automatic reduction of failing traces to
  1-minimal reproducers;
* :class:`Corpus` — the golden regression corpus those reproducers are
  committed to and replayed from;
* :func:`run_mutation_testing` — fault-injection mutants proving the
  gate actually fires (100% kill rate required).

The ``repro verify`` CLI verb fronts all of it; see
``docs/VERIFICATION.md`` for the operational guide.
"""

from repro.verify.checker import (
    DIFFERENTIAL_GROUPS,
    ConformanceChecker,
    ConformanceReport,
    ConformanceSpec,
    Finding,
    summarize_events,
)
from repro.verify.corpus import Corpus, CorpusEntry
from repro.verify.fuzzer import PATTERNS, TraceFuzzer
from repro.verify.mutation import (
    DEFAULT_EVICTION_GEOMETRY,
    EVICTION_MODES,
    Mutant,
    MutationReport,
    mutation_trace,
    run_eviction_mutation_testing,
    run_mutation_testing,
)
from repro.verify.shrink import (
    failure_predicate,
    shrink_records,
    shrink_trace,
)

__all__ = [
    "DEFAULT_EVICTION_GEOMETRY",
    "DIFFERENTIAL_GROUPS",
    "EVICTION_MODES",
    "PATTERNS",
    "ConformanceChecker",
    "ConformanceReport",
    "ConformanceSpec",
    "Corpus",
    "CorpusEntry",
    "Finding",
    "Mutant",
    "MutationReport",
    "TraceFuzzer",
    "failure_predicate",
    "mutation_trace",
    "run_eviction_mutation_testing",
    "run_mutation_testing",
    "shrink_records",
    "shrink_trace",
    "summarize_events",
]
