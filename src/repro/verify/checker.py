"""The unified conformance checker: oracle + invariants + differentials.

Before this module, the repository's correctness checkers lived apart:
the value-coherence oracle (:mod:`repro.core.oracle`), the structural
invariant checker (:mod:`repro.core.invariants`), exhaustive
single-block exploration (:mod:`repro.core.statespace`), and ad-hoc
cross-protocol comparisons in tests.  :class:`ConformanceChecker` runs
them as **one gate**:

* every (protocol × trace) cell simulates through a
  :class:`~repro.core.oracle.CoherentOracle` wrapper with the
  :class:`~repro.core.invariants.InvariantChecker` running per data
  reference — stale reads and structural violations surface in the same
  pass;
* after the sweep, protocol-independent **event-frequency
  differentials** are compared across schemes: the instruction count,
  read/write totals, and first-reference totals are properties of the
  *trace*, so every correct protocol must report identical values;
* cells fan out through the engine's execution backends
  (:func:`repro.engine.backends.backend_for`), so ``--jobs`` parallelism
  and failure containment come from the same layer every other sweep
  uses.

Reports are canonically serializable: :meth:`ConformanceReport.digest`
hashes a key-sorted JSON form, so two runs with the same seed are
byte-comparable end to end.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.core.simulator import Simulator
from repro.core.oracle import CoherentOracle
from repro.core.statespace import default_caches_for, explore_block_states
from repro.engine.backends import backend_for
from repro.engine.plan import CellTask
from repro.engine.policies import RetryPolicy
from repro.errors import ConformanceError, ConfigurationError, UnknownSchemeError
from repro.protocols.events import EventType
from repro.protocols.registry import available_protocols, make_protocol
from repro.runner.faults import SaboteurProtocol
from repro.trace.stream import Trace

#: Event groups that are trace properties: every correct protocol must
#: report identical totals for each group on the same trace.
DIFFERENTIAL_GROUPS: dict[str, tuple[EventType, ...]] = {
    "instructions": (EventType.INSTR,),
    "reads": (
        EventType.RD_HIT,
        EventType.RM_BLK_CLN,
        EventType.RM_BLK_DRTY,
        EventType.RM_FIRST_REF,
    ),
    "writes": (
        EventType.WH_BLK_CLN,
        EventType.WH_BLK_DRTY,
        EventType.WH_DISTRIB,
        EventType.WH_LOCAL,
        EventType.WM_BLK_CLN,
        EventType.WM_BLK_DRTY,
        EventType.WM_FIRST_REF,
    ),
    "first-references": (EventType.RM_FIRST_REF, EventType.WM_FIRST_REF),
}

#: Failure categories mapped to finding kinds (anything else: "error").
_CATEGORY_KINDS = {
    "StaleReadError": "oracle",
    "InvariantViolation": "invariant",
    "ProtocolError": "protocol",
    "TransientError": "fault",
}


@dataclass(frozen=True)
class ConformanceSpec:
    """A picklable scheme spec that builds the instrumented protocol.

    Engine backends call the spec with the cell's machine size; the
    result is the protocol wrapped in a
    :class:`~repro.core.oracle.CoherentOracle` (and optionally a
    :class:`~repro.runner.faults.SaboteurProtocol` between the two, for
    mutation testing).  The invariant checker unwraps the stack, so the
    full structural checks still run against the real protocol.

    Attributes:
        scheme: protocol registry name.
        saboteur_trigger: data-reference count after which the saboteur
            fires (None = no saboteur, the normal conformance cell).
        saboteur_mode: a :class:`SaboteurProtocol` mode.
        geometry: optional finite cache geometry (any
            :func:`~repro.memory.geometry.parse_geometry` spelling) —
            the cell then simulates finite capacity, and the oracle's
            eviction audit engages.
    """

    scheme: str
    saboteur_trigger: int | None = None
    saboteur_mode: str = "illegal-state"
    geometry: str | None = None

    @property
    def scheme_key(self) -> str:
        key = self.scheme
        if self.geometry is not None:
            key = f"{key}@{self.geometry}"
        if self.saboteur_trigger is not None:
            key = f"{key}+{self.saboteur_mode}@{self.saboteur_trigger}"
        return key

    def __call__(self, num_caches: int):
        options = {} if self.geometry is None else {"geometry": self.geometry}
        built = make_protocol(
            self.scheme, default_caches_for(self.scheme, num_caches), **options
        )
        if self.saboteur_trigger is not None:
            built = SaboteurProtocol(
                built, self.saboteur_trigger, mode=self.saboteur_mode
            )
        return CoherentOracle(built)


@dataclass(frozen=True)
class Finding:
    """One conformance failure.

    Attributes:
        trace_name: the trace the failure occurred on.
        scheme: the scheme key of the failing cell (``"*"`` for
            trace-level differential findings).
        kind: ``oracle`` (stale read), ``invariant`` (structural),
            ``protocol`` (other protocol error), ``differential``
            (cross-protocol mismatch), ``fault`` (injected transient),
            or ``error`` (anything else).
        message: the failure detail.
    """

    trace_name: str
    scheme: str
    kind: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.scheme} on {self.trace_name}: {self.message}"


@dataclass
class ConformanceReport:
    """Outcome of one conformance sweep (canonically serializable).

    Attributes:
        schemes: scheme keys checked, in sweep order.
        trace_names: trace names checked, in sweep order.
        cells: number of (scheme × trace) cells executed.
        findings: every conformance failure found.
        summaries: per-trace, per-scheme differential summaries (only
            cells that simulated cleanly).
    """

    schemes: list[str] = field(default_factory=list)
    trace_names: list[str] = field(default_factory=list)
    cells: int = 0
    findings: list[Finding] = field(default_factory=list)
    summaries: dict[str, dict[str, dict[str, int]]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when every cell conformed and every differential agreed."""
        return not self.findings

    def to_json(self) -> dict[str, Any]:
        """A JSON-safe canonical form (stable across equal-seed runs)."""
        return {
            "schemes": list(self.schemes),
            "traces": list(self.trace_names),
            "cells": self.cells,
            "findings": [
                {
                    "trace": finding.trace_name,
                    "scheme": finding.scheme,
                    "kind": finding.kind,
                    "message": finding.message,
                }
                for finding in self.findings
            ],
            "summaries": self.summaries,
        }

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form; equal runs hash equal."""
        payload = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("ascii")).hexdigest()

    def raise_on_failure(self) -> None:
        """Raise :class:`~repro.errors.ConformanceError` unless clean."""
        if self.findings:
            lines = [str(finding) for finding in self.findings[:10]]
            more = len(self.findings) - len(lines)
            if more > 0:
                lines.append(f"... and {more} more")
            raise ConformanceError(
                f"{len(self.findings)} conformance failure"
                f"{'s' if len(self.findings) != 1 else ''}:\n  "
                + "\n  ".join(lines)
            )


def summarize_events(payload: dict[str, Any]) -> dict[str, int]:
    """Differential summary of one serialized simulation result."""
    counts = payload.get("event_counts", {})
    summary = {"total-refs": int(payload.get("total_refs", 0))}
    for group, events in DIFFERENTIAL_GROUPS.items():
        summary[group] = sum(int(counts.get(event.value, 0)) for event in events)
    return summary


class ConformanceChecker:
    """Runs protocols through the unified conformance gate.

    Args:
        schemes: registry names to check (all registered by default).
        sharer_key: trace-sharer view, as in :class:`Simulator`.
        check_interval: invariant-check cadence in data references
            (1 = every reference, the strictest setting).
        jobs: worker processes for the sweep; cells fan out through the
            same engine backends as every other sweep.
    """

    def __init__(
        self,
        schemes: Sequence[str] | None = None,
        sharer_key: str = "pid",
        check_interval: int = 1,
        jobs: int = 1,
    ) -> None:
        if check_interval < 1:
            raise ConfigurationError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        registered = available_protocols()
        if schemes is not None:
            for scheme in schemes:
                if scheme not in registered:
                    raise UnknownSchemeError(
                        f"unknown scheme {scheme!r}; known: {', '.join(registered)}"
                    )
        self.schemes = list(schemes) if schemes is not None else registered
        self.sharer_key = sharer_key
        self.check_interval = check_interval
        self.jobs = jobs

    # ------------------------------------------------------------------

    def _simulator(self) -> Simulator:
        return Simulator(
            sharer_key=self.sharer_key, check_invariants=self.check_interval
        )

    def specs_for(
        self, geometries: Sequence[str | None] = (None,)
    ) -> list[ConformanceSpec]:
        """One plain spec per (geometry × scheme); ``None`` = infinite.

        Mixing infinite and finite cells in one sweep is safe for the
        differential stage: the compared event-group totals are trace
        properties, invariant under replacement traffic (a replacement
        miss is still a read- or write-class event).
        """
        return [
            ConformanceSpec(scheme, geometry=geometry)
            for geometry in geometries
            for scheme in self.schemes
        ]

    def check(
        self,
        traces: Iterable[Trace],
        specs: Sequence[ConformanceSpec] | None = None,
        differential: bool = True,
    ) -> ConformanceReport:
        """Run every (spec × trace) cell and collect a unified report.

        Args:
            traces: the traces to sweep.
            specs: explicit cell specs (mutation testing passes saboteur
                specs); defaults to one plain spec per scheme.
            differential: compare trace-level event totals across the
                clean cells of each trace (disabled for saboteur sweeps,
                where cells are *supposed* to fail).
        """
        trace_list = list(traces)
        if specs is None:
            specs = [ConformanceSpec(scheme) for scheme in self.schemes]
        report = ConformanceReport(
            schemes=[spec.scheme_key for spec in specs],
            trace_names=[trace.name for trace in trace_list],
        )
        if not trace_list or not specs:
            return report

        cells = []
        index = 0
        for spec in specs:
            for trace in trace_list:
                cells.append(
                    CellTask(
                        spec=spec,
                        scheme_key=spec.scheme_key,
                        trace=trace,
                        trace_name=trace.name,
                        index=index,
                    )
                )
                index += 1
        report.cells = len(cells)

        # Conformance failures are permanent, so retry is a single
        # attempt: an injected TransientError must surface as a finding,
        # not be absorbed by the retry middleware.
        backend = backend_for(self.jobs, RetryPolicy(max_attempts=1))
        outcomes = backend.run(self._simulator(), cells)

        for position in sorted(outcomes):
            task = cells[position]
            payload = outcomes[position]
            if payload["status"] == "ok":
                report.summaries.setdefault(task.trace_name, {})[task.scheme_key] = (
                    summarize_events(payload["result"])
                )
            else:
                category = payload.get("category", "ReproError")
                report.findings.append(
                    Finding(
                        trace_name=task.trace_name,
                        scheme=task.scheme_key,
                        kind=_CATEGORY_KINDS.get(category, "error"),
                        message=f"{category}: {payload.get('message', '')}",
                    )
                )

        if differential:
            report.findings.extend(self._differentials(report.summaries))
        return report

    def check_trace(self, trace: Trace, **kwargs: Any) -> ConformanceReport:
        """Convenience: :meth:`check` over a single trace."""
        return self.check([trace], **kwargs)

    # ------------------------------------------------------------------

    @staticmethod
    def _differentials(
        summaries: dict[str, dict[str, dict[str, int]]]
    ) -> list[Finding]:
        """Cross-protocol mismatches in trace-level event totals."""
        findings: list[Finding] = []
        for trace_name, per_scheme in summaries.items():
            if len(per_scheme) < 2:
                continue
            for measure in ("total-refs", *DIFFERENTIAL_GROUPS):
                values: dict[int, list[str]] = {}
                for scheme, summary in per_scheme.items():
                    values.setdefault(summary[measure], []).append(scheme)
                if len(values) > 1:
                    detail = "; ".join(
                        f"{value} from {', '.join(sorted(schemes))}"
                        for value, schemes in sorted(values.items())
                    )
                    findings.append(
                        Finding(
                            trace_name=trace_name,
                            scheme="*",
                            kind="differential",
                            message=f"{measure} disagree across protocols: {detail}",
                        )
                    )
        return findings

    # ------------------------------------------------------------------

    def check_statespace(self, num_caches: int = 3) -> ConformanceReport:
        """Exhaustive single-block exploration of every checked scheme.

        The fourth leg of the unified gate: delegates to
        :func:`repro.core.statespace.explore_block_states` and folds any
        violations into the same report shape as the trace-driven
        checks.
        """
        report = ConformanceReport(schemes=list(self.schemes))
        for scheme in self.schemes:
            caches = default_caches_for(scheme, num_caches)
            exploration = explore_block_states(scheme, num_caches=caches)
            report.cells += 1
            for violation in exploration.violations:
                report.findings.append(
                    Finding(
                        trace_name=f"statespace[{caches} caches]",
                        scheme=scheme,
                        kind="invariant",
                        message=violation,
                    )
                )
        return report
