"""repro — trace-driven evaluation of directory schemes for cache coherence.

A faithful reimplementation of the system behind Agarwal, Simoni,
Hennessy & Horowitz, *An Evaluation of Directory Schemes for Cache
Coherence* (ISCA 1988): a multiprocessor trace substrate, synthetic
workload generators standing in for the paper's ATUM traces, executable
coherence-protocol state machines (Dir1NB, Dir0B, DirnNB, DiriB,
DiriNB, coarse-vector, WTI, Dragon, Berkeley), the paper's bus cost
models, and the analyses behind every table and figure.

Quickstart::

    from repro import standard_traces, simulate, pipelined_bus

    trace = standard_traces(length=100_000)[0]
    result = simulate(trace, "dir0b")
    print(result.bus_cycles_per_reference(pipelined_bus()))
"""

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ConformanceError,
    JobNotFoundError,
    JobSpecError,
    ServiceError,
    ServiceUnavailableError,
    InvariantViolation,
    ProtocolError,
    ReproError,
    TraceFormatError,
    TransientError,
    UnknownSchemeError,
)
from repro.trace import (
    RefType,
    Trace,
    TraceRecord,
    TraceStatistics,
    compute_statistics,
    exclude_lock_spins,
    read_trace_file,
    write_trace_file,
)
from repro.memory import BlockMapper, FiniteCache, InfiniteCache
from repro.protocols import (
    CoherenceProtocol,
    EventType,
    available_protocols,
    make_protocol,
)
from repro.cost import BusModel, BusTiming, CostCategory, non_pipelined_bus, pipelined_bus
from repro.core import (
    CellFailure,
    DirClass,
    EventFrequencies,
    Experiment,
    ExperimentResult,
    SimulationResult,
    Simulator,
    classify,
    merge_results,
    run_experiment,
    scheme_label,
    simulate,
)
from repro.engine import (
    Engine,
    EngineMetrics,
    EngineObserver,
    ExecutionPlan,
)
from repro.runner import (
    CheckpointManager,
    FaultInjector,
    ResilientExperiment,
    RetryPolicy,
    run_resilient_sweep,
)
from repro.workloads import (
    SyntheticWorkload,
    WorkloadConfig,
    available_workloads,
    make_trace,
    standard_traces,
)
from repro.verify import (
    ConformanceChecker,
    ConformanceReport,
    ConformanceSpec,
    Corpus,
    TraceFuzzer,
    run_mutation_testing,
    shrink_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "TraceFormatError",
    "ProtocolError",
    "InvariantViolation",
    "ConfigurationError",
    "UnknownSchemeError",
    "CheckpointError",
    "ConformanceError",
    "TransientError",
    "ServiceError",
    "JobSpecError",
    "JobNotFoundError",
    "ServiceUnavailableError",
    # traces
    "RefType",
    "TraceRecord",
    "Trace",
    "TraceStatistics",
    "compute_statistics",
    "exclude_lock_spins",
    "read_trace_file",
    "write_trace_file",
    # memory
    "BlockMapper",
    "InfiniteCache",
    "FiniteCache",
    # protocols
    "CoherenceProtocol",
    "EventType",
    "available_protocols",
    "make_protocol",
    # cost
    "BusTiming",
    "BusModel",
    "CostCategory",
    "pipelined_bus",
    "non_pipelined_bus",
    # core
    "Simulator",
    "simulate",
    "SimulationResult",
    "merge_results",
    "EventFrequencies",
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "CellFailure",
    "DirClass",
    "classify",
    "scheme_label",
    # engine (execution)
    "Engine",
    "ExecutionPlan",
    "EngineObserver",
    "EngineMetrics",
    # runner (fault tolerance)
    "ResilientExperiment",
    "RetryPolicy",
    "run_resilient_sweep",
    "CheckpointManager",
    "FaultInjector",
    # workloads
    "WorkloadConfig",
    "SyntheticWorkload",
    "available_workloads",
    "make_trace",
    "standard_traces",
    # verify (conformance harness)
    "ConformanceChecker",
    "ConformanceReport",
    "ConformanceSpec",
    "Corpus",
    "TraceFuzzer",
    "run_mutation_testing",
    "shrink_trace",
]
